//! Property test for the GWP estimator's convergence: sampled category
//! shares approach the exact metered shares as the sample period shrinks,
//! and the Wilson confidence intervals cover the truth at roughly their
//! nominal rate.
//!
//! The workload is a synthetic but heterogeneous stream of labeled work
//! items (mixed categories, lognormal-ish durations, interleaved order) so
//! the estimator sees the same shape of input the platforms produce:
//! many sub-period items that only fire through the residual accumulator,
//! plus occasional large items worth several samples each.

use hsdp_core::category::{CoreComputeOp, CpuCategory, DatacenterTax, SystemTax};
use hsdp_profiling::crosscheck::{category_estimates, ci_coverage, mean_abs_share_error};
use hsdp_profiling::gwp::{GwpConfig, GwpProfiler, LeafWork};
use hsdp_rng::{Rng, StdRng};
use hsdp_simcore::time::SimDuration;

/// Mixed-category work stream: deterministic in `seed`.
fn workload(seed: u64, items: usize) -> Vec<LeafWork> {
    let mut rng = StdRng::seed_from_u64(seed);
    let menu: [(CpuCategory, &'static str, u64); 6] = [
        (CpuCategory::Core(CoreComputeOp::Read), "read_path", 900),
        (
            CpuCategory::Core(CoreComputeOp::Filter),
            "predicate_eval",
            400,
        ),
        (
            CpuCategory::Datacenter(DatacenterTax::Protobuf),
            "proto_encode",
            300,
        ),
        (
            CpuCategory::Datacenter(DatacenterTax::Rpc),
            "rpc_dispatch",
            150,
        ),
        (
            CpuCategory::System(SystemTax::OperatingSystems),
            "sys_write",
            120,
        ),
        (
            CpuCategory::System(SystemTax::OtherMemoryOps),
            "arena_alloc",
            60,
        ),
    ];
    (0..items)
        .map(|_| {
            let (category, leaf, mean_ns) = menu[rng.random_range(0..menu.len())];
            // Skewed durations: most items far below the sample period,
            // a tail several periods long.
            let scale: f64 = rng.random::<f64>() * rng.random::<f64>() * 6.0 + 0.1;
            // audit: allow(cast, synthetic duration in ns fits u64 comfortably)
            let ns = ((mean_ns as f64) * scale) as u64 + 1;
            LeafWork::unstacked(category, leaf, SimDuration::from_nanos(ns))
        })
        .collect()
}

fn run_at(period: SimDuration, work: &[LeafWork], seed: u64) -> (f64, f64, u64) {
    let mut profiler = GwpProfiler::new(GwpConfig {
        sample_period: period,
        seed,
    });
    profiler.observe_all(work);
    let (_, stacks) = profiler.into_parts();
    let estimates = category_estimates(&stacks);
    assert_eq!(estimates.len(), 6, "every category estimated");
    (
        mean_abs_share_error(&estimates),
        ci_coverage(&estimates),
        stacks.total_samples(),
    )
}

#[test]
fn sampled_shares_converge_to_exact_as_period_shrinks() {
    let work = workload(0xE57, 60_000);
    let periods = [
        SimDuration::from_micros(16),
        SimDuration::from_micros(4),
        SimDuration::from_micros(1),
    ];
    let mut last_error = f64::INFINITY;
    let mut last_samples = 0u64;
    for (i, &period) in periods.iter().enumerate() {
        let (error, coverage, samples) = run_at(period, &work, 7 + i as u64);
        assert!(
            samples > last_samples,
            "shorter period draws more samples: {samples} vs {last_samples}"
        );
        assert!(
            error < last_error,
            "error shrinks with the period: {error} at {period} vs {last_error}"
        );
        assert!(
            coverage >= 0.5,
            "Wilson CIs should usually cover the exact share (got {coverage} at {period})"
        );
        last_error = error;
        last_samples = samples;
    }
    // At the finest period the estimate is tight in absolute terms.
    assert!(
        last_error < 0.01,
        "1us period keeps mean share error under 1%: {last_error}"
    );
}

#[test]
fn convergence_holds_across_workload_seeds() {
    // The monotone-in-expectation claim should not hinge on one lucky
    // stream: check coarse-vs-fine improvement over several seeds.
    for seed in [1u64, 2, 3, 4, 5] {
        let work = workload(seed, 20_000);
        let (coarse, _, _) = run_at(SimDuration::from_micros(16), &work, seed ^ 0xA);
        let (fine, coverage, _) = run_at(SimDuration::from_micros(1), &work, seed ^ 0xB);
        assert!(
            fine < coarse,
            "seed {seed}: fine-period error {fine} should undercut coarse {coarse}"
        );
        assert!(coverage >= 0.5, "seed {seed}: coverage {coverage}");
    }
}

#[test]
fn exact_shares_are_period_invariant() {
    // The exact side of the estimate comes from the meter, not the
    // sampler: it must be identical at every period.
    let work = workload(0xBEEF, 5_000);
    let exact_at = |period_us: u64| {
        let mut profiler = GwpProfiler::new(GwpConfig {
            sample_period: SimDuration::from_micros(period_us),
            seed: 99,
        });
        profiler.observe_all(&work);
        let (_, stacks) = profiler.into_parts();
        category_estimates(&stacks)
            .into_iter()
            .map(|e| (e.name, e.exact_share))
            .collect::<Vec<_>>()
    };
    assert_eq!(exact_at(16), exact_at(1));
}
