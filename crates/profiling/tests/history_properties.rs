//! Property-style tests of the profile-history store: randomized snapshot
//! round-trips, append-after-truncation recovery, and corrupted-frame
//! detection at the `HistoryStore` level (the frame codec's own
//! byte-exact sweeps live in `hsdp_taxes::framed`).

use std::collections::BTreeMap;

use hsdp_profiling::history::{
    HistoryError, HistoryStore, ProfileSnapshot, QuantileRow, SnapshotMeta,
};
use hsdp_rng::{Rng, StdRng};
use hsdp_taxes::framed;

fn temp_store(tag: &str) -> HistoryStore {
    let dir = std::env::temp_dir().join(format!("hsdp-history-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}.bin"));
    std::fs::remove_file(&path).ok();
    HistoryStore::open(path)
}

/// A snapshot with seeded-random content: variable key counts, arbitrary
/// u64s, escaping-hostile strings.
fn random_snapshot(rng: &mut StdRng) -> ProfileSnapshot {
    let mut snapshot = ProfileSnapshot {
        meta: SnapshotMeta {
            commit: format!("c{:016x}", rng.random::<u64>()),
            sequence: rng.random(),
            host_parallelism: rng.random_range(1u64..256),
            cpu_features: "sse4.2+pclmul+avx2".to_owned(),
        },
        total_exact_ns: rng.random(),
        total_samples: rng.random(),
        categories: BTreeMap::new(),
        stacks: BTreeMap::new(),
        quantiles: BTreeMap::new(),
        bench: BTreeMap::new(),
        tail: BTreeMap::new(),
    };
    for i in 0..rng.random_range(0usize..8) {
        snapshot
            .categories
            .insert(format!("dc.cat{i}"), rng.random());
    }
    for i in 0..rng.random_range(0usize..12) {
        snapshot
            .stacks
            .insert(format!("root;frame{i};leaf \"q\""), rng.random());
    }
    for i in 0..rng.random_range(0usize..4) {
        snapshot.quantiles.insert(
            format!("platform/metric{i}"),
            QuantileRow {
                count: rng.random(),
                p50: rng.random(),
                p95: rng.random(),
                p99: rng.random(),
            },
        );
    }
    for i in 0..rng.random_range(0usize..4) {
        // audit: allow(cast, bench fixture value from a bounded range)
        let ns = rng.random_range(0u64..1 << 40) as f64 / 8.0;
        snapshot.bench.insert(format!("kernel/bench{i}"), ns);
    }
    for i in 0..rng.random_range(0usize..6) {
        snapshot
            .tail
            .insert(format!("platform/tail{i}"), rng.random());
    }
    snapshot
}

#[test]
fn random_snapshots_round_trip_byte_identically() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for round in 0..100 {
        let snapshot = random_snapshot(&mut rng);
        let bytes = snapshot.encode();
        let decoded = ProfileSnapshot::decode(&bytes)
            .unwrap_or_else(|e| panic!("round {round}: decode failed: {e}"));
        assert_eq!(decoded, snapshot, "round {round}: decoded mismatch");
        assert_eq!(
            decoded.encode(),
            bytes,
            "round {round}: re-encode not byte-identical"
        );
    }
}

#[test]
fn store_round_trips_many_snapshots() {
    let store = temp_store("many");
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    let snapshots: Vec<ProfileSnapshot> = (0..20).map(|_| random_snapshot(&mut rng)).collect();
    for (i, snapshot) in snapshots.iter().enumerate() {
        let outcome = store.append(snapshot).expect("append");
        assert_eq!(outcome.snapshots, i + 1);
        assert!(!outcome.recovered);
    }
    assert_eq!(store.load().expect("strict load"), snapshots);
    std::fs::remove_file(store.path()).ok();
}

#[test]
fn append_recovers_from_any_torn_tail() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    let intact: Vec<ProfileSnapshot> = (0..3).map(|_| random_snapshot(&mut rng)).collect();
    let replacement = random_snapshot(&mut rng);

    let store = temp_store("torn");
    for snapshot in &intact {
        store.append(snapshot).expect("append");
    }
    let full = std::fs::read(store.path()).expect("read store");

    // Tear the file mid-way through the last frame (every candidate length
    // between "after frame 2" and "end of file", sampled).
    let scan = framed::scan(&full).expect("intact store scans");
    assert_eq!(scan.frames.len(), 3);
    let second_end = {
        // Recompute where frame 2 ends: header + two frames.
        let mut prefix = Vec::new();
        framed::write_header(&mut prefix);
        framed::append_frame(&mut prefix, &intact[0].encode());
        framed::append_frame(&mut prefix, &intact[1].encode());
        prefix.len()
    };
    for cut in [second_end + 1, second_end + 4, full.len() - 1] {
        std::fs::write(store.path(), &full[..cut]).expect("tear file");
        // Strict load refuses the torn store.
        match store.load() {
            Err(HistoryError::Framed(framed::FramedError::Truncated { .. })) => {}
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
        // Tolerant load yields the intact prefix.
        let (prefix_snapshots, damage) = store.load_tolerant().expect("tolerant load");
        assert_eq!(prefix_snapshots, intact[..2], "cut {cut}");
        assert!(damage.is_some(), "cut {cut}: damage reported");
        // Append discards the torn tail and lands the new snapshot.
        let outcome = store.append(&replacement).expect("recovering append");
        assert!(outcome.recovered, "cut {cut}: recovery flagged");
        assert_eq!(outcome.snapshots, 3);
        let recovered = store.load().expect("store healthy after recovery");
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[..2], intact[..2]);
        assert_eq!(recovered[2], replacement, "cut {cut}");
    }
    std::fs::remove_file(store.path()).ok();
}

#[test]
fn corrupted_frame_is_detected_not_silently_read() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    let snapshots: Vec<ProfileSnapshot> = (0..3).map(|_| random_snapshot(&mut rng)).collect();
    let store = temp_store("corrupt");
    for snapshot in &snapshots {
        store.append(snapshot).expect("append");
    }
    let full = std::fs::read(store.path()).expect("read store");

    // Flip one payload byte inside the middle frame.
    let mut prefix = Vec::new();
    framed::write_header(&mut prefix);
    framed::append_frame(&mut prefix, &snapshots[0].encode());
    let first_end = prefix.len();
    let mut corrupted = full.clone();
    let target = first_end + framed::FRAME_PREFIX_LEN + 2;
    corrupted[target] ^= 0xFF;
    std::fs::write(store.path(), &corrupted).expect("write corrupted store");

    match store.load() {
        Err(HistoryError::Framed(framed::FramedError::Corrupt { frame, .. })) => {
            assert_eq!(frame, 1, "damage attributed to the middle frame");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let (intact_prefix, damage) = store.load_tolerant().expect("tolerant load");
    assert_eq!(
        intact_prefix,
        snapshots[..1],
        "frames before the damage survive"
    );
    assert!(matches!(
        damage,
        Some(framed::FramedError::Corrupt { frame: 1, .. })
    ));
    std::fs::remove_file(store.path()).ok();
}
