//! Cross-checking the two attribution views of the same execution.
//!
//! The paper measures the fleet twice: GWP samples *cycles* (which code
//! burns CPU, Section 5.1) and Dapper traces measure *waiting* (what a
//! request's wall-clock went to, Section 4.1). The telemetry crate adds a
//! third view, the critical-path walk. These views must cohere: for a trace
//! whose spans lay out sequentially, the CPU nanoseconds on the critical
//! path are exactly the metered CPU time that GWP samples from, and every
//! view's category fractions must partition their own total. This module
//! computes all three for a set of traces so tests (and the report bins)
//! can pin the invariants.

use hsdp_rpc::decompose::{decompose, E2eDecomposition};
use hsdp_rpc::span::Span;
use hsdp_simcore::time::SimDuration;
use hsdp_telemetry::category_key;
use hsdp_telemetry::critical_path::{critical_path, CriticalPathBreakdown, PathCategory};

use crate::stacks::StackProfile;

/// One trace-set's agreement report between the critical-path walk, the
/// Section 4.1 interval decomposition, and the metered CPU total.
#[derive(Debug, Clone, Copy)]
pub struct PathAgreement {
    /// Critical-path attribution summed over all traces.
    pub path: CriticalPathBreakdown,
    /// Interval decomposition summed over all traces.
    pub decomposition: E2eDecomposition,
    /// Metered CPU (the GWP sampling universe) summed over all traces.
    pub metered_cpu: SimDuration,
    /// Summed wall-clock CPU-span time (per-worker stripe for fan-out
    /// platforms; equals `metered_cpu` for single-server platforms).
    pub cpu_span_wall: SimDuration,
}

impl PathAgreement {
    /// Sum of the critical-path category fractions — 1.0 within float
    /// rounding for any non-empty trace set, because the underlying
    /// nanoseconds partition the windows exactly.
    #[must_use]
    pub fn fraction_sum(&self) -> f64 {
        PathCategory::ALL
            .iter()
            .map(|&c| self.path.fraction(c))
            .sum()
    }

    /// Critical-path CPU ns over metered CPU ns (1.0 when the CPU spans
    /// lie fully on the path and the platform runs queries on one server).
    #[must_use]
    pub fn path_cpu_over_metered(&self) -> f64 {
        let metered = self.metered_cpu.as_nanos();
        if metered == 0 {
            return 0.0;
        }
        // audit: allow(cast, nanosecond counts to f64 for a dimensionless ratio; exact below 2^53 ns)
        self.path.ns(PathCategory::Cpu) as f64 / metered as f64
    }
}

/// Aggregates the three views over `(trace spans, metered cpu)` pairs.
///
/// Each element is one request's span tree plus the CPU time its meter
/// charged (the denominator GWP samples against).
#[must_use]
pub fn agree<'a, I>(traces: I) -> PathAgreement
where
    I: IntoIterator<Item = (&'a [Span], SimDuration)>,
{
    let mut path = CriticalPathBreakdown::new();
    let mut decomposition = E2eDecomposition::default();
    let mut metered_cpu = SimDuration::ZERO;
    let mut cpu_span_wall = SimDuration::ZERO;
    for (spans, metered) in traces {
        path.merge(&critical_path(spans));
        let d = decompose(spans);
        decomposition.cpu += d.cpu;
        decomposition.io += d.io;
        decomposition.remote += d.remote;
        decomposition.end_to_end += d.end_to_end;
        decomposition.idle += d.idle;
        metered_cpu += metered;
        cpu_span_wall += spans
            .iter()
            .filter(|s| s.kind == hsdp_rpc::span::SpanKind::Cpu)
            .map(Span::duration)
            .sum();
    }
    PathAgreement {
        path,
        decomposition,
        metered_cpu,
        cpu_span_wall,
    }
}

// ---------------------------------------------------------------------------
// Sampling-error bounds: exact metered shares vs GWP sampled shares.
// ---------------------------------------------------------------------------

/// One category's exact share, sampled share, and a binomial confidence
/// interval on the sampled estimate.
///
/// GWP attributes each sample to one category, so the per-category sample
/// count is binomial in the total: the Wilson score interval bounds the
/// true share the sampler is estimating, and the meter's exact nanoseconds
/// say what that true share actually is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareEstimate {
    /// Stable category key (see [`hsdp_telemetry::category_key`]).
    pub name: &'static str,
    /// Ground-truth share from exact metered nanoseconds.
    pub exact_share: f64,
    /// Estimated share from GWP sample counts.
    pub sampled_share: f64,
    /// Wilson 95% interval lower bound on the sampled share.
    pub ci_low: f64,
    /// Wilson 95% interval upper bound on the sampled share.
    pub ci_high: f64,
}

impl ShareEstimate {
    /// Absolute estimation error `|sampled - exact|`.
    #[must_use]
    pub fn abs_error(&self) -> f64 {
        (self.sampled_share - self.exact_share).abs()
    }

    /// Whether the confidence interval covers the exact share.
    #[must_use]
    pub fn ci_covers_exact(&self) -> bool {
        self.ci_low <= self.exact_share && self.exact_share <= self.ci_high
    }
}

/// The Wilson score interval for a binomial proportion: `successes` hits in
/// `trials`, at critical value `z` (1.96 for 95%). Returns `(low, high)`,
/// clamped to `[0, 1]`; `(0, 1)` when there are no trials.
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    // audit: allow(cast, sample counts to f64 for the interval formula; exact below 2^53)
    let n = trials as f64;
    // audit: allow(cast, sample counts to f64 for the interval formula; exact below 2^53)
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - margin).max(0.0), (center + margin).min(1.0))
}

/// Per-category share estimates from a stack profile's paired exact and
/// sampled weights, sorted by exact share descending.
#[must_use]
pub fn category_estimates(stacks: &StackProfile) -> Vec<ShareEstimate> {
    use std::collections::BTreeMap;
    let mut exact: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut sampled: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (_, category, weight) in stacks.cells() {
        let key = category_key(category);
        *exact.entry(key).or_insert(0) += weight.exact_ns;
        *sampled.entry(key).or_insert(0) += weight.samples;
    }
    let total_exact: u64 = exact.values().sum();
    let total_samples: u64 = sampled.values().sum();
    if total_exact == 0 {
        return Vec::new();
    }
    let mut estimates: Vec<ShareEstimate> = exact
        .iter()
        .map(|(&name, &exact_ns)| {
            let samples = sampled.get(name).copied().unwrap_or(0);
            let (ci_low, ci_high) = wilson_interval(samples, total_samples, 1.96);
            ShareEstimate {
                name,
                // audit: allow(cast, nanosecond and sample totals to f64 for shares; exact below 2^53)
                exact_share: exact_ns as f64 / total_exact as f64,
                sampled_share: if total_samples == 0 {
                    0.0
                } else {
                    // audit: allow(cast, nanosecond and sample totals to f64 for shares; exact below 2^53)
                    samples as f64 / total_samples as f64
                },
                ci_low,
                ci_high,
            }
        })
        .collect();
    estimates.sort_by(|a, b| {
        b.exact_share
            .partial_cmp(&a.exact_share)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(b.name))
    });
    estimates
}

/// Mean absolute share error across estimates (0 for empty input).
#[must_use]
pub fn mean_abs_share_error(estimates: &[ShareEstimate]) -> f64 {
    if estimates.is_empty() {
        return 0.0;
    }
    // audit: allow(cast, estimate count to f64 for a mean)
    estimates.iter().map(ShareEstimate::abs_error).sum::<f64>() / estimates.len() as f64
}

/// Fraction of estimates whose confidence interval covers the exact share
/// (0 for empty input).
#[must_use]
pub fn ci_coverage(estimates: &[ShareEstimate]) -> f64 {
    if estimates.is_empty() {
        return 0.0;
    }
    // audit: allow(cast, estimate counts to f64 for a fraction)
    estimates.iter().filter(|e| e.ci_covers_exact()).count() as f64 / estimates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_rpc::span::{SpanId, SpanKind, TraceId};
    use hsdp_simcore::time::SimTime;

    fn span(id: u64, kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            trace: TraceId(1),
            id: SpanId(id),
            parent: if id == 1 { None } else { Some(SpanId(1)) },
            name: format!("s{id}"),
            kind,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            request: hsdp_core::request::RequestId::UNTAGGED,
        }
    }

    #[test]
    fn sequential_trace_agrees_exactly() {
        // cpu [0,40] -> remote [40,90] -> io [90,100] under a root.
        let spans = vec![
            span(1, SpanKind::Container, 0, 100),
            span(2, SpanKind::Cpu, 0, 40),
            span(3, SpanKind::RemoteWork, 40, 90),
            span(4, SpanKind::Io, 90, 100),
        ];
        let report = agree([(spans.as_slice(), SimDuration::from_nanos(40))]);
        assert!((report.fraction_sum() - 1.0).abs() < 1e-9);
        assert!((report.path_cpu_over_metered() - 1.0).abs() < 1e-12);
        assert_eq!(report.path.ns(PathCategory::Cpu), 40);
        assert_eq!(report.decomposition.cpu.as_nanos(), 40);
        assert_eq!(report.cpu_span_wall.as_nanos(), 40);
    }

    #[test]
    fn overlap_views_differ_but_partition() {
        // io [0,100] with cpu [50,120] pipelined on top: the Section 4.1
        // priority rule charges the overlap to IO, the critical path
        // charges the slowest chain (CPU back to 50). Both partition their
        // own window.
        let spans = vec![
            span(1, SpanKind::Container, 0, 120),
            span(2, SpanKind::Io, 0, 100),
            span(3, SpanKind::Cpu, 50, 120),
        ];
        let report = agree([(spans.as_slice(), SimDuration::from_nanos(70))]);
        assert!((report.fraction_sum() - 1.0).abs() < 1e-9);
        assert_eq!(report.path.ns(PathCategory::Cpu), 70);
        assert_eq!(report.decomposition.cpu.as_nanos(), 20);
        assert_eq!(
            report.path.total_ns(),
            report.decomposition.end_to_end.as_nanos()
        );
    }

    #[test]
    fn empty_input_reports_zero() {
        let report = agree(std::iter::empty::<(&[Span], SimDuration)>());
        assert_eq!(report.fraction_sum(), 0.0);
        assert_eq!(report.path_cpu_over_metered(), 0.0);
    }

    #[test]
    fn wilson_interval_behaves() {
        // No data: vacuous interval.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        // Half the samples: symmetric around 0.5 and strictly inside [0,1].
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo > 0.39 && lo < 0.5, "{lo}");
        assert!(hi > 0.5 && hi < 0.61, "{hi}");
        assert!(((lo + hi) / 2.0 - 0.5).abs() < 1e-9);
        // Extremes stay clamped and never degenerate to a point.
        let (lo0, hi0) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.1);
        // More trials tighten the interval.
        let (lo1k, hi1k) = wilson_interval(500, 1000, 1.96);
        assert!(hi1k - lo1k < hi - lo);
    }

    #[test]
    fn category_estimates_pair_exact_and_sampled() {
        use hsdp_core::category::{CoreComputeOp, DatacenterTax};
        let mut stacks = StackProfile::new();
        // 75% read, 25% rpc by exact time; sampled counts slightly off.
        stacks.record(
            &["root"],
            "read",
            CoreComputeOp::Read.into(),
            SimDuration::from_micros(75),
            70,
        );
        stacks.record(
            &["root"],
            "rpc",
            DatacenterTax::Rpc.into(),
            SimDuration::from_micros(25),
            30,
        );
        let estimates = category_estimates(&stacks);
        assert_eq!(estimates.len(), 2);
        assert!(
            (estimates[0].exact_share - 0.75).abs() < 1e-12,
            "sorted desc"
        );
        assert!((estimates[0].sampled_share - 0.70).abs() < 1e-12);
        assert!(estimates.iter().all(ShareEstimate::ci_covers_exact));
        assert!((ci_coverage(&estimates) - 1.0).abs() < 1e-12);
        assert!((mean_abs_share_error(&estimates) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_estimates_are_safe() {
        let estimates = category_estimates(&StackProfile::new());
        assert!(estimates.is_empty());
        assert_eq!(mean_abs_share_error(&estimates), 0.0);
        assert_eq!(ci_coverage(&estimates), 0.0);
    }
}
