//! Cross-checking the two attribution views of the same execution.
//!
//! The paper measures the fleet twice: GWP samples *cycles* (which code
//! burns CPU, Section 5.1) and Dapper traces measure *waiting* (what a
//! request's wall-clock went to, Section 4.1). The telemetry crate adds a
//! third view, the critical-path walk. These views must cohere: for a trace
//! whose spans lay out sequentially, the CPU nanoseconds on the critical
//! path are exactly the metered CPU time that GWP samples from, and every
//! view's category fractions must partition their own total. This module
//! computes all three for a set of traces so tests (and the report bins)
//! can pin the invariants.

use hsdp_rpc::decompose::{decompose, E2eDecomposition};
use hsdp_rpc::span::Span;
use hsdp_simcore::time::SimDuration;
use hsdp_telemetry::critical_path::{critical_path, CriticalPathBreakdown, PathCategory};

/// One trace-set's agreement report between the critical-path walk, the
/// Section 4.1 interval decomposition, and the metered CPU total.
#[derive(Debug, Clone, Copy)]
pub struct PathAgreement {
    /// Critical-path attribution summed over all traces.
    pub path: CriticalPathBreakdown,
    /// Interval decomposition summed over all traces.
    pub decomposition: E2eDecomposition,
    /// Metered CPU (the GWP sampling universe) summed over all traces.
    pub metered_cpu: SimDuration,
    /// Summed wall-clock CPU-span time (per-worker stripe for fan-out
    /// platforms; equals `metered_cpu` for single-server platforms).
    pub cpu_span_wall: SimDuration,
}

impl PathAgreement {
    /// Sum of the critical-path category fractions — 1.0 within float
    /// rounding for any non-empty trace set, because the underlying
    /// nanoseconds partition the windows exactly.
    #[must_use]
    pub fn fraction_sum(&self) -> f64 {
        PathCategory::ALL
            .iter()
            .map(|&c| self.path.fraction(c))
            .sum()
    }

    /// Critical-path CPU ns over metered CPU ns (1.0 when the CPU spans
    /// lie fully on the path and the platform runs queries on one server).
    #[must_use]
    pub fn path_cpu_over_metered(&self) -> f64 {
        let metered = self.metered_cpu.as_nanos();
        if metered == 0 {
            return 0.0;
        }
        // audit: allow(cast, nanosecond counts to f64 for a dimensionless ratio; exact below 2^53 ns)
        self.path.ns(PathCategory::Cpu) as f64 / metered as f64
    }
}

/// Aggregates the three views over `(trace spans, metered cpu)` pairs.
///
/// Each element is one request's span tree plus the CPU time its meter
/// charged (the denominator GWP samples against).
#[must_use]
pub fn agree<'a, I>(traces: I) -> PathAgreement
where
    I: IntoIterator<Item = (&'a [Span], SimDuration)>,
{
    let mut path = CriticalPathBreakdown::new();
    let mut decomposition = E2eDecomposition::default();
    let mut metered_cpu = SimDuration::ZERO;
    let mut cpu_span_wall = SimDuration::ZERO;
    for (spans, metered) in traces {
        path.merge(&critical_path(spans));
        let d = decompose(spans);
        decomposition.cpu += d.cpu;
        decomposition.io += d.io;
        decomposition.remote += d.remote;
        decomposition.end_to_end += d.end_to_end;
        decomposition.idle += d.idle;
        metered_cpu += metered;
        cpu_span_wall += spans
            .iter()
            .filter(|s| s.kind == hsdp_rpc::span::SpanKind::Cpu)
            .map(Span::duration)
            .sum();
    }
    PathAgreement {
        path,
        decomposition,
        metered_cpu,
        cpu_span_wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_rpc::span::{SpanId, SpanKind, TraceId};
    use hsdp_simcore::time::SimTime;

    fn span(id: u64, kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            trace: TraceId(1),
            id: SpanId(id),
            parent: if id == 1 { None } else { Some(SpanId(1)) },
            name: format!("s{id}"),
            kind,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn sequential_trace_agrees_exactly() {
        // cpu [0,40] -> remote [40,90] -> io [90,100] under a root.
        let spans = vec![
            span(1, SpanKind::Container, 0, 100),
            span(2, SpanKind::Cpu, 0, 40),
            span(3, SpanKind::RemoteWork, 40, 90),
            span(4, SpanKind::Io, 90, 100),
        ];
        let report = agree([(spans.as_slice(), SimDuration::from_nanos(40))]);
        assert!((report.fraction_sum() - 1.0).abs() < 1e-9);
        assert!((report.path_cpu_over_metered() - 1.0).abs() < 1e-12);
        assert_eq!(report.path.ns(PathCategory::Cpu), 40);
        assert_eq!(report.decomposition.cpu.as_nanos(), 40);
        assert_eq!(report.cpu_span_wall.as_nanos(), 40);
    }

    #[test]
    fn overlap_views_differ_but_partition() {
        // io [0,100] with cpu [50,120] pipelined on top: the Section 4.1
        // priority rule charges the overlap to IO, the critical path
        // charges the slowest chain (CPU back to 50). Both partition their
        // own window.
        let spans = vec![
            span(1, SpanKind::Container, 0, 120),
            span(2, SpanKind::Io, 0, 100),
            span(3, SpanKind::Cpu, 50, 120),
        ];
        let report = agree([(spans.as_slice(), SimDuration::from_nanos(70))]);
        assert!((report.fraction_sum() - 1.0).abs() < 1e-9);
        assert_eq!(report.path.ns(PathCategory::Cpu), 70);
        assert_eq!(report.decomposition.cpu.as_nanos(), 20);
        assert_eq!(
            report.path.total_ns(),
            report.decomposition.end_to_end.as_nanos()
        );
    }

    #[test]
    fn empty_input_reports_zero() {
        let report = agree(std::iter::empty::<(&[Span], SimDuration)>());
        assert_eq!(report.fraction_sum(), 0.0);
        assert_eq!(report.path_cpu_over_metered(), 0.0);
    }
}
