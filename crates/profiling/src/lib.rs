//! # hsdp-profiling
//!
//! The fleet-profiling pipeline of the paper's methodology sections:
//!
//! - [`gwp`] — a GWP-style sampling profiler over labeled CPU work
//!   (Section 5.1), producing the Figures 3–6 category breakdowns.
//! - [`e2e`] — aggregation of Dapper-style trace decompositions into the
//!   Figure 2 query groups (Section 4).
//! - [`microarch`] — a CPI-stack model fitted to the paper's Tables 6–7,
//!   predicting IPC from MPKI statistics.
//! - [`report`] — text-table rendering for the regeneration benches.
//! - [`crosscheck`] — agreement checks between the GWP cycle view, the
//!   Section 4.1 interval decomposition, and the telemetry crate's
//!   critical-path walk, plus sampling-error bounds for the estimator.
//! - [`stacks`] — deterministic stack-tree profiles with collapsed-stack
//!   (flamegraph) and pprof export.
//! - [`history`] — per-commit profile history: an append-only, checksummed
//!   snapshot store with sliding-window regression and anomaly detection
//!   (continuous profiling over everything the repo measures).
//! - [`heavy`] — a deterministic space-saving top-k sketch attributing
//!   exact-nanosecond CPU and tax-category weight to individual requests
//!   (the heavy-hitter half of tail attribution).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crosscheck;
pub mod e2e;
pub mod gwp;
pub mod heavy;
pub mod history;
pub mod microarch;
pub mod report;
pub mod stacks;

pub use crosscheck::{
    agree, category_estimates, ci_coverage, mean_abs_share_error, wilson_interval, PathAgreement,
    ShareEstimate,
};
pub use e2e::{classify, figure2, Figure2, Figure2Row};
pub use gwp::{CycleProfile, GwpConfig, GwpProfiler, LeafWork};
pub use heavy::{HitterEntry, SpaceSaving};
pub use history::{
    detect_anomalies, regressions_since, AnomalyConfig, DriftReport, DriftThresholds, HistoryStore,
    ProfileSnapshot, QuantileRow, RegressionReport, SnapshotMeta, SustainedDrift,
};
pub use microarch::{fit_cpi_model, regenerate_tables, CalibrationRow, CpiModel};
pub use stacks::{ShareDelta, StackProfile, StackWeight};
