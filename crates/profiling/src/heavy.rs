//! Space-saving heavy-hitter sketch for per-request attribution.
//!
//! The fleet executes far more requests than any report can itemize, but
//! tail analysis only needs the *heaviest* ones — the requests that absorb
//! the most CPU time or the most of one tax category. This module
//! implements the space-saving algorithm (Metwally, Agrawal & El Abbadi,
//! ICDT 2005) over `u64` keys with weighted increments: a fixed budget of
//! `capacity` counters tracks the top spenders with a per-key error bound,
//! so `tail_report` can attribute exact-nanosecond CPU and tax-category
//! time to requests without holding the full request universe in memory.
//!
//! ## Determinism
//!
//! Every operation is a pure function of the sketch state and its
//! arguments: eviction picks the minimum `(count, key)` counter (totally
//! ordered — no hash iteration, no RNG), and [`SpaceSaving::entries`]
//! reports in canonical `(count desc, key asc)` order. Replaying the same
//! stream therefore yields byte-identical output; the fleet's shard
//! streams are themselves deterministic, and shard sketches merge in
//! canonical `(platform, shard)` order, so the merged sketch is identical
//! at any `parallelism` and under schedule perturbation.
//!
//! ## Error bound
//!
//! For every tracked key, `count - err <= true_weight <= count` — the
//! classic space-saving guarantee, preserved by [`SpaceSaving::merge`]
//! (absorbed counters inflate `err`, never deflate `count`). Any key whose
//! true weight exceeds `total / capacity` is guaranteed to be tracked.

use std::collections::BTreeMap;

/// One tracked counter: an overestimate of the key's true total weight and
/// the maximum amount by which it can overestimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitterEntry {
    /// The tracked key (for request attribution, a `RequestId` in raw form).
    pub key: u64,
    /// Estimated total weight: `true <= count`.
    pub count: u64,
    /// Maximum overestimate: `count - err <= true`.
    pub err: u64,
}

/// A deterministic space-saving top-k sketch over weighted `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving {
    capacity: usize,
    total: u64,
    counters: BTreeMap<u64, (u64, u64)>, // key -> (count, err)
}

impl SpaceSaving {
    /// Creates a sketch tracking at most `capacity` keys. A zero capacity
    /// is clamped to one so the sketch always tracks something.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpaceSaving {
            capacity: capacity.max(1),
            total: 0,
            counters: BTreeMap::new(),
        }
    }

    /// The counter budget this sketch was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total weight observed (exact — independent of the counter budget).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of keys currently tracked (at most `capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no weight has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Adds `weight` to `key`'s counter. If the sketch is full and `key`
    /// is untracked, the minimum `(count, key)` counter is evicted and its
    /// count becomes the new key's error bound.
    pub fn observe(&mut self, key: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total = self.total.saturating_add(weight);
        if let Some((count, _)) = self.counters.get_mut(&key) {
            *count = count.saturating_add(weight);
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, (weight, 0));
            return;
        }
        let Some((evicted_key, floor)) = self.min_counter() else {
            self.counters.insert(key, (weight, 0));
            return;
        };
        self.counters.remove(&evicted_key);
        self.counters
            .insert(key, (floor.saturating_add(weight), floor));
    }

    /// Folds `other` into `self`. Shared keys sum their counts and errors;
    /// keys tracked only by `other` are admitted through the same
    /// eviction rule as [`SpaceSaving::observe`], carrying their incoming
    /// error forward so `count - err <= true` keeps holding. Deterministic
    /// in the operand pair; callers fold shard sketches in canonical shard
    /// order.
    pub fn merge(&mut self, other: &SpaceSaving) {
        self.total = self.total.saturating_add(other.total);
        // Admit heaviest first so the keys that matter win the budget.
        for entry in other.entries() {
            if let Some((count, err)) = self.counters.get_mut(&entry.key) {
                *count = count.saturating_add(entry.count);
                *err = err.saturating_add(entry.err);
                continue;
            }
            if self.counters.len() < self.capacity {
                self.counters.insert(entry.key, (entry.count, entry.err));
                continue;
            }
            let Some((evicted_key, floor)) = self.min_counter() else {
                self.counters.insert(entry.key, (entry.count, entry.err));
                continue;
            };
            if (floor, evicted_key) >= (entry.count, entry.key) {
                // The incoming counter cannot beat the current minimum;
                // absorbing it into an eviction would only inflate error.
                continue;
            }
            self.counters.remove(&evicted_key);
            self.counters.insert(
                entry.key,
                (
                    entry.count.saturating_add(floor),
                    entry.err.saturating_add(floor),
                ),
            );
        }
    }

    /// The tracked counters in canonical order: count descending, key
    /// ascending — the order every report and artifact emits.
    #[must_use]
    pub fn entries(&self) -> Vec<HitterEntry> {
        let mut out: Vec<HitterEntry> = self
            .counters
            .iter()
            .map(|(&key, &(count, err))| HitterEntry { key, count, err })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        out
    }

    /// The minimum `(count, key)` counter — the deterministic eviction
    /// victim. `None` only when no keys are tracked (callers reach here
    /// with `len() >= capacity >= 1`, but degrade to a plain insert
    /// rather than aborting if that invariant ever breaks).
    fn min_counter(&self) -> Option<(u64, u64)> {
        self.counters
            .iter()
            .map(|(&key, &(count, _))| (count, key))
            .min()
            .map(|(count, key)| (key, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_rng::derive_seed;
    use std::collections::HashMap;

    /// Deterministic pseudo-random weighted stream: zipf-ish key mass so
    /// some keys are genuine heavy hitters.
    fn stream(seed: u64, len: usize, universe: u64) -> Vec<(u64, u64)> {
        (0..len)
            .map(|i| {
                let r = derive_seed(seed, 7, i as u64);
                // Bias toward small keys: the square fold concentrates mass.
                let key = (r % universe) * (r % universe) / universe % universe;
                let weight = 1 + derive_seed(seed, 11, i as u64) % 1_000;
                (key, weight)
            })
            .collect()
    }

    fn exact(stream: &[(u64, u64)]) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for &(key, weight) in stream {
            *m.entry(key).or_insert(0u64) += weight;
        }
        m
    }

    #[test]
    fn bounds_hold_against_exact_oracle() {
        for seed in [1u64, 9, 42, 77] {
            let data = stream(seed, 4_000, 512);
            let truth = exact(&data);
            let mut sketch = SpaceSaving::new(32);
            for &(key, weight) in &data {
                sketch.observe(key, weight);
            }
            let total: u64 = truth.values().sum();
            assert_eq!(sketch.total(), total);
            for entry in sketch.entries() {
                let t = truth.get(&entry.key).copied().unwrap_or(0);
                assert!(t <= entry.count, "seed {seed}: under-estimate");
                assert!(
                    entry.count - entry.err <= t,
                    "seed {seed}: error bound violated for key {}",
                    entry.key
                );
            }
            // Space-saving coverage: every key heavier than total/capacity
            // must be tracked.
            let threshold = total / 32;
            for (&key, &t) in &truth {
                if t > threshold {
                    assert!(
                        sketch.entries().iter().any(|e| e.key == key),
                        "seed {seed}: heavy key {key} ({t} > {threshold}) untracked"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_bounds_hold_against_exact_oracle() {
        for seed in [3u64, 21] {
            let a = stream(seed, 2_500, 400);
            let b = stream(seed.wrapping_add(1), 2_500, 400);
            let mut sa = SpaceSaving::new(24);
            let mut sb = SpaceSaving::new(24);
            for &(k, w) in &a {
                sa.observe(k, w);
            }
            for &(k, w) in &b {
                sb.observe(k, w);
            }
            sa.merge(&sb);
            let mut truth = exact(&a);
            for (k, w) in exact(&b) {
                *truth.entry(k).or_insert(0) += w;
            }
            let total: u64 = truth.values().sum();
            assert_eq!(sa.total(), total);
            for entry in sa.entries() {
                let t = truth.get(&entry.key).copied().unwrap_or(0);
                assert!(t <= entry.count, "seed {seed}: merged under-estimate");
                assert!(
                    entry.count - entry.err <= t,
                    "seed {seed}: merged error bound violated"
                );
            }
        }
    }

    #[test]
    fn replay_is_byte_identical() {
        let data = stream(5, 3_000, 300);
        let mut s1 = SpaceSaving::new(16);
        let mut s2 = SpaceSaving::new(16);
        for &(k, w) in &data {
            s1.observe(k, w);
            s2.observe(k, w);
        }
        assert_eq!(s1, s2);
        assert_eq!(s1.entries(), s2.entries());
    }

    #[test]
    fn entries_are_canonically_ordered() {
        let mut sketch = SpaceSaving::new(8);
        for &(k, w) in &[(9u64, 50u64), (2, 50), (5, 80), (7, 10)] {
            sketch.observe(k, w);
        }
        let entries = sketch.entries();
        let ranks: Vec<(u64, u64)> = entries.iter().map(|e| (e.count, e.key)).collect();
        let mut sorted = ranks.clone();
        sorted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        assert_eq!(ranks, sorted);
        // Equal counts break ties by ascending key.
        assert_eq!(entries[1].key, 2);
        assert_eq!(entries[2].key, 9);
    }

    #[test]
    fn eviction_is_deterministic_min_count_key() {
        let mut sketch = SpaceSaving::new(2);
        sketch.observe(10, 5);
        sketch.observe(20, 5); // tie on count: key 10 is the min victim
        sketch.observe(30, 1);
        let entries = sketch.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.key == 20));
        let newcomer = entries.iter().find(|e| e.key == 30).expect("admitted");
        assert_eq!(newcomer.count, 6); // floor 5 + weight 1
        assert_eq!(newcomer.err, 5);
    }

    #[test]
    fn disjoint_shard_merge_is_exact_for_tracked_keys() {
        // Fleet shards tag disjoint request ids, so shard sketches merging
        // in canonical order never collide and tracked counts stay exact
        // while the sketches are under budget.
        let mut sa = SpaceSaving::new(64);
        let mut sb = SpaceSaving::new(64);
        for i in 0..20u64 {
            sa.observe(i, 100 + i);
            sb.observe(1_000 + i, 200 + i);
        }
        sa.merge(&sb);
        assert_eq!(sa.len(), 40);
        for entry in sa.entries() {
            assert_eq!(entry.err, 0);
        }
    }
}
