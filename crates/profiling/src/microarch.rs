//! A CPI-stack microarchitecture model reproducing Tables 6–7.
//!
//! The paper measures IPC and per-event MPKI (branch, L1I, L2I, LLC, ITLB,
//! DTLB-load) per platform and per broad category. Rather than hardcoding
//! the IPC column, this module models it: `CPI = base + Σ MPKI_e × penalty_e
//! / 1000`, and *fits* the base CPI and per-event penalties to the paper's
//! nine (platform × category) rows by non-negative least squares. The
//! regenerated tables then report paper-observed vs model-predicted IPC.

use hsdp_core::category::{BroadCategory, Platform};
use hsdp_core::paper::{table6, table7, MicroarchStats};

/// The fitted CPI-stack model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiModel {
    /// Base (miss-free) CPI.
    pub base_cpi: f64,
    /// Cycle penalties per event: `[br, l1i, l2i, llc, itlb, dtlb_ld]`.
    pub penalties: [f64; 6],
}

impl CpiModel {
    /// Predicted CPI for a row of MPKI statistics.
    #[must_use]
    pub fn predict_cpi(&self, stats: &MicroarchStats) -> f64 {
        let events = [
            stats.br,
            stats.l1i,
            stats.l2i,
            stats.llc,
            stats.itlb,
            stats.dtlb_ld,
        ];
        self.base_cpi
            + events
                .iter()
                .zip(self.penalties)
                .map(|(mpki, penalty)| mpki * penalty / 1000.0)
                .sum::<f64>()
    }

    /// Predicted IPC.
    #[must_use]
    pub fn predict_ipc(&self, stats: &MicroarchStats) -> f64 {
        1.0 / self.predict_cpi(stats)
    }
}

/// One calibration row: observed stats and where they came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationRow {
    /// The platform.
    pub platform: Platform,
    /// The broad category (`None` for the whole-platform Table 6 rows).
    pub category: Option<BroadCategory>,
    /// The observed statistics.
    pub stats: MicroarchStats,
}

/// The nine Table 7 rows (used for fitting).
#[must_use]
pub fn table7_rows() -> Vec<CalibrationRow> {
    let mut rows = Vec::with_capacity(9);
    for platform in Platform::ALL {
        for category in BroadCategory::ALL {
            rows.push(CalibrationRow {
                platform,
                category: Some(category),
                stats: table7(platform, category),
            });
        }
    }
    rows
}

/// The three Table 6 rows (used for validation).
#[must_use]
pub fn table6_rows() -> Vec<CalibrationRow> {
    Platform::ALL
        .iter()
        .map(|&platform| CalibrationRow {
            platform,
            category: None,
            stats: table6(platform),
        })
        .collect()
}

/// Solves the dense linear system `A x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` for singular systems.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (offset, row) in rest.iter_mut().enumerate() {
            let factor = row[col] / pivot_row[col];
            for (target, source) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *target -= factor * *source;
            }
            b[col + 1 + offset] -= factor * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in row + 1..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Least-squares fit of `CPI = base + Σ penalty_e * mpki_e / 1000` over the
/// given rows, with non-negativity enforced by clamp-and-refit: any penalty
/// that comes out negative is pinned to zero and the remaining free
/// parameters are refit.
///
/// # Panics
///
/// Panics if fewer than 7 rows are supplied (the model has 7 parameters).
#[must_use]
pub fn fit_cpi_model(rows: &[CalibrationRow]) -> CpiModel {
    assert!(rows.len() >= 7, "need at least 7 rows to fit 7 parameters");
    let features: Vec<[f64; 7]> = rows
        .iter()
        .map(|r| {
            [
                1.0,
                r.stats.br / 1000.0,
                r.stats.l1i / 1000.0,
                r.stats.l2i / 1000.0,
                r.stats.llc / 1000.0,
                r.stats.itlb / 1000.0,
                r.stats.dtlb_ld / 1000.0,
            ]
        })
        .collect();
    let targets: Vec<f64> = rows.iter().map(|r| 1.0 / r.stats.ipc).collect();

    let mut active = [true; 7]; // which parameters are free
    loop {
        let free: Vec<usize> = (0..7).filter(|&i| active[i]).collect();
        // Normal equations over the free parameters.
        let k = free.len();
        let mut ata = vec![vec![0.0; k]; k];
        let mut atb = vec![0.0; k];
        for (row, &y) in features.iter().zip(&targets) {
            for (i, &fi) in free.iter().enumerate() {
                atb[i] += row[fi] * y;
                for (j, &fj) in free.iter().enumerate() {
                    ata[i][j] += row[fi] * row[fj];
                }
            }
        }
        // Ridge-stabilize very slightly to tolerate collinear MPKI columns.
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        // audit: allow(panic, the ridge term added above makes the normal equations non-singular)
        let solution = solve(ata, atb).expect("ridge-stabilized system is solvable");
        let mut params = [0.0f64; 7];
        for (i, &fi) in free.iter().enumerate() {
            params[fi] = solution[i];
        }
        // Clamp negative penalties (not the base) and refit.
        let negatives: Vec<usize> = (1..7).filter(|&i| active[i] && params[i] < 0.0).collect();
        if negatives.is_empty() {
            return CpiModel {
                base_cpi: params[0].max(0.05),
                penalties: [
                    params[1], params[2], params[3], params[4], params[5], params[6],
                ],
            };
        }
        for i in negatives {
            active[i] = false;
        }
    }
}

/// A regenerated microarch table row: observed vs model-predicted IPC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedRow {
    /// The calibration row.
    pub row: CalibrationRow,
    /// IPC the fitted CPI stack predicts from the row's MPKIs.
    pub predicted_ipc: f64,
}

/// Fits on Table 7 and predicts every Table 6 and Table 7 row.
#[must_use]
pub fn regenerate_tables() -> (CpiModel, Vec<PredictedRow>) {
    let model = fit_cpi_model(&table7_rows());
    let rows = table6_rows()
        .into_iter()
        .chain(table7_rows())
        .map(|row| PredictedRow {
            row,
            predicted_ipc: model.predict_ipc(&row.stats),
        })
        .collect();
    (model, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_handles_known_system() {
        // x + y = 3, x - y = 1 -> x = 2, y = 1.
        let x = solve(vec![vec![1.0, 1.0], vec![1.0, -1.0]], vec![3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solver_rejects_singular() {
        assert!(solve(vec![vec![1.0, 1.0], vec![2.0, 2.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn fit_recovers_synthetic_model() {
        // Build rows from a known model and check the fit recovers it.
        let truth = CpiModel {
            base_cpi: 0.5,
            penalties: [12.0, 8.0, 30.0, 100.0, 20.0, 40.0],
        };
        let mut rows = Vec::new();
        for i in 0..12u32 {
            let stats = MicroarchStats {
                ipc: 0.0, // filled below
                br: f64::from(i % 7) + 1.0,
                l1i: f64::from(i % 5) * 3.0 + 2.0,
                l2i: f64::from(i % 3) * 2.0,
                llc: f64::from(i % 4) * 0.3,
                itlb: f64::from(i % 2) * 0.5,
                dtlb_ld: f64::from(i % 6) * 0.4,
            };
            let cpi = truth.predict_cpi(&stats);
            rows.push(CalibrationRow {
                platform: Platform::Spanner,
                category: None,
                stats: MicroarchStats {
                    ipc: 1.0 / cpi,
                    ..stats
                },
            });
        }
        let fitted = fit_cpi_model(&rows);
        assert!(
            (fitted.base_cpi - truth.base_cpi).abs() < 0.05,
            "{fitted:?}"
        );
        for (f, t) in fitted.penalties.iter().zip(truth.penalties) {
            assert!((f - t).abs() < 2.0, "{fitted:?}");
        }
    }

    #[test]
    fn fitted_model_predicts_paper_tables_reasonably() {
        let (model, rows) = regenerate_tables();
        assert!(model.base_cpi > 0.0);
        assert!(model.penalties.iter().all(|&p| p >= 0.0));
        // Median relative IPC error across all 12 rows under 25%.
        let mut errors: Vec<f64> = rows
            .iter()
            .map(|r| (r.predicted_ipc - r.row.stats.ipc).abs() / r.row.stats.ipc)
            .collect();
        errors.sort_by(f64::total_cmp);
        let median = errors[errors.len() / 2];
        assert!(median < 0.25, "median IPC error {median}");
    }

    #[test]
    fn model_reproduces_key_qualitative_findings() {
        let (model, _) = regenerate_tables();
        // Databases predicted slower than the analytics engine (Section 5.6
        // finding 1): front-end MPKI differences drive IPC.
        let spanner = model.predict_ipc(&hsdp_core::paper::table6(Platform::Spanner));
        let bigquery = model.predict_ipc(&hsdp_core::paper::table6(Platform::BigQuery));
        assert!(bigquery > spanner, "bq {bigquery} vs spanner {spanner}");
        // BigQuery core compute is the fastest row (finding 3).
        let bq_cc = model.predict_ipc(&hsdp_core::paper::table7(
            Platform::BigQuery,
            BroadCategory::CoreCompute,
        ));
        let bq_st = model.predict_ipc(&hsdp_core::paper::table7(
            Platform::BigQuery,
            BroadCategory::SystemTax,
        ));
        assert!(bq_cc > bq_st);
    }

    #[test]
    #[should_panic(expected = "at least 7 rows")]
    fn too_few_rows_panics() {
        let _ = fit_cpi_model(&table6_rows());
    }
}
