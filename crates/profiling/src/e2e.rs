//! End-to-end breakdown aggregation: from per-query trace decompositions to
//! the Figure 2 chart data.

use hsdp_core::profile::QueryGroup;
use hsdp_rpc::decompose::E2eDecomposition;

/// Classifies one decomposed query into its Figure 2 group.
#[must_use]
pub fn classify(d: &E2eDecomposition) -> QueryGroup {
    QueryGroup::classify(d.cpu_share(), d.io_share(), d.remote_share())
}

/// One row of the Figure 2 chart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure2Row {
    /// The query group (the final row repeats `Others` but represents the
    /// overall average; see [`Figure2::overall`]).
    pub group: QueryGroup,
    /// Fraction of queries in the group.
    pub query_fraction: f64,
    /// Mean share of end-to-end time on CPU within the group.
    pub cpu_share: f64,
    /// Mean share on remote work.
    pub remote_share: f64,
    /// Mean share on IO.
    pub io_share: f64,
}

/// The aggregated Figure 2 data for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2 {
    /// Per-group rows in the paper's order.
    pub groups: Vec<Figure2Row>,
    /// The overall-average row.
    pub overall: Figure2Row,
    /// Number of queries aggregated.
    pub queries: usize,
}

/// Aggregates per-query decompositions into the Figure 2 rows.
///
/// Time shares are time-weighted within each group (total group seconds,
/// not per-query means), matching how the trace logs aggregate.
#[must_use]
pub fn figure2(decompositions: &[E2eDecomposition]) -> Figure2 {
    let total_queries = decompositions.len();
    let mut groups = Vec::with_capacity(QueryGroup::ALL.len());
    for group in QueryGroup::ALL {
        let members: Vec<&E2eDecomposition> = decompositions
            .iter()
            .filter(|d| classify(d) == group)
            .collect();
        groups.push(summarize(group, &members, total_queries));
    }
    let all: Vec<&E2eDecomposition> = decompositions.iter().collect();
    let mut overall = summarize(QueryGroup::Others, &all, total_queries);
    overall.query_fraction = 1.0;
    Figure2 {
        groups,
        overall,
        queries: total_queries,
    }
}

fn summarize(group: QueryGroup, members: &[&E2eDecomposition], total_queries: usize) -> Figure2Row {
    let sum =
        |f: fn(&E2eDecomposition) -> u64| -> f64 { members.iter().map(|d| f(d) as f64).sum() };
    let cpu = sum(|d| d.cpu.as_nanos());
    let io = sum(|d| d.io.as_nanos());
    let remote = sum(|d| d.remote.as_nanos());
    let e2e = sum(|d| d.end_to_end.as_nanos());
    let share = |part: f64| if e2e > 0.0 { part / e2e } else { 0.0 };
    Figure2Row {
        group,
        query_fraction: if total_queries > 0 {
            members.len() as f64 / total_queries as f64
        } else {
            0.0
        },
        cpu_share: share(cpu),
        remote_share: share(remote),
        io_share: share(io),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_simcore::time::SimDuration;

    fn dec(cpu: u64, io: u64, remote: u64) -> E2eDecomposition {
        E2eDecomposition {
            cpu: SimDuration::from_nanos(cpu),
            io: SimDuration::from_nanos(io),
            remote: SimDuration::from_nanos(remote),
            end_to_end: SimDuration::from_nanos(cpu + io + remote),
            idle: SimDuration::ZERO,
        }
    }

    #[test]
    fn classification_mirrors_core_rules() {
        assert_eq!(classify(&dec(70, 20, 10)), QueryGroup::CpuHeavy);
        assert_eq!(classify(&dec(30, 50, 20)), QueryGroup::IoHeavy);
        assert_eq!(classify(&dec(30, 20, 50)), QueryGroup::RemoteWorkHeavy);
        assert_eq!(classify(&dec(50, 25, 25)), QueryGroup::Others);
    }

    #[test]
    fn figure2_fractions_sum_to_one() {
        let decs = vec![
            dec(70, 20, 10),
            dec(70, 20, 10),
            dec(30, 50, 20),
            dec(30, 20, 50),
            dec(50, 25, 25),
        ];
        let fig = figure2(&decs);
        assert_eq!(fig.queries, 5);
        let total: f64 = fig.groups.iter().map(|r| r.query_fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let cpu_row = &fig.groups[0];
        assert_eq!(cpu_row.group, QueryGroup::CpuHeavy);
        assert!((cpu_row.query_fraction - 0.4).abs() < 1e-9);
        assert!((cpu_row.cpu_share - 0.7).abs() < 1e-9);
    }

    #[test]
    fn overall_row_is_time_weighted() {
        // One giant IO query dominates the overall shares despite equal
        // query counts.
        let decs = vec![dec(100, 0, 0), dec(0, 10_000, 0)];
        let fig = figure2(&decs);
        assert!(fig.overall.io_share > 0.9);
        assert_eq!(fig.overall.query_fraction, 1.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let fig = figure2(&[]);
        assert_eq!(fig.queries, 0);
        assert_eq!(fig.overall.cpu_share, 0.0);
        assert!(fig.groups.iter().all(|r| r.query_fraction == 0.0));
    }
}
