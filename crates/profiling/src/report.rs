//! Rendering fleet profiles as aligned text tables — the output format of
//! the figure-regeneration benches.

use hsdp_core::category::{BroadCategory, Platform};

use crate::e2e::Figure2;
use crate::gwp::CycleProfile;

/// Renders a Figure 2-style table for one platform.
#[must_use]
pub fn render_figure2(platform: Platform, fig: &Figure2) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{platform}: end-to-end breakdown over {} queries\n",
        fig.queries
    ));
    out.push_str("  group               queries%   cpu%  remote%    io%\n");
    for row in &fig.groups {
        out.push_str(&format!(
            "  {:<18} {:>8.1} {:>6.1} {:>8.1} {:>6.1}\n",
            row.group.to_string(),
            row.query_fraction * 100.0,
            row.cpu_share * 100.0,
            row.remote_share * 100.0,
            row.io_share * 100.0,
        ));
    }
    out.push_str(&format!(
        "  {:<18} {:>8.1} {:>6.1} {:>8.1} {:>6.1}\n",
        "Overall Average",
        100.0,
        fig.overall.cpu_share * 100.0,
        fig.overall.remote_share * 100.0,
        fig.overall.io_share * 100.0,
    ));
    out
}

/// Renders the Figure 3 broad-category row for one platform.
#[must_use]
pub fn render_figure3(platform: Platform, profile: &CycleProfile) -> String {
    format!(
        "{platform}: core compute {:.1}% | datacenter taxes {:.1}% | system taxes {:.1}%  ({} samples)\n",
        profile.broad_share(BroadCategory::CoreCompute) * 100.0,
        profile.broad_share(BroadCategory::DatacenterTax) * 100.0,
        profile.broad_share(BroadCategory::SystemTax) * 100.0,
        profile.total_samples(),
    )
}

/// Renders a two-column (name, percent) category table.
#[must_use]
pub fn render_category_rows(title: &str, rows: &[(String, f64)]) -> String {
    let mut out = format!("{title}\n");
    for (name, share) in rows {
        out.push_str(&format!("  {name:<22} {:>6.1}%\n", share * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e2e::figure2;
    use crate::gwp::{GwpConfig, GwpProfiler, LeafWork};
    use hsdp_core::category::{CoreComputeOp, DatacenterTax};
    use hsdp_rpc::decompose::E2eDecomposition;
    use hsdp_simcore::time::SimDuration;

    #[test]
    fn figure2_rendering_contains_groups() {
        let d = E2eDecomposition {
            cpu: SimDuration::from_micros(70),
            io: SimDuration::from_micros(20),
            remote: SimDuration::from_micros(10),
            end_to_end: SimDuration::from_micros(100),
            idle: SimDuration::ZERO,
        };
        let fig = figure2(&[d]);
        let text = render_figure2(Platform::Spanner, &fig);
        assert!(text.contains("Spanner"));
        assert!(text.contains("CPU Heavy"));
        assert!(text.contains("Overall Average"));
    }

    #[test]
    fn figure3_rendering_has_all_shares() {
        let mut profiler = GwpProfiler::new(GwpConfig {
            sample_period: SimDuration::from_micros(1),
            seed: 1,
        });
        profiler.observe(&LeafWork::unstacked(
            CoreComputeOp::Read,
            "a",
            SimDuration::from_micros(50),
        ));
        profiler.observe(&LeafWork::unstacked(
            DatacenterTax::Rpc,
            "b",
            SimDuration::from_micros(50),
        ));
        let text = render_figure3(Platform::BigTable, profiler.profile());
        assert!(text.contains("core compute"));
        assert!(text.contains("BigTable"));
    }

    #[test]
    fn category_rows_render() {
        let text = render_category_rows(
            "Datacenter taxes",
            &[("Protobuf".into(), 0.25), ("RPC".into(), 0.11)],
        );
        assert!(text.contains("Protobuf"));
        assert!(text.contains("25.0%"));
    }
}
