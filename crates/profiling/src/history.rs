//! Per-commit profile history: an append-only snapshot store with
//! sliding-window regression and anomaly detection.
//!
//! The `profile_diff` gate compares exactly one pair of profiles; this
//! module turns the same share math into *fleet observability over time*.
//! Each commit appends one [`ProfileSnapshot`] — per-category and per-stack
//! CPU shares from the GWP stack profile, telemetry histogram quantiles,
//! and bench entries from the `fleet_bench` harness, stamped with the
//! commit id, a monotonic sequence number, `host_parallelism`, and the
//! dispatched `cpu_features` — to a [`HistoryStore`] file.
//!
//! Storage dogfoods the repo's own codecs twice over: snapshots are
//! protowire messages ([`hsdp_taxes::protowire`]) wrapped in the
//! length-prefixed, CRC32C-checked frames of [`hsdp_taxes::framed`], so
//! truncation and corruption are detected (and recoverable) rather than
//! silently read.
//!
//! On top of the store:
//!
//! - [`detect_anomalies`] — robust sliding-window detection over every
//!   share series: median/MAD z-scores against a trailing baseline window,
//!   with a Wilson-interval noise floor so one noisy sample on a 1-CPU box
//!   doesn't page, and a *sustained* criterion (K consecutive flagged
//!   snapshots, not one blip) before anything is reported.
//! - [`regressions_since`] — "top regressed stacks/categories since commit
//!   X", reusing the [`share_deltas`] math the `profile_diff` gate runs on.
//! - [`DriftReport`] — the single-pair gate itself, shared by the
//!   `profile_diff` binary (text and `--json` modes) so the drift math
//!   lives in exactly one place.

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use hsdp_taxes::framed::{self, FramedError};
use hsdp_taxes::protowire::{FieldDescriptor, FieldType, Message, MessageDescriptor, Value};

use crate::crosscheck::wilson_interval;
use crate::stacks::{max_abs_delta, ns_shares, share_deltas, ShareDelta};

// ---------------------------------------------------------------------------
// Snapshot model.
// ---------------------------------------------------------------------------

/// Identity stamps carried by every snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Git commit id the snapshot was taken at.
    pub commit: String,
    /// Monotonic sequence number (CI run number — passed in, never derived
    /// from wall clock).
    pub sequence: u64,
    /// Hardware threads on the host that took the snapshot.
    pub host_parallelism: u64,
    /// Dispatched CPU feature summary (e.g. `"sse4.2+pclmul+avx2"`).
    pub cpu_features: String,
}

/// Telemetry histogram quantiles captured in a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantileRow {
    /// Observation count.
    pub count: u64,
    /// Interpolated median.
    pub p50: u64,
    /// Interpolated 95th percentile.
    pub p95: u64,
    /// Interpolated 99th percentile.
    pub p99: u64,
}

/// One per-commit profile snapshot.
///
/// All maps are `BTreeMap`s so the protowire encoding is canonical: two
/// snapshots with equal contents encode to identical bytes, which is what
/// makes the store's byte-identity guarantees testable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileSnapshot {
    /// Identity stamps.
    pub meta: SnapshotMeta,
    /// Total exact metered CPU nanoseconds in the profile.
    pub total_exact_ns: u64,
    /// Total GWP samples behind the profile (drives the Wilson noise
    /// floor during anomaly detection).
    pub total_samples: u64,
    /// Exact CPU nanoseconds per cycle category (`dc.protobuf`, …).
    pub categories: BTreeMap<String, u64>,
    /// Exact CPU nanoseconds per collapsed stack (`root;frame;leaf`).
    pub stacks: BTreeMap<String, u64>,
    /// Telemetry histogram quantiles, keyed by metric path.
    pub quantiles: BTreeMap<String, QuantileRow>,
    /// Bench entries (`id -> ns/iter`) from the `fleet_bench` harness,
    /// including wall-clock entries. Optional: profile-only snapshots
    /// leave this empty so they stay parallelism-invariant.
    pub bench: BTreeMap<String, f64>,
    /// Tail-report summaries (`spanner/p99_tax_share_ppm`, …): integer-
    /// exact per-platform cohort tax shares and exemplar/heavy-hitter
    /// counts, so regression detection covers the tail as well as the
    /// mean. Parallelism-invariant like the quantiles.
    pub tail: BTreeMap<String, u64>,
}

impl ProfileSnapshot {
    /// Per-category CPU shares (summing to 1 when any CPU time exists).
    #[must_use]
    pub fn category_shares(&self) -> BTreeMap<String, f64> {
        ns_shares(&self.categories, self.total_exact_ns)
    }

    /// Per-stack CPU shares.
    #[must_use]
    pub fn stack_shares(&self) -> BTreeMap<String, f64> {
        ns_shares(&self.stacks, self.total_exact_ns)
    }
}

// ---------------------------------------------------------------------------
// Protowire codec.
// ---------------------------------------------------------------------------

fn share_entry_descriptor() -> Arc<MessageDescriptor> {
    static DESC: OnceLock<Arc<MessageDescriptor>> = OnceLock::new();
    Arc::clone(DESC.get_or_init(|| {
        Arc::new(
            MessageDescriptor::new(
                "ShareEntry",
                vec![
                    FieldDescriptor::required(1, "name", FieldType::String),
                    FieldDescriptor::optional(2, "exact_ns", FieldType::Uint64),
                ],
            )
            // audit: allow(panic, static descriptor literal is validated once at init)
            .expect("static descriptor is valid"),
        )
    }))
}

fn quantile_entry_descriptor() -> Arc<MessageDescriptor> {
    static DESC: OnceLock<Arc<MessageDescriptor>> = OnceLock::new();
    Arc::clone(DESC.get_or_init(|| {
        Arc::new(
            MessageDescriptor::new(
                "QuantileEntry",
                vec![
                    FieldDescriptor::required(1, "key", FieldType::String),
                    FieldDescriptor::optional(2, "count", FieldType::Uint64),
                    FieldDescriptor::optional(3, "p50", FieldType::Uint64),
                    FieldDescriptor::optional(4, "p95", FieldType::Uint64),
                    FieldDescriptor::optional(5, "p99", FieldType::Uint64),
                ],
            )
            // audit: allow(panic, static descriptor literal is validated once at init)
            .expect("static descriptor is valid"),
        )
    }))
}

fn bench_entry_descriptor() -> Arc<MessageDescriptor> {
    static DESC: OnceLock<Arc<MessageDescriptor>> = OnceLock::new();
    Arc::clone(DESC.get_or_init(|| {
        Arc::new(
            MessageDescriptor::new(
                "BenchEntry",
                vec![
                    FieldDescriptor::required(1, "id", FieldType::String),
                    FieldDescriptor::optional(2, "ns_per_iter", FieldType::Double),
                ],
            )
            // audit: allow(panic, static descriptor literal is validated once at init)
            .expect("static descriptor is valid"),
        )
    }))
}

/// The snapshot message schema (protowire dynamic descriptor).
#[must_use]
pub fn snapshot_descriptor() -> Arc<MessageDescriptor> {
    static DESC: OnceLock<Arc<MessageDescriptor>> = OnceLock::new();
    Arc::clone(DESC.get_or_init(|| {
        Arc::new(
            MessageDescriptor::new(
                "ProfileSnapshot",
                vec![
                    FieldDescriptor::required(1, "commit", FieldType::String),
                    FieldDescriptor::optional(2, "sequence", FieldType::Uint64),
                    FieldDescriptor::optional(3, "host_parallelism", FieldType::Uint64),
                    FieldDescriptor::optional(4, "cpu_features", FieldType::String),
                    FieldDescriptor::optional(5, "total_exact_ns", FieldType::Uint64),
                    FieldDescriptor::optional(6, "total_samples", FieldType::Uint64),
                    FieldDescriptor::repeated(
                        7,
                        "categories",
                        FieldType::Message(share_entry_descriptor()),
                    ),
                    FieldDescriptor::repeated(
                        8,
                        "stacks",
                        FieldType::Message(share_entry_descriptor()),
                    ),
                    FieldDescriptor::repeated(
                        9,
                        "quantiles",
                        FieldType::Message(quantile_entry_descriptor()),
                    ),
                    FieldDescriptor::repeated(
                        10,
                        "bench",
                        FieldType::Message(bench_entry_descriptor()),
                    ),
                    FieldDescriptor::repeated(
                        11,
                        "tail",
                        FieldType::Message(share_entry_descriptor()),
                    ),
                ],
            )
            // audit: allow(panic, static descriptor literal is validated once at init)
            .expect("static descriptor is valid"),
        )
    }))
}

/// Errors from the history store and snapshot codec.
#[derive(Debug)]
#[non_exhaustive]
pub enum HistoryError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Container-level damage (framing, checksums, truncation).
    Framed(FramedError),
    /// Protowire-level decode failure inside a frame payload.
    Wire(hsdp_taxes::error::WireError),
    /// A decoded message did not carry the expected snapshot shape.
    Schema(String),
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::Io(e) => write!(f, "history store I/O: {e}"),
            HistoryError::Framed(e) => write!(f, "history store container: {e}"),
            HistoryError::Wire(e) => write!(f, "snapshot decode: {e}"),
            HistoryError::Schema(what) => write!(f, "snapshot schema: {what}"),
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<std::io::Error> for HistoryError {
    fn from(e: std::io::Error) -> Self {
        HistoryError::Io(e)
    }
}

impl From<FramedError> for HistoryError {
    fn from(e: FramedError) -> Self {
        HistoryError::Framed(e)
    }
}

impl From<hsdp_taxes::error::WireError> for HistoryError {
    fn from(e: hsdp_taxes::error::WireError) -> Self {
        HistoryError::Wire(e)
    }
}

fn set_str(msg: &mut Message, field: u32, value: &str) {
    msg.set(field, Value::Str(value.to_owned()))
        // audit: allow(panic, field number and type come from the static descriptor)
        .expect("field matches the static descriptor");
}

fn set_u64(msg: &mut Message, field: u32, value: u64) {
    msg.set(field, Value::Uint64(value))
        // audit: allow(panic, field number and type come from the static descriptor)
        .expect("field matches the static descriptor");
}

fn get_u64(msg: &Message, field: u32) -> u64 {
    match msg.get(field) {
        Some(Value::Uint64(v)) => *v,
        _ => 0,
    }
}

fn get_str(msg: &Message, field: u32) -> String {
    match msg.get(field) {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    }
}

impl ProfileSnapshot {
    /// Encodes the snapshot to canonical protowire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut msg = Message::new(snapshot_descriptor());
        set_str(&mut msg, 1, &self.meta.commit);
        set_u64(&mut msg, 2, self.meta.sequence);
        set_u64(&mut msg, 3, self.meta.host_parallelism);
        set_str(&mut msg, 4, &self.meta.cpu_features);
        set_u64(&mut msg, 5, self.total_exact_ns);
        set_u64(&mut msg, 6, self.total_samples);
        for (field, map) in [
            (7u32, &self.categories),
            (8u32, &self.stacks),
            (11u32, &self.tail),
        ] {
            for (name, &exact_ns) in map {
                let mut entry = Message::new(share_entry_descriptor());
                set_str(&mut entry, 1, name);
                set_u64(&mut entry, 2, exact_ns);
                msg.push(field, Value::Message(entry))
                    // audit: allow(panic, field number and type come from the static descriptor)
                    .expect("field matches the static descriptor");
            }
        }
        for (key, row) in &self.quantiles {
            let mut entry = Message::new(quantile_entry_descriptor());
            set_str(&mut entry, 1, key);
            set_u64(&mut entry, 2, row.count);
            set_u64(&mut entry, 3, row.p50);
            set_u64(&mut entry, 4, row.p95);
            set_u64(&mut entry, 5, row.p99);
            msg.push(9, Value::Message(entry))
                // audit: allow(panic, field number and type come from the static descriptor)
                .expect("field matches the static descriptor");
        }
        for (id, &ns_per_iter) in &self.bench {
            let mut entry = Message::new(bench_entry_descriptor());
            set_str(&mut entry, 1, id);
            entry
                .set(2, Value::Double(ns_per_iter))
                // audit: allow(panic, field number and type come from the static descriptor)
                .expect("field matches the static descriptor");
            msg.push(10, Value::Message(entry))
                // audit: allow(panic, field number and type come from the static descriptor)
                .expect("field matches the static descriptor");
        }
        msg.encode_to_vec()
    }

    /// Decodes a snapshot from protowire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::Wire`] on malformed bytes and
    /// [`HistoryError::Schema`] when a repeated entry misses its key.
    pub fn decode(bytes: &[u8]) -> Result<Self, HistoryError> {
        let msg = Message::decode(snapshot_descriptor(), bytes)?;
        let mut snapshot = ProfileSnapshot {
            meta: SnapshotMeta {
                commit: get_str(&msg, 1),
                sequence: get_u64(&msg, 2),
                host_parallelism: get_u64(&msg, 3),
                cpu_features: get_str(&msg, 4),
            },
            total_exact_ns: get_u64(&msg, 5),
            total_samples: get_u64(&msg, 6),
            ..ProfileSnapshot::default()
        };
        for (field, map) in [
            (7u32, &mut snapshot.categories),
            (8u32, &mut snapshot.stacks),
            (11u32, &mut snapshot.tail),
        ] {
            for value in msg.get_all(field) {
                let Value::Message(entry) = value else {
                    return Err(HistoryError::Schema("share entry is not a message".into()));
                };
                map.insert(get_str(entry, 1), get_u64(entry, 2));
            }
        }
        for value in msg.get_all(9) {
            let Value::Message(entry) = value else {
                return Err(HistoryError::Schema(
                    "quantile entry is not a message".into(),
                ));
            };
            snapshot.quantiles.insert(
                get_str(entry, 1),
                QuantileRow {
                    count: get_u64(entry, 2),
                    p50: get_u64(entry, 3),
                    p95: get_u64(entry, 4),
                    p99: get_u64(entry, 5),
                },
            );
        }
        for value in msg.get_all(10) {
            let Value::Message(entry) = value else {
                return Err(HistoryError::Schema("bench entry is not a message".into()));
            };
            let ns = match entry.get(2) {
                Some(Value::Double(v)) => *v,
                _ => 0.0,
            };
            snapshot.bench.insert(get_str(entry, 1), ns);
        }
        Ok(snapshot)
    }
}

// ---------------------------------------------------------------------------
// The file-backed store.
// ---------------------------------------------------------------------------

/// What [`HistoryStore::append`] did to the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Snapshots in the store after the append.
    pub snapshots: usize,
    /// True when a torn/corrupt tail was discarded before appending.
    pub recovered: bool,
}

/// An append-only, file-backed snapshot history.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    path: PathBuf,
}

impl HistoryStore {
    /// A store handle for `path` (the file is created on first append).
    #[must_use]
    pub fn open(path: impl Into<PathBuf>) -> Self {
        HistoryStore { path: path.into() }
    }

    /// The backing file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one snapshot. A missing file is created with the container
    /// header; a torn or corrupt tail is truncated back to the last intact
    /// frame first (the recovery path), so an interrupted writer can never
    /// wedge the store.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and header-level container errors
    /// (wrong magic / unsupported version — recovery cannot help there).
    pub fn append(&self, snapshot: &ProfileSnapshot) -> Result<AppendOutcome, HistoryError> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            framed::write_header(&mut bytes);
            file.write_all(&bytes)?;
        }
        let scan = framed::scan(&bytes)?;
        let recovered = scan.damage.is_some();
        let prior = scan.frames.len();
        let valid_len = scan.valid_len;
        // audit: allow(cast, file offsets fit u64)
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        let mut frame = Vec::new();
        framed::append_frame(&mut frame, &snapshot.encode());
        file.write_all(&frame)?;
        file.sync_all()?;
        Ok(AppendOutcome {
            snapshots: prior + 1,
            recovered,
        })
    }

    /// Strict load: every frame must be intact and decode.
    ///
    /// # Errors
    ///
    /// Propagates I/O, container (including torn-tail damage), and decode
    /// errors.
    pub fn load(&self) -> Result<Vec<ProfileSnapshot>, HistoryError> {
        let bytes = std::fs::read(&self.path)?;
        let frames = framed::read_all(&bytes)?;
        frames
            .into_iter()
            .map(ProfileSnapshot::decode)
            .collect::<Result<Vec<_>, _>>()
    }

    /// Tolerant load: returns every intact snapshot plus the damage that
    /// stopped the walk, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O and header-level container errors; frame-level damage
    /// is returned in the tuple instead.
    pub fn load_tolerant(
        &self,
    ) -> Result<(Vec<ProfileSnapshot>, Option<FramedError>), HistoryError> {
        let bytes = std::fs::read(&self.path)?;
        let scan = framed::scan(&bytes)?;
        let snapshots = scan
            .frames
            .into_iter()
            .map(ProfileSnapshot::decode)
            .collect::<Result<Vec<_>, _>>()?;
        Ok((snapshots, scan.damage))
    }
}

// ---------------------------------------------------------------------------
// Sliding-window anomaly detection.
// ---------------------------------------------------------------------------

/// Tuning for the sliding-window detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Trailing baseline window length (snapshots).
    pub window: usize,
    /// Robust z-score threshold against the window's median/MAD.
    pub z_threshold: f64,
    /// Absolute share-movement floor: drifts smaller than this never flag,
    /// however tight the baseline noise.
    pub min_abs_delta: f64,
    /// Consecutive flagged snapshots required before drift is *sustained*.
    pub sustained: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            window: 5,
            z_threshold: 3.5,
            min_abs_delta: 0.01,
            sustained: 3,
        }
    }
}

/// One point of a share series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// CPU share at this snapshot (0..=1).
    pub share: f64,
    /// Total GWP samples behind the snapshot (Wilson noise floor input).
    pub total_samples: u64,
}

/// One flagged snapshot in a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesFlag {
    /// Snapshot index in the series.
    pub index: usize,
    /// Share movement against the trailing window's median.
    pub delta: f64,
    /// Robust z-score of the movement.
    pub z: f64,
}

/// A sustained drift detected over one key's share series.
#[derive(Debug, Clone, PartialEq)]
pub struct SustainedDrift {
    /// Category or collapsed-stack key.
    pub key: String,
    /// Index of the first snapshot in the sustained run.
    pub start: usize,
    /// Number of consecutive flagged snapshots.
    pub run: usize,
    /// Share movement at the final flagged snapshot.
    pub last_delta: f64,
}

/// Median of a slice (sorted copy; midpoint average for even lengths).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Scale factor turning a MAD into a normal-consistent sigma estimate.
const MAD_SIGMA: f64 = 1.4826;

/// Half-width of the 95% Wilson interval for share `p` at `samples` trials
/// — the sampling-noise floor below which a movement is indistinguishable
/// from estimator variance. Wide (conservative) when `samples` is tiny, so
/// a 1-sample blip on a 1-CPU box cannot page.
#[must_use]
pub fn wilson_noise_floor(p: f64, samples: u64) -> f64 {
    // audit: allow(cast, clamped non-negative share count fits u64)
    let successes = ((p.clamp(0.0, 1.0) * samples as f64).round()) as u64;
    let (lo, hi) = wilson_interval(successes.min(samples), samples, 1.96);
    (hi - lo) / 2.0
}

/// Runs the robust sliding-window detector over one share series.
///
/// For each point past the first `window`, the trailing `window` points
/// form the baseline: the point is flagged when its movement against the
/// baseline median clears the robust z-threshold (MAD-scaled, with the
/// Wilson noise floor as a minimum sigma) *and* the absolute floor.
#[must_use]
pub fn series_flags(series: &[SeriesPoint], config: &AnomalyConfig) -> Vec<SeriesFlag> {
    let window = config.window.max(2);
    let mut flags = Vec::new();
    if series.len() <= window {
        return flags;
    }
    let shares: Vec<f64> = series.iter().map(|p| p.share).collect();
    for t in window..series.len() {
        let baseline = &shares[t - window..t];
        let base_median = median(baseline);
        let deviations: Vec<f64> = baseline.iter().map(|x| (x - base_median).abs()).collect();
        let mad = median(&deviations);
        let noise = wilson_noise_floor(base_median, series[t].total_samples);
        let sigma = (mad * MAD_SIGMA).max(noise).max(1e-12);
        let delta = series[t].share - base_median;
        let z = delta / sigma;
        if z.abs() >= config.z_threshold && delta.abs() >= config.min_abs_delta.max(noise) {
            flags.push(SeriesFlag { index: t, delta, z });
        }
    }
    flags
}

/// The longest run of consecutive, same-sign flags ending anywhere in the
/// series, if it reaches the sustained threshold.
#[must_use]
pub fn sustained_run(flags: &[SeriesFlag], config: &AnomalyConfig) -> Option<(usize, usize, f64)> {
    let needed = config.sustained.max(1);
    let mut best: Option<(usize, usize, f64)> = None;
    let mut run_start = 0usize;
    let mut run_len = 0usize;
    for (i, flag) in flags.iter().enumerate() {
        let extends = i > 0
            && flags[i - 1].index + 1 == flag.index
            && flags[i - 1].delta.signum() == flag.delta.signum();
        if extends {
            run_len += 1;
        } else {
            run_start = i;
            run_len = 1;
        }
        if run_len >= needed {
            let start_index = flags[run_start].index;
            best = Some((start_index, run_len, flag.delta));
        }
    }
    best
}

/// Extracts one key's share series across snapshots (absent keys are 0).
#[must_use]
pub fn share_series(snapshots: &[ProfileSnapshot], key: &str, stacks: bool) -> Vec<SeriesPoint> {
    snapshots
        .iter()
        .map(|s| {
            let map = if stacks { &s.stacks } else { &s.categories };
            let ns = map.get(key).copied().unwrap_or(0);
            let share = if s.total_exact_ns == 0 {
                0.0
            } else {
                // audit: allow(cast, nanosecond totals to f64 for a share; exact below 2^53)
                ns as f64 / s.total_exact_ns as f64
            };
            SeriesPoint {
                share,
                total_samples: s.total_samples,
            }
        })
        .collect()
}

/// Runs the detector over every category and stack series in the history,
/// returning all sustained drifts (empty = healthy). Categories are checked
/// first, then stacks, each in canonical key order.
#[must_use]
pub fn detect_anomalies(
    snapshots: &[ProfileSnapshot],
    config: &AnomalyConfig,
) -> Vec<SustainedDrift> {
    let mut drifts = Vec::new();
    for (stacks, label) in [(false, "category"), (true, "stack")] {
        let mut keys: Vec<&String> = snapshots
            .iter()
            .flat_map(|s| {
                if stacks {
                    s.stacks.keys()
                } else {
                    s.categories.keys()
                }
            })
            .collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let series = share_series(snapshots, key, stacks);
            let flags = series_flags(&series, config);
            if let Some((start, run, last_delta)) = sustained_run(&flags, config) {
                drifts.push(SustainedDrift {
                    key: format!("{label}:{key}"),
                    start,
                    run,
                    last_delta,
                });
            }
        }
    }
    drifts
}

// ---------------------------------------------------------------------------
// Reports: pairwise drift gate (shared with `profile_diff`) and
// "regressed since commit X".
// ---------------------------------------------------------------------------

/// Thresholds for the pairwise drift gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftThresholds {
    /// Maximum tolerated absolute category-share movement.
    pub category: f64,
    /// Maximum tolerated absolute stack-share movement (None = report
    /// stacks but don't gate on them).
    pub stack: Option<f64>,
}

/// The pairwise share-drift report behind the `profile_diff` gate.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Category share movements, largest magnitude first.
    pub category_deltas: Vec<ShareDelta>,
    /// Stack share movements, largest magnitude first.
    pub stack_deltas: Vec<ShareDelta>,
    /// The gate thresholds the report was built against.
    pub thresholds: DriftThresholds,
}

impl DriftReport {
    /// Builds the report from per-category and per-stack share maps of a
    /// baseline and a candidate profile.
    #[must_use]
    pub fn between(
        baseline_categories: &BTreeMap<String, f64>,
        candidate_categories: &BTreeMap<String, f64>,
        baseline_stacks: &BTreeMap<String, f64>,
        candidate_stacks: &BTreeMap<String, f64>,
        thresholds: DriftThresholds,
    ) -> Self {
        DriftReport {
            category_deltas: share_deltas(baseline_categories, candidate_categories),
            stack_deltas: share_deltas(baseline_stacks, candidate_stacks),
            thresholds,
        }
    }

    /// Largest absolute category movement.
    #[must_use]
    pub fn max_category_drift(&self) -> f64 {
        max_abs_delta(&self.category_deltas)
    }

    /// Largest absolute stack movement.
    #[must_use]
    pub fn max_stack_drift(&self) -> f64 {
        max_abs_delta(&self.stack_deltas)
    }

    /// True when every gated dimension is within its threshold.
    #[must_use]
    pub fn clean(&self) -> bool {
        if self.max_category_drift() > self.thresholds.category {
            return false;
        }
        match self.thresholds.stack {
            Some(t) => self.max_stack_drift() <= t,
            None => true,
        }
    }

    /// Every delta that exceeds its dimension's threshold (category always
    /// gated; stacks only when a stack threshold is set).
    #[must_use]
    pub fn findings(&self) -> Vec<(&'static str, &ShareDelta)> {
        let mut out: Vec<(&'static str, &ShareDelta)> = self
            .category_deltas
            .iter()
            .filter(|d| d.delta().abs() > self.thresholds.category)
            .map(|d| ("category", d))
            .collect();
        if let Some(t) = self.thresholds.stack {
            out.extend(
                self.stack_deltas
                    .iter()
                    .filter(|d| d.delta().abs() > t)
                    .map(|d| ("stack", d)),
            );
        }
        out
    }

    /// Machine-readable JSON in the `xtask audit --json` convention:
    /// summary scalars, a `clean` verdict, and a `findings` array.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"hsdp-profile-diff/1\",\n");
        out.push_str(&format!(
            "  \"category_threshold\": {},\n",
            json_f64(self.thresholds.category)
        ));
        out.push_str(&format!(
            "  \"stack_threshold\": {},\n",
            self.thresholds.stack.map_or("null".to_owned(), json_f64)
        ));
        out.push_str(&format!(
            "  \"max_category_drift\": {},\n",
            json_f64(self.max_category_drift())
        ));
        out.push_str(&format!(
            "  \"max_stack_drift\": {},\n",
            json_f64(self.max_stack_drift())
        ));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"findings\": [");
        let findings = self.findings();
        for (i, (kind, d)) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"kind\": \"{kind}\", \"name\": \"{}\", \"before\": {}, \
                 \"after\": {}, \"delta\": {}}}",
                json_escape(&d.name),
                json_f64(d.before),
                json_f64(d.after),
                json_f64(d.delta()),
            ));
        }
        if !findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// "Top regressed since commit X": the share movements between a baseline
/// snapshot and the latest one.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Commit of the baseline snapshot.
    pub baseline_commit: String,
    /// Index of the baseline snapshot in the history.
    pub baseline_index: usize,
    /// Index of the latest snapshot in the history.
    pub latest_index: usize,
    /// Commit of the latest snapshot.
    pub latest_commit: String,
    /// Category movements, largest magnitude first.
    pub category_deltas: Vec<ShareDelta>,
    /// Stack movements, largest magnitude first.
    pub stack_deltas: Vec<ShareDelta>,
}

/// Builds the regression report against the snapshot at `since` (a commit
/// id, matched exactly; `None` = the first snapshot). Returns `None` when
/// the history is empty or the commit is unknown.
#[must_use]
pub fn regressions_since(
    snapshots: &[ProfileSnapshot],
    since: Option<&str>,
) -> Option<RegressionReport> {
    let latest = snapshots.last()?;
    let baseline_index = match since {
        Some(commit) => snapshots.iter().position(|s| s.meta.commit == commit)?,
        None => 0,
    };
    let baseline = &snapshots[baseline_index];
    Some(RegressionReport {
        baseline_commit: baseline.meta.commit.clone(),
        baseline_index,
        latest_index: snapshots.len() - 1,
        latest_commit: latest.meta.commit.clone(),
        category_deltas: share_deltas(&baseline.category_shares(), &latest.category_shares()),
        stack_deltas: share_deltas(&baseline.stack_shares(), &latest.stack_shares()),
    })
}

impl RegressionReport {
    /// Renders the human-readable "top regressed" tables.
    #[must_use]
    pub fn render_text(&self, top: usize) -> String {
        let mut out = format!(
            "profile history: {} -> {} (baseline index {})\n",
            self.baseline_commit, self.latest_commit, self.baseline_index
        );
        for (label, deltas) in [
            ("categories", &self.category_deltas),
            ("stacks", &self.stack_deltas),
        ] {
            out.push_str(&format!("top regressed {label}:\n"));
            let mut printed = 0usize;
            for d in deltas {
                if printed >= top {
                    break;
                }
                if d.delta() == 0.0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {:+.4}  {:>7.4} -> {:>7.4}  {}\n",
                    d.delta(),
                    d.before,
                    d.after,
                    d.name
                ));
                printed += 1;
            }
            if printed == 0 {
                out.push_str("  (no movement)\n");
            }
        }
        out
    }

    /// Machine-readable JSON (`xtask audit --json` convention).
    #[must_use]
    pub fn to_json(&self, top: usize) -> String {
        let mut out = String::from("{\n  \"schema\": \"hsdp-profile-history-report/1\",\n");
        out.push_str(&format!(
            "  \"baseline_commit\": \"{}\",\n  \"latest_commit\": \"{}\",\n",
            json_escape(&self.baseline_commit),
            json_escape(&self.latest_commit)
        ));
        for (label, deltas) in [
            ("categories", &self.category_deltas),
            ("stacks", &self.stack_deltas),
        ] {
            out.push_str(&format!("  \"{label}\": ["));
            let shown: Vec<&ShareDelta> = deltas
                .iter()
                .filter(|d| d.delta() != 0.0)
                .take(top)
                .collect();
            for (i, d) in shown.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"name\": \"{}\", \"before\": {}, \"after\": {}, \"delta\": {}}}",
                    json_escape(&d.name),
                    json_f64(d.before),
                    json_f64(d.after),
                    json_f64(d.delta()),
                ));
            }
            if !shown.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("],\n");
        }
        out.push_str(&format!(
            "  \"snapshots_spanned\": {}\n}}\n",
            self.latest_index - self.baseline_index + 1
        ));
        out
    }
}

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a finite JSON number.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(commit: &str, seq: u64, proto_ns: u64, other_ns: u64) -> ProfileSnapshot {
        let mut s = ProfileSnapshot {
            meta: SnapshotMeta {
                commit: commit.to_owned(),
                sequence: seq,
                host_parallelism: 4,
                cpu_features: "sse4.2+avx2".to_owned(),
            },
            total_exact_ns: proto_ns + other_ns,
            total_samples: (proto_ns + other_ns) / 10,
            ..ProfileSnapshot::default()
        };
        s.categories.insert("dc.protobuf".to_owned(), proto_ns);
        s.categories.insert("core.read".to_owned(), other_ns);
        s.stacks
            .insert("spanner.commit;rpc;proto_encode".to_owned(), proto_ns);
        s.stacks
            .insert("spanner.commit;storage;read".to_owned(), other_ns);
        s.quantiles.insert(
            "bigquery/query_latency_ns".to_owned(),
            QuantileRow {
                count: 100,
                p50: 1_000,
                p95: 5_000,
                p99: 9_000,
            },
        );
        s.bench
            .insert("fleet/wall_clock/sequential".to_owned(), 1.5e8);
        s.tail
            .insert("spanner/p99_tax_share_ppm".to_owned(), 471_234);
        s.tail.insert("spanner/requests".to_owned(), 120);
        s
    }

    #[test]
    fn snapshot_roundtrips_byte_identically() {
        let s = snapshot("abc123", 7, 600_000, 400_000);
        let bytes = s.encode();
        let decoded = ProfileSnapshot::decode(&bytes).expect("decodes");
        assert_eq!(decoded, s);
        assert_eq!(decoded.encode(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn shares_derive_from_exact_ns() {
        let s = snapshot("abc", 1, 750, 250);
        let shares = s.category_shares();
        assert!((shares["dc.protobuf"] - 0.75).abs() < 1e-12);
        assert!((shares["core.read"] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn store_appends_and_loads() {
        let dir = std::env::temp_dir().join(format!("hsdp-history-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let store = HistoryStore::open(dir.join("unit.bin"));
        std::fs::remove_file(store.path()).ok();
        for i in 0..3u64 {
            let outcome = store
                .append(&snapshot(&format!("c{i}"), i, 500 + i, 500))
                .expect("append");
            assert_eq!(outcome.snapshots as u64, i + 1);
            assert!(!outcome.recovered);
        }
        let loaded = store.load().expect("load");
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[2].meta.commit, "c2");
        std::fs::remove_file(store.path()).ok();
        std::fs::remove_dir(dir).ok();
    }

    fn flat_series(n: usize, share: f64) -> Vec<SeriesPoint> {
        (0..n)
            .map(|i| SeriesPoint {
                // Tiny deterministic jitter so MAD is nonzero.
                share: share + (i % 3) as f64 * 1e-4,
                total_samples: 100_000,
            })
            .collect()
    }

    #[test]
    fn flat_series_never_flags() {
        let series = flat_series(20, 0.25);
        assert!(series_flags(&series, &AnomalyConfig::default()).is_empty());
    }

    #[test]
    fn single_blip_flags_but_is_not_sustained() {
        let mut series = flat_series(20, 0.25);
        series[12].share = 0.32;
        let config = AnomalyConfig::default();
        let flags = series_flags(&series, &config);
        assert!(
            flags.iter().any(|f| f.index == 12),
            "the blip itself is flagged: {flags:?}"
        );
        assert!(
            sustained_run(&flags, &config).is_none(),
            "one blip is not sustained drift"
        );
    }

    #[test]
    fn sustained_shift_is_detected() {
        let mut series = flat_series(20, 0.25);
        for point in series.iter_mut().skip(14) {
            point.share += 0.06;
        }
        let config = AnomalyConfig::default();
        let flags = series_flags(&series, &config);
        let run = sustained_run(&flags, &config).expect("sustained drift detected");
        assert_eq!(run.0, 14, "run starts at the shift");
        assert!(run.1 >= config.sustained);
        assert!(run.2 > 0.0, "regression direction is positive");
    }

    #[test]
    fn wilson_floor_suppresses_tiny_sample_counts() {
        // Same +6% shift, but the snapshots carry almost no samples: the
        // Wilson half-width at 20 trials (~±20%) swallows the movement.
        let mut series = flat_series(20, 0.25);
        for point in &mut series {
            point.total_samples = 20;
        }
        for point in series.iter_mut().skip(14) {
            point.share += 0.06;
        }
        let flags = series_flags(&series, &AnomalyConfig::default());
        assert!(flags.is_empty(), "sampling noise must not page: {flags:?}");
    }

    #[test]
    fn detect_anomalies_names_the_drifting_key() {
        let mut snapshots: Vec<ProfileSnapshot> = (0..20u64)
            .map(|i| snapshot(&format!("c{i}"), i, 250_000 + (i % 3) * 100, 750_000))
            .collect();
        for s in snapshots.iter_mut().skip(14) {
            let proto = s.categories["dc.protobuf"] + 80_000;
            s.categories.insert("dc.protobuf".to_owned(), proto);
            let stack = s.stacks["spanner.commit;rpc;proto_encode"] + 80_000;
            s.stacks
                .insert("spanner.commit;rpc;proto_encode".to_owned(), stack);
            s.total_exact_ns += 80_000;
        }
        let drifts = detect_anomalies(&snapshots, &AnomalyConfig::default());
        assert!(
            drifts.iter().any(|d| d.key == "category:dc.protobuf"),
            "{drifts:?}"
        );
        assert!(drifts
            .iter()
            .any(|d| d.key == "stack:spanner.commit;rpc;proto_encode"));
    }

    #[test]
    fn drift_report_gates_and_serializes() {
        let mut before = BTreeMap::new();
        before.insert("dc.protobuf".to_owned(), 0.30);
        before.insert("core.read".to_owned(), 0.70);
        let mut after = BTreeMap::new();
        after.insert("dc.protobuf".to_owned(), 0.35);
        after.insert("core.read".to_owned(), 0.65);
        let empty = BTreeMap::new();
        let report = DriftReport::between(
            &before,
            &after,
            &empty,
            &empty,
            DriftThresholds {
                category: 0.01,
                stack: None,
            },
        );
        assert!(!report.clean());
        assert!((report.max_category_drift() - 0.05).abs() < 1e-12);
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"kind\": \"category\""));
        assert!(json.contains("dc.protobuf"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let pass = DriftReport::between(
            &before,
            &before,
            &empty,
            &empty,
            DriftThresholds {
                category: 0.01,
                stack: Some(0.02),
            },
        );
        assert!(pass.clean());
        assert!(pass.to_json().contains("\"findings\": []"));
    }

    #[test]
    fn regression_report_since_commit() {
        let snapshots: Vec<ProfileSnapshot> = vec![
            snapshot("aaa", 0, 300, 700),
            snapshot("bbb", 1, 320, 680),
            snapshot("ccc", 2, 420, 580),
        ];
        let report = regressions_since(&snapshots, Some("aaa")).expect("baseline found");
        assert_eq!(report.baseline_commit, "aaa");
        assert_eq!(report.latest_commit, "ccc");
        let proto = report
            .category_deltas
            .iter()
            .find(|d| d.name == "dc.protobuf")
            .expect("protobuf category present");
        assert!(proto.delta() > 0.1, "{proto:?}");
        let text = report.render_text(5);
        assert!(text.contains("dc.protobuf"));
        let json = report.to_json(5);
        assert!(json.contains("\"baseline_commit\": \"aaa\""));
        assert!(regressions_since(&snapshots, Some("zzz")).is_none());
        assert!(regressions_since(&[], None).is_none());
    }
}
