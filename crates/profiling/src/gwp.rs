//! GWP-style fleet profiling: statistical sampling of labeled CPU work and
//! aggregation by leaf function and category (Section 5.1).
//!
//! The real Google-Wide Profiler interrupts machines across the fleet and
//! attributes each sample to the leaf function of the interrupted call
//! stack. Here, labeled CPU work items (category + leaf + duration) arrive
//! from the simulated platforms; the profiler draws Poisson-ish samples
//! proportional to duration, then aggregates — the same estimator, fed by
//! simulated cycles.

use std::collections::BTreeMap;

use hsdp_core::category::{BroadCategory, CoreComputeOp, CpuCategory, DatacenterTax, SystemTax};
use hsdp_core::component::CpuBreakdown;
use hsdp_core::stack::{empty_path, FramePath};
use hsdp_core::units::Seconds;
use hsdp_rng::Rng;
use hsdp_rng::StdRng;
use hsdp_simcore::time::SimDuration;

use crate::stacks::StackProfile;

/// One labeled unit of CPU work offered to the profiler.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafWork {
    /// Fine cycle category.
    pub category: CpuCategory,
    /// Leaf function name.
    pub leaf: &'static str,
    /// CPU time spent.
    pub time: SimDuration,
    /// Call-frame path active when the work was charged (outermost first,
    /// leaf not included).
    pub stack: FramePath,
}

impl LeafWork {
    /// A work item with an empty call-frame path (no scopes active).
    #[must_use]
    pub fn unstacked(
        category: impl Into<CpuCategory>,
        leaf: &'static str,
        time: SimDuration,
    ) -> Self {
        LeafWork {
            category: category.into(),
            leaf,
            time,
            stack: empty_path(),
        }
    }
}

/// The profiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GwpConfig {
    /// Mean sampling period (simulated CPU time between samples).
    pub sample_period: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GwpConfig {
    fn default() -> Self {
        GwpConfig {
            sample_period: SimDuration::from_micros(10),
            seed: 0x6b9,
        }
    }
}

/// An aggregated CPU profile: sample counts by (category, leaf).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleProfile {
    samples: BTreeMap<(CpuCategory, &'static str), u64>,
    total: u64,
}

impl CycleProfile {
    /// Total samples collected.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Samples attributed to one fine category.
    #[must_use]
    pub fn category_samples(&self, category: CpuCategory) -> u64 {
        self.samples
            .iter()
            .filter(|((c, _), _)| *c == category)
            .map(|(_, n)| n)
            .sum()
    }

    /// The share of cycles in a broad category (Figure 3 rows).
    #[must_use]
    pub fn broad_share(&self, broad: BroadCategory) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self
            .samples
            .iter()
            .filter(|((c, _), _)| c.broad() == broad)
            .map(|(_, n)| n)
            .sum();
        n as f64 / self.total as f64
    }

    /// Share of a fine category within its broad category (the Figures 4–6
    /// normalization).
    #[must_use]
    pub fn share_within_broad(&self, category: CpuCategory) -> f64 {
        let broad_total: u64 = self
            .samples
            .iter()
            .filter(|((c, _), _)| c.broad() == category.broad())
            .map(|(_, n)| n)
            .sum();
        if broad_total == 0 {
            return 0.0;
        }
        self.category_samples(category) as f64 / broad_total as f64
    }

    /// The heaviest leaf functions, descending by samples.
    #[must_use]
    pub fn top_leaves(&self, n: usize) -> Vec<(&'static str, CpuCategory, u64)> {
        let mut leaves: Vec<(&'static str, CpuCategory, u64)> = self
            .samples
            .iter()
            .map(|(&(category, leaf), &count)| (leaf, category, count))
            .collect();
        leaves.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        leaves.truncate(n);
        leaves
    }

    /// Converts the sample counts into a model-ready breakdown (total time
    /// reconstructed from samples × period is irrelevant for shares, so the
    /// breakdown is normalized to 1 second).
    #[must_use]
    pub fn to_breakdown(&self) -> CpuBreakdown {
        if self.total == 0 {
            return CpuBreakdown::new();
        }
        let mut by_category: BTreeMap<CpuCategory, u64> = BTreeMap::new();
        for (&(category, _), &count) in &self.samples {
            *by_category.entry(category).or_insert(0) += count;
        }
        by_category
            .into_iter()
            .map(|(category, count)| (category, Seconds::new(count as f64 / self.total as f64)))
            .collect()
    }

    /// The categories present in Figure 4 order for the given platform,
    /// with their within-broad shares.
    #[must_use]
    pub fn core_compute_rows(
        &self,
        platform: hsdp_core::category::Platform,
    ) -> Vec<(CoreComputeOp, f64)> {
        CoreComputeOp::for_platform(platform)
            .iter()
            .map(|&op| (op, self.share_within_broad(CpuCategory::Core(op))))
            .collect()
    }

    /// Figure 5 rows: datacenter taxes with within-broad shares.
    #[must_use]
    pub fn datacenter_tax_rows(&self) -> Vec<(DatacenterTax, f64)> {
        DatacenterTax::ALL
            .iter()
            .map(|&tax| (tax, self.share_within_broad(CpuCategory::Datacenter(tax))))
            .collect()
    }

    /// Figure 6 rows: system taxes with within-broad shares.
    #[must_use]
    pub fn system_tax_rows(&self) -> Vec<(SystemTax, f64)> {
        SystemTax::ALL
            .iter()
            .map(|&tax| (tax, self.share_within_broad(CpuCategory::System(tax))))
            .collect()
    }
}

/// The sampling profiler.
#[derive(Debug)]
pub struct GwpProfiler {
    config: GwpConfig,
    rng: StdRng,
    profile: CycleProfile,
    stacks: StackProfile,
    /// Time carried over until the next sample fires.
    residual: SimDuration,
}

impl GwpProfiler {
    /// A fresh profiler.
    #[must_use]
    pub fn new(config: GwpConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        GwpProfiler {
            config,
            rng,
            profile: CycleProfile::default(),
            stacks: StackProfile::new(),
            residual: SimDuration::ZERO,
        }
    }

    /// Offers one work item: samples fire every ~`sample_period` of
    /// cumulative CPU time, each attributed to the active leaf. The item's
    /// full frame path is folded into the stack profile regardless of
    /// whether a sample fires, so the stack tree carries both exact
    /// nanoseconds and sampled counts.
    pub fn observe(&mut self, work: &LeafWork) {
        let period = self.config.sample_period.as_nanos().max(1);
        let mut budget = self.residual.as_nanos() + work.time.as_nanos();
        let mut fired = 0u64;
        while budget >= period {
            budget -= period;
            // Jitter the sample instant so periodic work cannot alias.
            let _: f64 = self.rng.random();
            fired += 1;
        }
        if fired > 0 {
            *self
                .profile
                .samples
                .entry((work.category, work.leaf))
                .or_insert(0) += fired;
            self.profile.total += fired;
        }
        self.stacks
            .record(&work.stack, work.leaf, work.category, work.time, fired);
        self.residual = SimDuration::from_nanos(budget);
    }

    /// Offers a batch of work items.
    pub fn observe_all<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = &'a LeafWork>,
    {
        for item in items {
            self.observe(item);
        }
    }

    /// The aggregated profile.
    #[must_use]
    pub fn profile(&self) -> &CycleProfile {
        &self.profile
    }

    /// The aggregated stack-tree profile (exact + sampled weights).
    #[must_use]
    pub fn stack_profile(&self) -> &StackProfile {
        &self.stacks
    }

    /// Consumes the profiler, returning the profile.
    #[must_use]
    pub fn into_profile(self) -> CycleProfile {
        self.profile
    }

    /// Consumes the profiler, returning both the leaf-level cycle profile
    /// and the stack-tree profile.
    #[must_use]
    pub fn into_parts(self) -> (CycleProfile, StackProfile) {
        (self.profile, self.stacks)
    }

    /// Consumes the profiler, returning just the stack-tree profile —
    /// the shape the profile-history snapshot builder wants.
    #[must_use]
    pub fn into_stack_profile(self) -> StackProfile {
        self.stacks
    }

    /// The sample period in use.
    #[must_use]
    pub fn sample_period(&self) -> SimDuration {
        self.config.sample_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_core::category::Platform;

    fn work(category: impl Into<CpuCategory>, leaf: &'static str, micros: u64) -> LeafWork {
        LeafWork::unstacked(category, leaf, SimDuration::from_micros(micros))
    }

    #[test]
    fn samples_proportional_to_time() {
        let mut profiler = GwpProfiler::new(GwpConfig {
            sample_period: SimDuration::from_micros(1),
            seed: 1,
        });
        profiler.observe(&work(CoreComputeOp::Read, "read_path", 3000));
        profiler.observe(&work(DatacenterTax::Protobuf, "proto_encode", 1000));
        let p = profiler.profile();
        let read = p.category_samples(CpuCategory::Core(CoreComputeOp::Read));
        let proto = p.category_samples(CpuCategory::Datacenter(DatacenterTax::Protobuf));
        assert!(read > 2900 && read < 3100, "{read}");
        assert!(proto > 900 && proto < 1100, "{proto}");
    }

    #[test]
    fn sub_period_work_accumulates_via_residual() {
        let mut profiler = GwpProfiler::new(GwpConfig {
            sample_period: SimDuration::from_micros(10),
            seed: 2,
        });
        // 100 items of 1us each = 100us total = ~10 samples.
        for _ in 0..100 {
            profiler.observe(&work(SystemTax::Stl, "vector_push", 1));
        }
        let total = profiler.profile().total_samples();
        assert_eq!(total, 10, "residual carries across items");
    }

    #[test]
    fn broad_and_within_shares() {
        let mut profiler = GwpProfiler::new(GwpConfig {
            sample_period: SimDuration::from_micros(1),
            seed: 3,
        });
        profiler.observe(&work(CoreComputeOp::Read, "a", 500));
        profiler.observe(&work(CoreComputeOp::Write, "b", 500));
        profiler.observe(&work(DatacenterTax::Rpc, "c", 1000));
        let p = profiler.profile();
        assert!((p.broad_share(BroadCategory::CoreCompute) - 0.5).abs() < 0.02);
        assert!((p.broad_share(BroadCategory::DatacenterTax) - 0.5).abs() < 0.02);
        assert!((p.share_within_broad(CpuCategory::Core(CoreComputeOp::Read)) - 0.5).abs() < 0.05);
        assert!(
            (p.share_within_broad(CpuCategory::Datacenter(DatacenterTax::Rpc)) - 1.0).abs() < 1e-9
        );
    }

    #[test]
    fn top_leaves_ordering() {
        let mut profiler = GwpProfiler::new(GwpConfig {
            sample_period: SimDuration::from_micros(1),
            seed: 4,
        });
        profiler.observe(&work(SystemTax::OperatingSystems, "syscall", 300));
        profiler.observe(&work(CoreComputeOp::Filter, "simd_filter", 700));
        let top = profiler.profile().top_leaves(2);
        assert_eq!(top[0].0, "simd_filter");
        assert_eq!(top[1].0, "syscall");
    }

    #[test]
    fn breakdown_is_normalized() {
        let mut profiler = GwpProfiler::new(GwpConfig::default());
        profiler.observe(&work(CoreComputeOp::Read, "a", 100_000));
        profiler.observe(&work(SystemTax::Stl, "b", 100_000));
        let b = profiler.into_profile().to_breakdown();
        assert!((b.total().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = CycleProfile::default();
        assert_eq!(p.broad_share(BroadCategory::SystemTax), 0.0);
        assert!(p.to_breakdown().is_empty());
        assert!(p.top_leaves(5).is_empty());
        assert!(p
            .core_compute_rows(Platform::BigQuery)
            .iter()
            .all(|(_, s)| *s == 0.0));
    }
}
