//! Deterministic stack-tree profiles: frame interning, flamegraph-ready
//! collapsed output, and pprof export.
//!
//! The platforms annotate every [`LeafWork`](crate::gwp::LeafWork) item with
//! the call-frame path that was active when the work was charged
//! (outermost-first, e.g. `spanner.commit → consensus`). [`StackProfile`]
//! aggregates those paths two ways at once:
//!
//! - **exact** nanoseconds from the meter (ground truth), and
//! - **sampled** counts from the GWP estimator,
//!
//! keyed by `(full path incl. leaf, category)`. Frame names are interned
//! into dense ids in first-seen order, so feeding the same work stream
//! always produces the same profile — byte-identical folded text and pprof
//! bytes at any thread count.
//!
//! Export formats:
//!
//! - [`StackProfile::folded`] — Brendan Gregg collapsed-stack text
//!   (`frame;frame;leaf <weight>`), directly consumable by `flamegraph.pl`
//!   and speedscope.
//! - [`StackProfile::to_pprof`] — a `profile.proto` message built with
//!   [`hsdp_taxes::pprof`] (which dogfoods the repo's protowire encoder),
//!   with two value dimensions (`samples/count`, `cpu/nanoseconds`) and a
//!   `category` string label per sample.
//!
//! The share/delta helpers at the bottom power the `profile_diff`
//! regression gate: they recover per-category and per-stack CPU shares from
//! *decoded* pprof bytes, so the gate exercises the full
//! encode → decode → compare loop.

use std::collections::BTreeMap;

use hsdp_core::category::CpuCategory;
use hsdp_simcore::time::SimDuration;
use hsdp_taxes::pprof::{Function, Label, Location, Profile, Sample, ValueType};
use hsdp_telemetry::category_key;

/// Aggregated weight of one `(stack, category)` cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackWeight {
    /// GWP samples attributed to this cell.
    pub samples: u64,
    /// Exact metered CPU nanoseconds (ground truth).
    pub exact_ns: u64,
}

/// A deterministic aggregated stack-tree profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StackProfile {
    /// Interned frame names, dense ids in first-seen order.
    frames: Vec<&'static str>,
    index: BTreeMap<&'static str, u32>,
    /// Weight per (path incl. leaf as interned ids, category).
    entries: BTreeMap<(Vec<u32>, CpuCategory), StackWeight>,
    total_samples: u64,
    total_exact_ns: u64,
}

impl StackProfile {
    /// A fresh, empty profile.
    #[must_use]
    pub fn new() -> Self {
        StackProfile::default()
    }

    fn intern(&mut self, name: &'static str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.frames.len()).unwrap_or(u32::MAX);
        self.frames.push(name);
        self.index.insert(name, id);
        id
    }

    /// Records one work item: `stack` is outermost-first and does *not*
    /// include the leaf, matching the meter's frame convention.
    pub fn record(
        &mut self,
        stack: &[&'static str],
        leaf: &'static str,
        category: CpuCategory,
        exact: SimDuration,
        samples: u64,
    ) {
        let mut path: Vec<u32> = Vec::with_capacity(stack.len() + 1);
        for frame in stack {
            path.push(self.intern(frame));
        }
        path.push(self.intern(leaf));
        let cell = self.entries.entry((path, category)).or_default();
        cell.samples += samples;
        cell.exact_ns += exact.as_nanos();
        self.total_samples += samples;
        self.total_exact_ns += exact.as_nanos();
    }

    /// Total GWP samples recorded.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Total exact metered CPU time.
    #[must_use]
    pub fn total_exact(&self) -> SimDuration {
        SimDuration::from_nanos(self.total_exact_ns)
    }

    /// Number of distinct interned frames (incl. leaves).
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Iterates cells as `(path incl. leaf, category, weight)`.
    pub fn cells(
        &self,
    ) -> impl Iterator<Item = (Vec<&'static str>, CpuCategory, StackWeight)> + '_ {
        self.entries.iter().map(|((path, category), weight)| {
            let names = path
                .iter()
                .map(|&id| self.frames[id as usize])
                .collect::<Vec<_>>();
            (names, *category, *weight)
        })
    }

    /// Renders Brendan Gregg collapsed-stack text: one
    /// `frame;frame;leaf <weight>` line per distinct path, weighted by
    /// exact nanoseconds and merged across categories, sorted
    /// lexicographically. Load with `flamegraph.pl` or speedscope.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for (names, _, weight) in self.cells() {
            *merged.entry(names.join(";")).or_insert(0) += weight.exact_ns;
        }
        let mut out = String::new();
        for (path, ns) in &merged {
            out.push_str(path);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Exact CPU nanoseconds per category, keyed by the telemetry
    /// category key (`dc.protobuf`, `core.read`, …). Feeds the
    /// profile-history snapshot builder.
    #[must_use]
    pub fn category_exact_ns(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for ((_, category), weight) in &self.entries {
            *totals
                .entry(category_key(*category).to_owned())
                .or_insert(0) += weight.exact_ns;
        }
        totals
    }

    /// Exact CPU nanoseconds per collapsed stack (root-first
    /// `frame;frame;leaf` keys, merged across categories).
    #[must_use]
    pub fn stack_exact_ns(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for (names, _, weight) in self.cells() {
            *totals.entry(names.join(";")).or_insert(0) += weight.exact_ns;
        }
        totals
    }

    /// Exports the profile as an in-memory pprof message with two value
    /// dimensions — `samples/count` and `cpu/nanoseconds` — and a
    /// `category` string label per sample. Location ids are emitted leaf
    /// first, per pprof convention.
    #[must_use]
    pub fn to_pprof(&self, period: SimDuration) -> Profile {
        let mut strings: Vec<String> = Vec::new();
        let mut string_index: BTreeMap<String, u64> = BTreeMap::new();
        let mut intern_str = |s: &str| -> u64 {
            if let Some(&idx) = string_index.get(s) {
                return idx;
            }
            let idx = strings.len() as u64;
            strings.push(s.to_owned());
            string_index.insert(s.to_owned(), idx);
            idx
        };
        intern_str("");
        let st_samples = ValueType {
            kind: intern_str("samples"),
            unit: intern_str("count"),
        };
        let st_cpu = ValueType {
            kind: intern_str("cpu"),
            unit: intern_str("nanoseconds"),
        };
        let label_key = intern_str("category");

        // One function + one location per interned frame; pprof ids are
        // 1-based, so frame id N maps to location/function id N+1.
        let functions: Vec<Function> = self
            .frames
            .iter()
            .enumerate()
            .map(|(i, name)| Function {
                id: i as u64 + 1,
                name: intern_str(name),
            })
            .collect();
        let locations: Vec<Location> = functions
            .iter()
            .map(|f| Location {
                id: f.id,
                function_id: f.id,
            })
            .collect();

        let samples: Vec<Sample> = self
            .entries
            .iter()
            .map(|((path, category), weight)| Sample {
                location_ids: path.iter().rev().map(|&id| u64::from(id) + 1).collect(),
                values: vec![
                    i64::try_from(weight.samples).unwrap_or(i64::MAX),
                    i64::try_from(weight.exact_ns).unwrap_or(i64::MAX),
                ],
                labels: vec![Label {
                    key: label_key,
                    str_value: intern_str(category_key(*category)),
                }],
            })
            .collect();

        Profile {
            sample_types: vec![st_samples, st_cpu],
            samples,
            locations,
            functions,
            string_table: strings,
            duration_nanos: i64::try_from(self.total_exact_ns).unwrap_or(i64::MAX),
            period_type: Some(st_cpu),
            period: i64::try_from(period.as_nanos()).unwrap_or(i64::MAX),
        }
    }
}

/// Index of the `cpu/nanoseconds` value dimension in a decoded profile
/// (falls back to the last dimension if none is named `cpu`).
fn cpu_value_index(profile: &Profile) -> usize {
    profile
        .sample_types
        .iter()
        .position(|vt| profile.string(vt.kind) == "cpu")
        .unwrap_or(profile.sample_types.len().saturating_sub(1))
}

/// Per-category CPU shares recovered from a decoded pprof profile via its
/// `category` sample labels. Shares sum to 1 (when any CPU time exists).
#[must_use]
pub fn pprof_category_shares(profile: &Profile) -> BTreeMap<String, f64> {
    let value_idx = cpu_value_index(profile);
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut grand = 0u64;
    for sample in &profile.samples {
        let ns = sample
            .values
            .get(value_idx)
            .copied()
            .and_then(|v| u64::try_from(v).ok())
            .unwrap_or(0);
        let category = sample
            .labels
            .iter()
            .find(|l| profile.string(l.key) == "category")
            .map_or("", |l| profile.string(l.str_value));
        *totals.entry(category.to_owned()).or_insert(0) += ns;
        grand += ns;
    }
    shares_of(totals, grand)
}

/// Per-stack CPU shares (collapsed `frame;frame;leaf` keys, root first)
/// recovered from a decoded pprof profile.
#[must_use]
pub fn pprof_stack_shares(profile: &Profile) -> BTreeMap<String, f64> {
    let value_idx = cpu_value_index(profile);
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut grand = 0u64;
    for sample in &profile.samples {
        let ns = sample
            .values
            .get(value_idx)
            .copied()
            .and_then(|v| u64::try_from(v).ok())
            .unwrap_or(0);
        let mut frames = profile.sample_frames(sample);
        frames.reverse(); // leaf-first on the wire -> root-first collapsed
        *totals.entry(frames.join(";")).or_insert(0) += ns;
        grand += ns;
    }
    shares_of(totals, grand)
}

fn shares_of(totals: BTreeMap<String, u64>, grand: u64) -> BTreeMap<String, f64> {
    ns_shares(&totals, grand)
}

/// Converts a map of exact nanosecond totals into shares of `grand`.
/// Empty when `grand` is 0. Shared by the pprof share recovery above and
/// the profile-history snapshot series.
#[must_use]
pub fn ns_shares(totals: &BTreeMap<String, u64>, grand: u64) -> BTreeMap<String, f64> {
    if grand == 0 {
        return BTreeMap::new();
    }
    totals
        .iter()
        .map(|(k, &ns)| (k.clone(), ns as f64 / grand as f64))
        .collect()
}

/// One share movement between two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareDelta {
    /// Category or collapsed-stack name.
    pub name: String,
    /// Share in the baseline profile.
    pub before: f64,
    /// Share in the candidate profile.
    pub after: f64,
}

impl ShareDelta {
    /// Signed share movement (`after - before`).
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.after - self.before
    }
}

/// Compares two share maps over the union of their keys, sorted by
/// absolute delta descending (ties by name).
#[must_use]
pub fn share_deltas(
    before: &BTreeMap<String, f64>,
    after: &BTreeMap<String, f64>,
) -> Vec<ShareDelta> {
    let mut names: Vec<&String> = before.keys().chain(after.keys()).collect();
    names.sort();
    names.dedup();
    let mut deltas: Vec<ShareDelta> = names
        .into_iter()
        .map(|name| ShareDelta {
            name: name.clone(),
            before: before.get(name).copied().unwrap_or(0.0),
            after: after.get(name).copied().unwrap_or(0.0),
        })
        .collect();
    deltas.sort_by(|a, b| {
        b.delta()
            .abs()
            .partial_cmp(&a.delta().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    deltas
}

/// The largest absolute share movement, or 0 for empty input.
#[must_use]
pub fn max_abs_delta(deltas: &[ShareDelta]) -> f64 {
    deltas.iter().map(|d| d.delta().abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_core::category::{CoreComputeOp, DatacenterTax};

    fn micros(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn sample_profile() -> StackProfile {
        let mut p = StackProfile::new();
        p.record(
            &["spanner.commit", "consensus"],
            "paxos_propose",
            CoreComputeOp::Consensus.into(),
            micros(30),
            3,
        );
        p.record(
            &["spanner.commit", "rpc"],
            "proto_encode",
            DatacenterTax::Protobuf.into(),
            micros(10),
            1,
        );
        p.record(
            &["spanner.commit", "consensus"],
            "paxos_propose",
            CoreComputeOp::Consensus.into(),
            micros(30),
            3,
        );
        p
    }

    #[test]
    fn record_merges_identical_cells() {
        let p = sample_profile();
        assert_eq!(p.total_samples(), 7);
        assert_eq!(p.total_exact(), micros(70));
        assert_eq!(p.cells().count(), 2, "identical paths merged");
    }

    #[test]
    fn folded_lines_are_root_first_and_sorted() {
        let folded = sample_profile().folded();
        assert_eq!(
            folded,
            "spanner.commit;consensus;paxos_propose 60000\n\
             spanner.commit;rpc;proto_encode 10000\n"
        );
        for line in folded.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("weight field");
            assert!(path.contains(';'));
            weight.parse::<u64>().expect("numeric weight");
        }
    }

    #[test]
    fn interning_is_first_seen_order() {
        let mut a = StackProfile::new();
        a.record(&["x"], "y", CoreComputeOp::Read.into(), micros(1), 0);
        a.record(&["x"], "z", CoreComputeOp::Read.into(), micros(1), 0);
        let mut b = StackProfile::new();
        b.record(&["x"], "y", CoreComputeOp::Read.into(), micros(1), 0);
        b.record(&["x"], "z", CoreComputeOp::Read.into(), micros(1), 0);
        assert_eq!(a, b, "same feed, same profile");
        assert_eq!(a.frame_count(), 3);
    }

    #[test]
    fn pprof_export_validates_and_round_trips() {
        let profile = sample_profile().to_pprof(micros(2));
        profile.validate().expect("export is internally consistent");
        let bytes = profile.encode();
        let decoded = Profile::decode(&bytes).expect("decodes");
        assert_eq!(decoded, profile);
        assert_eq!(decoded.period, 2_000);
        assert_eq!(decoded.duration_nanos, 70_000);
        assert_eq!(decoded.sample_types.len(), 2);
    }

    #[test]
    fn pprof_shares_match_source_profile() {
        let src = sample_profile();
        let decoded = Profile::decode(&src.to_pprof(micros(2)).encode()).expect("decodes");
        let by_category = pprof_category_shares(&decoded);
        let consensus = by_category
            .iter()
            .find(|(k, _)| k.contains("consensus"))
            .map(|(_, v)| *v)
            .expect("consensus category present");
        assert!((consensus - 6.0 / 7.0).abs() < 1e-9, "{consensus}");
        let by_stack = pprof_stack_shares(&decoded);
        assert!((by_stack["spanner.commit;consensus;paxos_propose"] - 6.0 / 7.0).abs() < 1e-9);
        assert!((by_stack["spanner.commit;rpc;proto_encode"] - 1.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn deltas_rank_by_magnitude_and_cover_union() {
        let mut before = BTreeMap::new();
        before.insert("a".to_owned(), 0.6);
        before.insert("b".to_owned(), 0.4);
        let mut after = BTreeMap::new();
        after.insert("a".to_owned(), 0.5);
        after.insert("c".to_owned(), 0.5);
        let deltas = share_deltas(&before, &after);
        assert_eq!(deltas.len(), 3, "union of keys");
        assert_eq!(deltas[0].name, "c", "largest movement first");
        assert!((max_abs_delta(&deltas) - 0.5).abs() < 1e-12);
        assert!(max_abs_delta(&[]) == 0.0);
    }

    #[test]
    fn empty_profile_exports_cleanly() {
        let p = StackProfile::new();
        assert_eq!(p.folded(), "");
        let pp = p.to_pprof(micros(1));
        pp.validate().expect("empty profile still valid");
        assert!(pprof_category_shares(&pp).is_empty());
    }
}
