//! Key and value generation for the database workloads.
//!
//! Production key-value traffic is highly skewed; keys follow a zipfian
//! popularity (Section 3 motivates the RAM caches this skew rewards).
//! Values mix compressible, structured content with incompressible payload
//! so the compression tax does real work.

use hsdp_rng::Rng;

/// Generates keys from a keyspace with zipfian popularity.
#[derive(Debug, Clone)]
pub struct KeyGen {
    zipf: ZipfRanks,
    prefix: String,
}

/// Internal zipf over ranks, YCSB-style (duplicated minimal form to keep
/// this crate independent of `hsdp-simcore`'s `Sample` trait objects).
#[derive(Debug, Clone)]
struct ZipfRanks {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

impl ZipfRanks {
    fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1 && theta > 0.0 && theta < 1.0);
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfRanks {
            n,
            theta,
            zetan,
            alpha,
            eta,
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        (((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64)
            .min(self.n - 1)
    }
}

impl KeyGen {
    /// A zipfian keyspace of `keys` keys with skew `theta` and a table
    /// prefix (e.g. `"user"`).
    ///
    /// # Panics
    ///
    /// Panics unless `keys >= 1` and `theta ∈ (0, 1)`.
    #[must_use]
    pub fn new(prefix: &str, keys: u64, theta: f64) -> Self {
        KeyGen {
            zipf: ZipfRanks::new(keys, theta),
            prefix: prefix.to_owned(),
        }
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn keyspace(&self) -> u64 {
        self.zipf.n
    }

    /// Draws a key. Rank is FNV-mixed so popular keys scatter across the
    /// sorted keyspace (as production hashing layers do).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let rank = self.zipf.sample(rng);
        self.key_for_rank(rank)
    }

    /// The key bytes for a specific popularity rank.
    #[must_use]
    pub fn key_for_rank(&self, rank: u64) -> Vec<u8> {
        let scattered = rank
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(0xcbf2_9ce4_8422_2325)
            % self.zipf.n;
        format!("{}:{scattered:016x}", self.prefix).into_bytes()
    }
}

/// Generates values: a compressible structured header plus an
/// incompressibility-controlled payload.
#[derive(Debug, Clone, Copy)]
pub struct ValueGen {
    /// Mean value size in bytes.
    pub mean_size: usize,
    /// Fraction of the payload that is incompressible noise (`0..=1`).
    pub noise_fraction: f64,
}

impl ValueGen {
    /// A generator with the given mean size and 30% incompressible content.
    ///
    /// # Panics
    ///
    /// Panics if `mean_size` is zero.
    #[must_use]
    pub fn new(mean_size: usize) -> Self {
        assert!(mean_size > 0, "mean size must be positive");
        ValueGen {
            mean_size,
            noise_fraction: 0.3,
        }
    }

    /// Draws a value body. Sizes vary uniformly in `[mean/2, 3*mean/2]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let lo = (self.mean_size / 2).max(1);
        let hi = self.mean_size + self.mean_size / 2;
        let size = rng.random_range(lo..=hi);
        let noise_bytes = (size as f64 * self.noise_fraction) as usize;
        let mut value = Vec::with_capacity(size);
        // Compressible structured region: repeated field-like text.
        while value.len() < size - noise_bytes {
            let field = value.len() / 24;
            value.extend_from_slice(format!("field{field}=common-value;").as_bytes());
        }
        value.truncate(size - noise_bytes);
        // Incompressible tail.
        for _ in 0..noise_bytes {
            value.push(rng.random::<u8>());
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> hsdp_rng::StdRng {
        hsdp_rng::StdRng::seed_from_u64(7)
    }

    #[test]
    fn keys_are_skewed_and_prefixed() {
        let gen = KeyGen::new("tbl", 10_000, 0.99);
        let mut rng = rng();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let key = gen.sample(&mut rng);
            assert!(key.starts_with(b"tbl:"));
            *counts.entry(key).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 1000, "hottest key should dominate, got {max}");
        assert!(counts.len() > 100, "long tail exists");
    }

    #[test]
    fn rank_keys_are_stable_and_distinct() {
        let gen = KeyGen::new("t", 1000, 0.9);
        assert_eq!(gen.key_for_rank(5), gen.key_for_rank(5));
        assert_ne!(gen.key_for_rank(5), gen.key_for_rank(6));
        assert_eq!(gen.keyspace(), 1000);
    }

    #[test]
    fn values_have_requested_size_range() {
        let gen = ValueGen::new(1000);
        let mut rng = rng();
        for _ in 0..100 {
            let v = gen.sample(&mut rng);
            assert!((500..=1500).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn values_are_partially_compressible() {
        let gen = ValueGen::new(4096);
        let mut rng = rng();
        let v = gen.sample(&mut rng);
        let ratio = hsdp_taxes::compress::compression_ratio(&v);
        // Structured region compresses, noise does not: ratio in between.
        assert!(ratio > 1.3 && ratio < 30.0, "ratio {ratio}");
    }
}
