//! # hsdp-workload
//!
//! Synthetic workload generation standing in for the paper's proprietary
//! production traffic (see DESIGN.md's substitution table):
//!
//! - [`keys`] — zipfian key popularity and partially compressible values
//!   for the database platforms.
//! - [`rows`] — wide fact/dimension tables for the analytics engine.
//! - [`mix`] — operation mixes (YCSB-style DB mixes, dashboard analytics
//!   mixes).
//! - [`proto_corpus`] — HyperProtoBench-style fleet-representative protobuf
//!   message corpora for the chained-accelerator validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod keys;
pub mod mix;
pub mod proto_corpus;
pub mod rows;

pub use keys::{KeyGen, ValueGen};
pub use mix::{AnalyticsMix, AnalyticsQuery, DbMix, DbOp};
pub use proto_corpus::{corpus, MessageShape};
pub use rows::{DimRow, FactGen, FactRow};
