//! Analytic table row generation for the query-engine workload.
//!
//! Models the workloads the paper's introduction motivates for BigQuery:
//! "analysis of crawled web documents, resolving issues from crash reports,
//! and spam analysis" — wide fact tables with categorical, numeric, and
//! string columns, plus a small dimension table for joins.

use hsdp_rng::Rng;

/// One fact-table row: a request-log record.
#[derive(Debug, Clone, PartialEq)]
pub struct FactRow {
    /// User identifier (zipf-ish popularity via modulo mixing).
    pub user_id: i64,
    /// Region key (joins against [`DimRow`]).
    pub region: u32,
    /// Request latency in milliseconds.
    pub latency_ms: f64,
    /// Response size in bytes.
    pub bytes: i64,
    /// Request URL (string column).
    pub url: String,
    /// Whether the request succeeded.
    pub success: bool,
}

/// One dimension-table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimRow {
    /// Region key.
    pub region: u32,
    /// Region name.
    pub name: String,
}

/// Generates fact rows with realistic column distributions.
#[derive(Debug, Clone, Copy)]
pub struct FactGen {
    /// Number of distinct users.
    pub users: i64,
    /// Number of distinct regions.
    pub regions: u32,
}

impl Default for FactGen {
    fn default() -> Self {
        FactGen {
            users: 100_000,
            regions: 32,
        }
    }
}

impl FactGen {
    /// Draws one row.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FactRow {
        // Square a uniform to skew user popularity toward low ids.
        let u: f64 = rng.random();
        let user_id = ((u * u) * self.users as f64) as i64;
        let region = rng.random_range(0..self.regions);
        // Log-normal-ish latency: exp of a small normal via sum of uniforms.
        let z: f64 = (0..4).map(|_| rng.random::<f64>()).sum::<f64>() - 2.0;
        let latency_ms = (z * 0.8).exp() * 20.0;
        let bytes = rng.random_range(200..200_000);
        let url = format!(
            "/api/v{}/{}/{}",
            rng.random_range(1..4),
            ["search", "ads", "docs", "maps", "play"][rng.random_range(0..5usize)],
            rng.random_range(0..10_000)
        );
        let success = rng.random_bool(0.97);
        FactRow {
            user_id,
            region,
            latency_ms,
            bytes,
            url,
            success,
        }
    }

    /// Generates `count` rows.
    pub fn rows<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<FactRow> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// The matching dimension table (one row per region).
    #[must_use]
    pub fn dimension(&self) -> Vec<DimRow> {
        (0..self.regions)
            .map(|region| DimRow {
                region,
                name: format!("region-{region:03}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_in_expected_domains() {
        let gen = FactGen::default();
        let mut rng = hsdp_rng::StdRng::seed_from_u64(3);
        for row in gen.rows(1000, &mut rng) {
            assert!((0..gen.users).contains(&row.user_id));
            assert!(row.region < gen.regions);
            assert!(row.latency_ms > 0.0);
            assert!((200..200_000).contains(&row.bytes));
            assert!(row.url.starts_with("/api/v"));
        }
    }

    #[test]
    fn user_popularity_is_skewed() {
        let gen = FactGen {
            users: 1000,
            regions: 4,
        };
        let mut rng = hsdp_rng::StdRng::seed_from_u64(5);
        let rows = gen.rows(10_000, &mut rng);
        let low = rows.iter().filter(|r| r.user_id < 250).count();
        assert!(
            low > 4000,
            "bottom quartile of ids gets >40% of rows: {low}"
        );
    }

    #[test]
    fn dimension_covers_all_regions() {
        let gen = FactGen {
            users: 10,
            regions: 8,
        };
        let dim = gen.dimension();
        assert_eq!(dim.len(), 8);
        assert_eq!(dim[3].name, "region-003");
    }

    #[test]
    fn success_rate_is_high() {
        let gen = FactGen::default();
        let mut rng = hsdp_rng::StdRng::seed_from_u64(11);
        let rows = gen.rows(5000, &mut rng);
        let ok = rows.iter().filter(|r| r.success).count();
        assert!(ok > 4500);
    }
}
