//! Query mixes: what fraction of traffic each operation type receives.

use hsdp_rng::Rng;

/// Database (Spanner/BigTable-style) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbOp {
    /// Point read.
    Read,
    /// Point write / commit.
    Write,
    /// Small range scan.
    Scan,
    /// Read-modify-write transaction.
    ReadModifyWrite,
}

/// A database operation mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbMix {
    /// Fraction of point reads.
    pub read: f64,
    /// Fraction of writes.
    pub write: f64,
    /// Fraction of scans.
    pub scan: f64,
    /// Fraction of read-modify-write transactions.
    pub rmw: f64,
}

impl DbMix {
    /// A read-heavy OLTP mix (YCSB-B-like: 90/5/2.5/2.5).
    #[must_use]
    pub fn read_heavy() -> Self {
        DbMix {
            read: 0.90,
            write: 0.05,
            scan: 0.025,
            rmw: 0.025,
        }
    }

    /// A balanced mix (50/30/10/10).
    #[must_use]
    pub fn balanced() -> Self {
        DbMix {
            read: 0.50,
            write: 0.30,
            scan: 0.10,
            rmw: 0.10,
        }
    }

    /// A write-heavy ingest mix (20/70/5/5).
    #[must_use]
    pub fn write_heavy() -> Self {
        DbMix {
            read: 0.20,
            write: 0.70,
            scan: 0.05,
            rmw: 0.05,
        }
    }

    /// Validates that fractions sum to ~1.
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        (self.read + self.write + self.scan + self.rmw - 1.0).abs() < 1e-6
    }

    /// Draws an operation type.
    ///
    /// # Panics
    ///
    /// Panics if the mix is not normalized.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> DbOp {
        assert!(self.is_normalized(), "mix fractions must sum to 1");
        let u: f64 = rng.random();
        if u < self.read {
            DbOp::Read
        } else if u < self.read + self.write {
            DbOp::Write
        } else if u < self.read + self.write + self.scan {
            DbOp::Scan
        } else {
            DbOp::ReadModifyWrite
        }
    }
}

/// Analytics (BigQuery-style) query types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalyticsQuery {
    /// `SELECT ... WHERE pred` scan + filter + project.
    ScanFilter,
    /// `GROUP BY` aggregation with a distributed shuffle.
    GroupAggregate,
    /// Fact-to-dimension hash join.
    Join,
    /// Global sort / top-k.
    TopK,
}

/// An analytics query mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticsMix {
    /// Fraction of scan/filter queries.
    pub scan_filter: f64,
    /// Fraction of group-by aggregations.
    pub aggregate: f64,
    /// Fraction of joins.
    pub join: f64,
    /// Fraction of top-k sorts.
    pub topk: f64,
}

impl AnalyticsMix {
    /// A dashboard-style mix dominated by scans and aggregations.
    #[must_use]
    pub fn dashboard() -> Self {
        AnalyticsMix {
            scan_filter: 0.40,
            aggregate: 0.35,
            join: 0.15,
            topk: 0.10,
        }
    }

    /// Validates that fractions sum to ~1.
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        (self.scan_filter + self.aggregate + self.join + self.topk - 1.0).abs() < 1e-6
    }

    /// Draws a query type.
    ///
    /// # Panics
    ///
    /// Panics if the mix is not normalized.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> AnalyticsQuery {
        assert!(self.is_normalized(), "mix fractions must sum to 1");
        let u: f64 = rng.random();
        if u < self.scan_filter {
            AnalyticsQuery::ScanFilter
        } else if u < self.scan_filter + self.aggregate {
            AnalyticsQuery::GroupAggregate
        } else if u < self.scan_filter + self.aggregate + self.join {
            AnalyticsQuery::Join
        } else {
            AnalyticsQuery::TopK
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_normalized() {
        assert!(DbMix::read_heavy().is_normalized());
        assert!(DbMix::balanced().is_normalized());
        assert!(DbMix::write_heavy().is_normalized());
        assert!(AnalyticsMix::dashboard().is_normalized());
    }

    #[test]
    fn sampling_respects_fractions() {
        let mix = DbMix::read_heavy();
        let mut rng = hsdp_rng::StdRng::seed_from_u64(1);
        let mut reads = 0;
        for _ in 0..10_000 {
            if mix.sample(&mut rng) == DbOp::Read {
                reads += 1;
            }
        }
        assert!((8800..9200).contains(&reads), "{reads}");
    }

    #[test]
    fn analytics_sampling_covers_all_kinds() {
        let mix = AnalyticsMix::dashboard();
        let mut rng = hsdp_rng::StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(mix.sample(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn unnormalized_mix_panics() {
        let mix = DbMix {
            read: 0.5,
            write: 0.0,
            scan: 0.0,
            rmw: 0.0,
        };
        let mut rng = hsdp_rng::StdRng::seed_from_u64(3);
        let _ = mix.sample(&mut rng);
    }
}
