//! Fleet-representative protobuf message corpora, HyperProtoBench-style.
//!
//! The paper's validation experiment serializes "identical fleet-wide
//! representative protobuf messages then computes their SHA3 hash"
//! (Section 6.4). This module builds dynamic message schemas spanning the
//! shapes HyperProtoBench identified — flat scalar records, string-heavy
//! logs, nested structures, repeated submessages — and generates seeded
//! corpora over them.

use std::sync::Arc;

use hsdp_rng::Rng;
use hsdp_taxes::protowire::{FieldDescriptor, FieldType, Message, MessageDescriptor, Value};

/// Unwraps schema operations that are infallible by construction.
///
/// Every descriptor in this module is a compile-time constant and every
/// `set`/`push` below uses field numbers taken from those same
/// descriptors, so a schema error is a programming bug — the round-trip
/// tests exercise all four shapes.
trait MustSchema<T> {
    fn must(self) -> T;
}

impl<T, E: std::fmt::Debug> MustSchema<T> for Result<T, E> {
    fn must(self) -> T {
        // audit: allow(panic, static schemas and field ids are compile-time constants exercised by the round-trip tests)
        self.expect("static proto schema")
    }
}

impl<T> MustSchema<T> for Option<T> {
    fn must(self) -> T {
        // audit: allow(panic, static schemas and field ids are compile-time constants exercised by the round-trip tests)
        self.expect("static proto schema")
    }
}

/// The message shapes in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageShape {
    /// Flat record of scalar fields (metrics samples).
    FlatScalars,
    /// String-heavy log entry.
    LogEntry,
    /// Nested request with a header submessage.
    NestedRequest,
    /// Repeated-submessage batch (rows in a write batch).
    RepeatedBatch,
}

impl MessageShape {
    /// All shapes.
    pub const ALL: [MessageShape; 4] = [
        MessageShape::FlatScalars,
        MessageShape::LogEntry,
        MessageShape::NestedRequest,
        MessageShape::RepeatedBatch,
    ];
}

/// Builds the descriptor for a shape.
#[must_use]
pub fn descriptor(shape: MessageShape) -> Arc<MessageDescriptor> {
    match shape {
        MessageShape::FlatScalars => Arc::new(
            MessageDescriptor::new(
                "MetricsSample",
                vec![
                    FieldDescriptor::required(1, "timestamp", FieldType::Fixed64),
                    FieldDescriptor::optional(2, "value", FieldType::Double),
                    FieldDescriptor::optional(3, "count", FieldType::Uint64),
                    FieldDescriptor::optional(4, "delta", FieldType::Sint64),
                    FieldDescriptor::optional(5, "valid", FieldType::Bool),
                    FieldDescriptor::optional(6, "shard", FieldType::Fixed32),
                ],
            )
            .must(),
        ),
        MessageShape::LogEntry => Arc::new(
            MessageDescriptor::new(
                "LogEntry",
                vec![
                    FieldDescriptor::required(1, "severity", FieldType::Uint64),
                    FieldDescriptor::required(2, "message", FieldType::String),
                    FieldDescriptor::optional(3, "source_file", FieldType::String),
                    FieldDescriptor::optional(4, "line", FieldType::Uint64),
                    FieldDescriptor::repeated(5, "labels", FieldType::String),
                ],
            )
            .must(),
        ),
        MessageShape::NestedRequest => {
            let header = Arc::new(
                MessageDescriptor::new(
                    "RequestHeader",
                    vec![
                        FieldDescriptor::required(1, "request_id", FieldType::Fixed64),
                        FieldDescriptor::optional(2, "deadline_ms", FieldType::Uint64),
                        FieldDescriptor::optional(3, "caller", FieldType::String),
                    ],
                )
                .must(),
            );
            Arc::new(
                MessageDescriptor::new(
                    "ReadRequest",
                    vec![
                        FieldDescriptor::required(1, "header", FieldType::Message(header)),
                        FieldDescriptor::required(2, "key", FieldType::Bytes),
                        FieldDescriptor::optional(3, "columns", FieldType::Uint64),
                    ],
                )
                .must(),
            )
        }
        MessageShape::RepeatedBatch => {
            let row = Arc::new(
                MessageDescriptor::new(
                    "Row",
                    vec![
                        FieldDescriptor::required(1, "key", FieldType::Bytes),
                        FieldDescriptor::required(2, "value", FieldType::Bytes),
                        FieldDescriptor::optional(3, "timestamp", FieldType::Fixed64),
                    ],
                )
                .must(),
            );
            Arc::new(
                MessageDescriptor::new(
                    "WriteBatch",
                    vec![
                        FieldDescriptor::required(1, "table", FieldType::String),
                        FieldDescriptor::repeated(2, "rows", FieldType::Message(row)),
                    ],
                )
                .must(),
            )
        }
    }
}

/// Generates one message of the given shape.
pub fn generate<R: Rng + ?Sized>(shape: MessageShape, rng: &mut R) -> Message {
    let desc = descriptor(shape);
    let mut msg = Message::new(Arc::clone(&desc));
    match shape {
        MessageShape::FlatScalars => {
            msg.set(1, Value::Fixed64(rng.random())).must();
            msg.set(2, Value::Double(rng.random::<f64>() * 1e6)).must();
            msg.set(3, Value::Uint64(rng.random_range(0..1_000_000)))
                .must();
            msg.set(4, Value::Sint64(rng.random_range(-1000..1000)))
                .must();
            msg.set(5, Value::Bool(rng.random_bool(0.5))).must();
            msg.set(6, Value::Fixed32(rng.random())).must();
        }
        MessageShape::LogEntry => {
            msg.set(1, Value::Uint64(rng.random_range(0..5))).must();
            let words = rng.random_range(5..30);
            let body: Vec<String> = (0..words)
                .map(|i| format!("token{}", (i * 7) % 50))
                .collect();
            msg.set(2, Value::Str(body.join(" "))).must();
            msg.set(
                3,
                Value::Str(format!("src/server/handler{}.cc", rng.random_range(0..20))),
            )
            .must();
            msg.set(4, Value::Uint64(rng.random_range(1..5000))).must();
            for i in 0..rng.random_range(0..4) {
                msg.push(5, Value::Str(format!("label-{i}"))).must();
            }
        }
        MessageShape::NestedRequest => {
            let header_desc = match &desc.field(1).must().ty {
                FieldType::Message(d) => Arc::clone(d),
                // audit: allow(panic, field 1 is declared Message in the static schema above)
                _ => unreachable!("field 1 is a message"),
            };
            let mut header = Message::new(header_desc);
            header.set(1, Value::Fixed64(rng.random())).must();
            header
                .set(2, Value::Uint64(rng.random_range(1..10_000)))
                .must();
            header
                .set(
                    3,
                    Value::Str(format!("service-{}", rng.random_range(0..100))),
                )
                .must();
            msg.set(1, Value::Message(header)).must();
            let key: Vec<u8> = (0..rng.random_range(8..64)).map(|_| rng.random()).collect();
            msg.set(2, Value::Bytes(key)).must();
            msg.set(3, Value::Uint64(rng.random_range(1..32))).must();
        }
        MessageShape::RepeatedBatch => {
            msg.set(1, Value::Str(format!("table-{}", rng.random_range(0..10))))
                .must();
            let row_desc = match &desc.field(2).must().ty {
                FieldType::Message(d) => Arc::clone(d),
                // audit: allow(panic, field 2 is declared Message in the static schema above)
                _ => unreachable!("field 2 is a message"),
            };
            for _ in 0..rng.random_range(1..16) {
                let mut row = Message::new(Arc::clone(&row_desc));
                let key: Vec<u8> = (0..16).map(|_| rng.random()).collect();
                let value: Vec<u8> = (0..rng.random_range(16..256))
                    .map(|_| rng.random())
                    .collect();
                row.set(1, Value::Bytes(key)).must();
                row.set(2, Value::Bytes(value)).must();
                row.set(3, Value::Fixed64(rng.random())).must();
                msg.push(2, Value::Message(row)).must();
            }
        }
    }
    msg
}

/// Generates a mixed corpus of `count` messages cycling through all shapes.
pub fn corpus<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<Message> {
    (0..count)
        .map(|i| generate(MessageShape::ALL[i % MessageShape::ALL.len()], rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> hsdp_rng::StdRng {
        hsdp_rng::StdRng::seed_from_u64(99)
    }

    #[test]
    fn every_shape_roundtrips() {
        let mut rng = rng();
        for shape in MessageShape::ALL {
            let msg = generate(shape, &mut rng);
            let bytes = msg.encode_to_vec();
            assert!(!bytes.is_empty(), "{shape:?}");
            let decoded = Message::decode(descriptor(shape), &bytes).expect("roundtrip");
            assert_eq!(decoded.encode_to_vec(), bytes, "{shape:?}");
        }
    }

    #[test]
    fn corpus_is_mixed_and_sized() {
        let mut rng = rng();
        let msgs = corpus(40, &mut rng);
        assert_eq!(msgs.len(), 40);
        let names: std::collections::HashSet<&str> =
            msgs.iter().map(|m| m.descriptor().name()).collect();
        assert_eq!(names.len(), 4, "all four shapes present");
    }

    #[test]
    fn corpus_is_seed_deterministic() {
        let a: Vec<Vec<u8>> = corpus(10, &mut hsdp_rng::StdRng::seed_from_u64(5))
            .iter()
            .map(Message::encode_to_vec)
            .collect();
        let b: Vec<Vec<u8>> = corpus(10, &mut hsdp_rng::StdRng::seed_from_u64(5))
            .iter()
            .map(Message::encode_to_vec)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn nested_request_contains_header() {
        let mut rng = rng();
        let msg = generate(MessageShape::NestedRequest, &mut rng);
        assert!(matches!(msg.get(1), Some(Value::Message(_))));
    }
}
