//! Block compression — the (de)compression datacenter tax (Table 2).
//!
//! Implements an LZ77-family byte-oriented block format in the spirit of the
//! fast datacenter codecs (Snappy/LZ4) the paper's platforms run on their
//! critical paths: a greedy hash-table match finder over a 64 KiB window,
//! literal runs and back-reference copies, plus a trivial RLE codec used by
//! the columnar engine for sorted columns.
//!
//! Two implementations share the stream format. [`compress`] /
//! [`decompress`] are the hot paths: the match finder extends matches a
//! 64-bit word at a time and skips ahead over incompressible runs
//! (LZ4-style acceleration), and the decoder batch-copies literal runs and
//! back-references with overlap-safe chunked copies.
//! [`compress_reference`] / [`decompress_reference`] are the original
//! byte-at-a-time implementations, retained as equivalence oracles and
//! benchmark baselines — the same discipline the CRC32C kernel uses with
//! its bytewise oracle. Streams from either encoder decode with either
//! decoder.
//!
//! ## Stream layout
//!
//! ```text
//! magic "HZ" | version 0x01 | varint(uncompressed_len) | ops...
//! op: tag byte
//!     bit 0 = 0: literal run — upper 7 bits hold len-1 if < 127,
//!                else 0x7f<<1 marker followed by varint(len)
//!     bit 0 = 1: copy — upper 7 bits hold len-MIN_MATCH if < 127,
//!                else marker followed by varint(len), then varint(offset)
//! ```
//!
//! # Examples
//!
//! ```
//! use hsdp_taxes::compress::{compress, decompress};
//!
//! let data = b"abcabcabcabcabcabc hyperscale hyperscale hyperscale".to_vec();
//! let packed = compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(decompress(&packed)?, data);
//! # Ok::<(), hsdp_taxes::error::CompressError>(())
//! ```

use crate::error::CompressError;
use crate::varint::{decode_varint, encode_varint};

/// Stream magic bytes.
pub(crate) const MAGIC: [u8; 2] = *b"HZ";
/// Format version.
pub(crate) const VERSION: u8 = 1;
/// Minimum back-reference length worth encoding.
pub(crate) const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (64 KiB window).
pub(crate) const MAX_OFFSET: usize = 1 << 16;
/// log2 of the match-finder hash table size.
pub(crate) const HASH_BITS: u32 = 14;
/// After `2^SKIP_TRIGGER` consecutive match misses, the probe stride grows
/// by one — incompressible runs are crossed in sub-linear probe counts.
pub(crate) const SKIP_TRIGGER: u32 = 5;
/// Cap on the decoder's up-front allocation: the header's declared length
/// is untrusted, so larger outputs grow amortized instead of being
/// reserved blindly.
pub(crate) const MAX_PREALLOC: usize = 1 << 20;

#[inline]
pub(crate) fn hash4(v: u32) -> usize {
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Loads a little-endian u32; the caller guarantees `pos + 4 <= data.len()`.
#[inline]
pub(crate) fn load_u32(data: &[u8], pos: usize) -> u32 {
    // audit: allow(panic, caller guarantees pos + 4 <= data.len())
    u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4-byte load"))
}

/// Loads a little-endian u64; the caller guarantees `pos + 8 <= data.len()`.
#[inline]
fn load_u64(data: &[u8], pos: usize) -> u64 {
    // audit: allow(panic, caller guarantees pos + 8 <= data.len())
    u64::from_le_bytes(data[pos..pos + 8].try_into().expect("8-byte load"))
}

/// Length of the common prefix of `data[a..]` and `data[b..]` (`a < b`),
/// bounded by the end of the buffer. Compares eight bytes per step and uses
/// the XOR's trailing zeros to pinpoint the first differing byte.
#[inline]
fn common_prefix_len(data: &[u8], a: usize, b: usize) -> usize {
    debug_assert!(a < b);
    let start = b;
    let (mut a, mut b) = (a, b);
    while b + 8 <= data.len() {
        let diff = load_u64(data, a) ^ load_u64(data, b);
        if diff != 0 {
            return b - start + (diff.trailing_zeros() / 8) as usize;
        }
        a += 8;
        b += 8;
    }
    while b < data.len() && data[a] == data[b] {
        a += 1;
        b += 1;
    }
    b - start
}

pub(crate) fn emit_literals(data: &[u8], out: &mut Vec<u8>) {
    if data.is_empty() {
        return;
    }
    let len = data.len();
    if len - 1 < 0x7f {
        out.push(((len - 1) as u8) << 1);
    } else {
        out.push(0x7f << 1);
        encode_varint(len as u64, out);
    }
    out.extend_from_slice(data);
}

pub(crate) fn emit_copy(len: usize, offset: usize, out: &mut Vec<u8>) {
    debug_assert!(len >= MIN_MATCH && offset >= 1);
    if len - MIN_MATCH < 0x7f {
        out.push((((len - MIN_MATCH) as u8) << 1) | 1);
    } else {
        out.push((0x7f << 1) | 1);
        encode_varint(len as u64, out);
    }
    encode_varint(offset as u64, out);
}

/// Compresses `data` into a self-describing block — the dispatched entry.
///
/// Resolves once per process to the AVX2 path in [`crate::simd::compress`]
/// when the host supports it, else to [`compress_scalar`]. Both paths make
/// **identical match decisions** and emit **identical streams** for every
/// input — the SIMD path only widens match extension and batches emission —
/// so compressed artifacts are byte-stable across hosts and under
/// `HSDP_FORCE_SCALAR=1` (see [`crate::dispatch`]).
#[must_use]
pub fn compress(data: &[u8]) -> Vec<u8> {
    use crate::simd::compress::CompressFn;
    static IMPL: std::sync::OnceLock<CompressFn> = std::sync::OnceLock::new();
    let resolved =
        *IMPL.get_or_init(|| crate::simd::compress::compress_fn().unwrap_or(compress_scalar));
    resolved(data)
}

/// Compresses `data` into a self-describing block — the scalar fast path,
/// round-2 benchmark baseline, and byte-for-byte oracle for the SIMD path.
///
/// Same greedy hash-table match finder as [`compress_reference`], but match
/// extension runs a 64-bit word at a time and consecutive misses grow the
/// probe stride, so incompressible stretches cost sub-linear probe counts.
#[must_use]
pub fn compress_scalar(data: &[u8]) -> Vec<u8> {
    // The fast table stores `pos + 1` as u32 (0 = empty) — half the
    // footprint of a usize table, so it stays cache-resident. Inputs too
    // large for that encoding take the reference path (same format).
    if data.len() >= u32::MAX as usize {
        return compress_reference(data);
    }
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    encode_varint(data.len() as u64, &mut out);

    // A fixed-size boxed array (not a Vec): `hash4`'s range is provably in
    // bounds, so every probe indexes without a bounds check.
    let mut table: Box<[u32; 1 << HASH_BITS]> = Box::new([0u32; 1 << HASH_BITS]);
    let mut pos = 0;
    let mut literal_start = 0;
    let mut misses: u32 = 0;

    let total = data.len();
    // Main loop runs while a full word is loadable at `pos`; the sub-word
    // tail falls through to the u32 loop below.
    while pos + 8 <= total {
        let here = load_u64(data, pos);
        let h = hash4(here as u32);
        let candidate = (table[h] as usize).wrapping_sub(1);
        table[h] = (pos + 1) as u32;

        // One u64 XOR both verifies the 4-byte seed (low half) and begins
        // the extension (high half): `candidate + 8 <= pos + 8 <= total`.
        let diff = if candidate != usize::MAX && pos - candidate <= MAX_OFFSET {
            load_u64(data, candidate) ^ here
        } else {
            1 // low bit set: "seed mismatch"
        };
        if diff & 0xFFFF_FFFF != 0 {
            pos += 1 + (misses >> SKIP_TRIGGER) as usize;
            misses += 1;
            continue;
        }
        let len = if diff != 0 {
            (diff.trailing_zeros() / 8) as usize
        } else {
            8 + common_prefix_len(data, candidate + 8, pos + 8)
        };
        emit_literals(&data[literal_start..pos], &mut out);
        emit_copy(len, pos - candidate, &mut out);
        // LZ4-style: one table insert near the match end is enough — the
        // main loop re-seeds every probed position anyway.
        let end = pos + len;
        if end >= 2 && end + 2 <= total {
            table[hash4(load_u32(data, end - 2))] = (end - 1) as u32;
        }
        pos = end;
        literal_start = pos;
        misses = 0;
    }
    // Tail: fewer than 8 bytes left past `pos`; probe with u32 loads.
    while pos + MIN_MATCH <= total {
        let here = load_u32(data, pos);
        let h = hash4(here);
        let candidate = (table[h] as usize).wrapping_sub(1);
        table[h] = (pos + 1) as u32;

        if candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && load_u32(data, candidate) == here
        {
            let len = MIN_MATCH
                + data[pos + MIN_MATCH..]
                    .iter()
                    .zip(&data[candidate + MIN_MATCH..])
                    .take_while(|(x, y)| x == y)
                    .count();
            emit_literals(&data[literal_start..pos], &mut out);
            emit_copy(len, pos - candidate, &mut out);
            pos += len;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    emit_literals(&data[literal_start..], &mut out);
    out
}

/// The original byte-at-a-time compressor, retained as the equivalence
/// oracle and benchmark baseline for [`compress`]. Produces streams in the
/// identical format (both decoders accept both encoders' output).
#[must_use]
pub fn compress_reference(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    encode_varint(data.len() as u64, &mut out);

    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0;
    let mut literal_start = 0;

    while pos + MIN_MATCH <= data.len() {
        let h = hash4(load_u32(data, pos));
        let candidate = table[h];
        table[h] = pos;

        let valid = candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && data[candidate..candidate + MIN_MATCH] == data[pos..pos + MIN_MATCH];
        if valid {
            // Extend the match as far as it goes, one byte at a time.
            let mut len = MIN_MATCH;
            while pos + len < data.len() && data[candidate + len] == data[pos + len] {
                len += 1;
            }
            emit_literals(&data[literal_start..pos], &mut out);
            emit_copy(len, pos - candidate, &mut out);
            let end = pos + len;
            let mut seed = pos + 1;
            while seed + MIN_MATCH <= end.min(data.len()) && seed < pos + 16 {
                table[hash4(load_u32(data, seed))] = seed;
                seed += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    emit_literals(&data[literal_start..], &mut out);
    out
}

/// Decodes one op length, shared by both length classes.
#[inline]
pub(crate) fn decode_op_len(
    input: &[u8],
    pos: &mut usize,
    short_len: usize,
    short_bias: usize,
) -> Result<usize, CompressError> {
    if short_len < 0x7f {
        return Ok(short_len + short_bias);
    }
    let (l, n) = decode_varint(&input[*pos..]).map_err(|_| CompressError::Truncated)?;
    *pos += n;
    usize::try_from(l).map_err(|_| CompressError::Truncated)
}

/// Decompresses a block produced by [`compress`] or [`compress_reference`]
/// — the dispatched entry.
///
/// Resolves once per process to the SIMD wide-copy decoder in
/// [`crate::simd::compress`] when the host supports it, else to
/// [`decompress_scalar`]. Both paths validate in the same order, return the
/// same errors for every malformed stream, and produce identical bytes.
///
/// # Errors
///
/// Returns a [`CompressError`] on bad headers, truncated streams, invalid
/// back-references, or a length mismatch against the header.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    use crate::simd::compress::DecompressFn;
    static IMPL: std::sync::OnceLock<DecompressFn> = std::sync::OnceLock::new();
    let resolved =
        *IMPL.get_or_init(|| crate::simd::compress::decompress_fn().unwrap_or(decompress_scalar));
    resolved(input)
}

/// Decompresses a block — the scalar fast path, round-2 benchmark baseline,
/// and behavioural oracle for the SIMD decoder.
///
/// Literal runs are batch-copied; back-references use overlap-safe chunked
/// copies that widen geometrically, so RLE-like runs cost O(log n) copy
/// calls instead of one push per byte. Every op is validated against the
/// header's declared length *before* producing output, so a corrupt or
/// malicious stream errors out early instead of over-allocating.
///
/// # Errors
///
/// Returns a [`CompressError`] on bad headers, truncated streams, invalid
/// back-references, or a length mismatch against the header.
pub fn decompress_scalar(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    if input.len() < 3 || input[..2] != MAGIC || input[2] != VERSION {
        return Err(CompressError::BadHeader);
    }
    let mut pos = 3;
    let (expected_len, n) = decode_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
    pos += n;
    let expected_len = usize::try_from(expected_len).map_err(|_| CompressError::BadHeader)?;

    // The declared length is untrusted input: cap the up-front reservation
    // and let genuine large outputs grow amortized.
    let mut out = Vec::with_capacity(expected_len.min(MAX_PREALLOC));
    while pos < input.len() {
        let tag = input[pos];
        pos += 1;
        let short_len = (tag >> 1) as usize;
        if tag & 1 == 1 {
            let len = decode_op_len(input, &mut pos, short_len, MIN_MATCH)?;
            let (offset, n) = decode_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
            pos += n;
            let offset = usize::try_from(offset).map_err(|_| CompressError::Truncated)?;
            if offset == 0 || offset > out.len() {
                return Err(CompressError::InvalidBackref { at: pos });
            }
            if len > expected_len - out.len() {
                // The copy would overflow the declared length: fail before
                // producing a byte (decompression-bomb guard).
                return Err(CompressError::LengthMismatch {
                    expected: expected_len,
                    actual: out.len().saturating_add(len),
                });
            }
            let start = out.len() - offset;
            if offset >= len {
                // Disjoint source and destination: one batch copy.
                out.extend_from_within(start..start + len);
            } else {
                // Overlapping (RLE-style) reference: the copied region
                // doubles in size every round.
                let mut copied = 0;
                while copied < len {
                    let chunk = (out.len() - start).min(len - copied);
                    out.extend_from_within(start..start + chunk);
                    copied += chunk;
                }
            }
        } else {
            let len = decode_op_len(input, &mut pos, short_len, 1)?;
            let literals = input.get(pos..pos + len).ok_or(CompressError::Truncated)?;
            if len > expected_len - out.len() {
                return Err(CompressError::LengthMismatch {
                    expected: expected_len,
                    actual: out.len().saturating_add(len),
                });
            }
            out.extend_from_slice(literals);
            pos += len;
        }
    }
    if out.len() != expected_len {
        return Err(CompressError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    Ok(out)
}

/// The original byte-at-a-time decoder, retained as the equivalence oracle
/// and benchmark baseline for [`decompress`].
///
/// # Errors
///
/// Returns a [`CompressError`] on bad headers, truncated streams, invalid
/// back-references, or a length mismatch against the header.
pub fn decompress_reference(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    if input.len() < 3 || input[..2] != MAGIC || input[2] != VERSION {
        return Err(CompressError::BadHeader);
    }
    let mut pos = 3;
    let (expected_len, n) = decode_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
    pos += n;
    let expected_len = usize::try_from(expected_len).map_err(|_| CompressError::BadHeader)?;

    let mut out = Vec::with_capacity(expected_len.min(MAX_PREALLOC));
    while pos < input.len() {
        let tag = input[pos];
        pos += 1;
        let short_len = (tag >> 1) as usize;
        if tag & 1 == 1 {
            let len = decode_op_len(input, &mut pos, short_len, MIN_MATCH)?;
            let (offset, n) = decode_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
            pos += n;
            let offset = usize::try_from(offset).map_err(|_| CompressError::Truncated)?;
            if offset == 0 || offset > out.len() {
                return Err(CompressError::InvalidBackref { at: pos });
            }
            if len > expected_len - out.len() {
                return Err(CompressError::LengthMismatch {
                    expected: expected_len,
                    actual: out.len().saturating_add(len),
                });
            }
            // Byte-at-a-time copy: overlapping references (offset < len)
            // repeat recent output, which is how RLE-like runs encode.
            let start = out.len() - offset;
            for i in 0..len {
                let byte = out[start + i];
                out.push(byte);
            }
        } else {
            let len = decode_op_len(input, &mut pos, short_len, 1)?;
            let literals = input.get(pos..pos + len).ok_or(CompressError::Truncated)?;
            if len > expected_len - out.len() {
                return Err(CompressError::LengthMismatch {
                    expected: expected_len,
                    actual: out.len().saturating_add(len),
                });
            }
            out.extend_from_slice(literals);
            pos += len;
        }
    }
    if out.len() != expected_len {
        return Err(CompressError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    Ok(out)
}

/// Run-length encodes `data` as `(varint count, byte)` pairs.
///
/// Effective for the long sorted runs columnar storage produces; pathological
/// (2x expansion) on runless data — callers pick the codec per column.
#[must_use]
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut iter = data.iter().copied().peekable();
    while let Some(byte) = iter.next() {
        let mut run: u64 = 1;
        while iter.peek() == Some(&byte) {
            iter.next();
            run += 1;
        }
        encode_varint(run, &mut out);
        out.push(byte);
    }
    out
}

/// Decodes an RLE stream produced by [`rle_compress`].
///
/// # Errors
///
/// Returns [`CompressError::Truncated`] on malformed input.
pub fn rle_decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < input.len() {
        let (run, n) = decode_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
        pos += n;
        let byte = *input.get(pos).ok_or(CompressError::Truncated)?;
        pos += 1;
        let run = usize::try_from(run).map_err(|_| CompressError::Truncated)?;
        out.resize(out.len() + run, byte);
    }
    Ok(out)
}

/// The compression ratio achieved on `data` (original / compressed size).
///
/// Returns 1.0 for empty input.
#[must_use]
pub fn compression_ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    data.len() as f64 / compress(data).len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips through every encoder x decoder combination: both
    /// encoders emit the same format, so all four pairs must agree.
    fn roundtrip(data: &[u8]) {
        for packed in [compress(data), compress_reference(data)] {
            assert_eq!(decompress(&packed).unwrap(), data);
            assert_eq!(decompress_reference(&packed).unwrap(), data);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_input_shrinks() {
        let data = b"the quick brown fox ".repeat(100);
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 4,
            "{} vs {}",
            packed.len(),
            data.len()
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_input_roundtrips() {
        // Pseudo-random bytes: no 4-byte repeats worth finding.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn overlapping_copy_rle_style() {
        // A single-byte run compresses via overlapping back-references.
        let data = vec![7u8; 100_000];
        let packed = compress(&data);
        assert!(
            packed.len() < 100,
            "run should collapse, got {}",
            packed.len()
        );
        assert_eq!(decompress(&packed).unwrap(), data);
        assert_eq!(decompress_reference(&packed).unwrap(), data);
    }

    #[test]
    fn long_literals_cross_escape_boundary() {
        // Literal runs longer than the 7-bit short form.
        let data: Vec<u8> = (0..400u32).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn matches_beyond_window_are_not_used() {
        // Repeat separated by > 64 KiB of junk: still roundtrips.
        let mut data = b"needle-needle-needle".to_vec();
        let mut state = 1u64;
        data.extend((0..MAX_OFFSET + 100).map(|_| {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            (state >> 33) as u8
        }));
        data.extend_from_slice(b"needle-needle-needle");
        roundtrip(&data);
    }

    #[test]
    fn bad_header_rejected() {
        for dec in [decompress, decompress_reference] {
            assert_eq!(dec(b""), Err(CompressError::BadHeader));
            assert_eq!(dec(b"XZ\x01"), Err(CompressError::BadHeader));
            assert_eq!(dec(b"HZ\x02\x00"), Err(CompressError::BadHeader));
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let packed = compress(b"hello world hello world hello world");
        for cut in 3..packed.len() {
            assert!(decompress(&packed[..cut]).is_err(), "prefix len {cut}");
            assert!(
                decompress_reference(&packed[..cut]).is_err(),
                "prefix len {cut} (reference)"
            );
        }
    }

    #[test]
    fn corrupt_backref_rejected() {
        // Hand-build: header, len 4, then a copy with offset 9 into an empty
        // output buffer.
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        bad.push(VERSION);
        encode_varint(4, &mut bad);
        bad.push(1); // copy, short len = MIN_MATCH
        encode_varint(9, &mut bad); // offset 9 > output len 0
        assert!(matches!(
            decompress(&bad),
            Err(CompressError::InvalidBackref { .. })
        ));
        assert!(matches!(
            decompress_reference(&bad),
            Err(CompressError::InvalidBackref { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut packed = compress(b"abcdef");
        // Tamper with the declared length (varint 6 -> 7).
        packed[3] = 7;
        assert!(matches!(
            decompress(&packed),
            Err(CompressError::LengthMismatch {
                expected: 7,
                actual: 6
            })
        ));
    }

    #[test]
    fn rle_roundtrip_and_shrink() {
        let data = [vec![1u8; 1000], vec![2u8; 500], vec![3u8]].concat();
        let packed = rle_compress(&data);
        assert!(packed.len() < 10);
        assert_eq!(rle_decompress(&packed).unwrap(), data);
        assert_eq!(rle_decompress(&rle_compress(b"")).unwrap(), b"");
    }

    #[test]
    fn rle_truncated_rejected() {
        let packed = rle_compress(&[5u8; 10]);
        assert!(rle_decompress(&packed[..packed.len() - 1]).is_err());
    }

    #[test]
    fn ratio_reports_sensibly() {
        assert!(compression_ratio(&vec![0u8; 10_000]) > 50.0);
        assert_eq!(compression_ratio(b""), 1.0);
    }

    #[test]
    fn skip_acceleration_still_finds_late_matches() {
        // A long incompressible prefix (stride grows) followed by dense
        // repetition: the encoder must still compress the tail.
        let mut state = 77u64;
        let mut data: Vec<u8> = (0..8_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        data.extend(b"tail-pattern ".repeat(500));
        let packed = compress(&data);
        assert!(
            packed.len() < data.len(),
            "{} vs {}",
            packed.len(),
            data.len()
        );
        roundtrip(&data);
    }
}
