//! A bump arena with allocation statistics — the memory-allocation
//! datacenter tax (Table 2), and the software analogue of the Mallacc
//! accelerator's target.
//!
//! The simulated platforms route their scratch allocations through
//! [`Arena`]s so the profiler can attribute allocation work; the statistics
//! feed the `Mem. Allocation` category of Figure 5.

use std::cell::{Cell, RefCell};

/// Default size of each arena chunk.
const DEFAULT_CHUNK: usize = 64 * 1024;

/// Allocation statistics for one arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Number of allocations served.
    pub allocations: usize,
    /// Total bytes requested.
    pub bytes_requested: usize,
    /// Bytes currently reserved from the system (sum of chunk sizes).
    pub bytes_reserved: usize,
    /// Number of fresh chunks obtained.
    pub chunks: usize,
    /// Number of times the arena was reset for reuse.
    pub resets: usize,
}

/// A bump allocator over append-only chunks.
///
/// Allocations return offsets into arena-owned buffers rather than raw
/// pointers, which keeps the type safe while still modelling the bump-pointer
/// cost profile (cheap common case, occasional chunk refill).
///
/// # Examples
///
/// ```
/// use hsdp_taxes::arena::Arena;
///
/// let arena = Arena::new();
/// let a = arena.alloc(b"hello");
/// let b = arena.alloc(b" world");
/// assert_eq!(arena.get(a), b"hello");
/// assert_eq!(arena.get(b), b" world");
/// assert_eq!(arena.stats().allocations, 2);
/// ```
#[derive(Debug)]
pub struct Arena {
    chunks: RefCell<Vec<Vec<u8>>>,
    chunk_size: usize,
    allocations: Cell<usize>,
    bytes_requested: Cell<usize>,
    resets: Cell<usize>,
}

/// A handle to bytes stored in an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    chunk: usize,
    offset: usize,
    len: usize,
}

impl ArenaRef {
    /// Length of the referenced slice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the referenced slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Arena {
    /// An arena with the default chunk size (64 KiB).
    #[must_use]
    pub fn new() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK)
    }

    /// An arena with a custom chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    #[must_use]
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Arena {
            chunks: RefCell::new(Vec::new()),
            chunk_size,
            allocations: Cell::new(0),
            bytes_requested: Cell::new(0),
            resets: Cell::new(0),
        }
    }

    /// Copies `data` into the arena, returning a handle.
    pub fn alloc(&self, data: &[u8]) -> ArenaRef {
        let handle = self.alloc_uninit(data.len());
        if !data.is_empty() {
            let mut chunks = self.chunks.borrow_mut();
            let chunk = &mut chunks[handle.chunk];
            chunk[handle.offset..handle.offset + data.len()].copy_from_slice(data);
        }
        handle
    }

    /// Reserves `len` zeroed bytes.
    pub fn alloc_uninit(&self, len: usize) -> ArenaRef {
        self.allocations.set(self.allocations.get() + 1);
        self.bytes_requested.set(self.bytes_requested.get() + len);

        let mut chunks = self.chunks.borrow_mut();
        let needs_new = match chunks.last() {
            Some(last) => last.len() + len > last.capacity(),
            None => true,
        };
        if needs_new {
            let capacity = self.chunk_size.max(len);
            chunks.push(Vec::with_capacity(capacity));
        }
        let chunk_index = chunks.len() - 1;
        let chunk = &mut chunks[chunk_index];
        let offset = chunk.len();
        chunk.resize(offset + len, 0);
        ArenaRef {
            chunk: chunk_index,
            offset,
            len,
        }
    }

    /// Reads back an allocation.
    ///
    /// # Panics
    ///
    /// Panics if `handle` came from another arena or from before a
    /// [`Arena::reset`].
    #[must_use]
    pub fn get(&self, handle: ArenaRef) -> Vec<u8> {
        let chunks = self.chunks.borrow();
        chunks[handle.chunk][handle.offset..handle.offset + handle.len].to_vec()
    }

    /// Drops all allocations but keeps one chunk's reservation for reuse —
    /// the "per-request arena" pattern the platforms use.
    pub fn reset(&self) {
        let mut chunks = self.chunks.borrow_mut();
        chunks.truncate(1);
        if let Some(first) = chunks.first_mut() {
            first.clear();
        }
        self.resets.set(self.resets.get() + 1);
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> ArenaStats {
        let chunks = self.chunks.borrow();
        ArenaStats {
            allocations: self.allocations.get(),
            bytes_requested: self.bytes_requested.get(),
            bytes_reserved: chunks.iter().map(Vec::capacity).sum(),
            chunks: chunks.len(),
            resets: self.resets.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read_back() {
        let arena = Arena::new();
        let handles: Vec<ArenaRef> = (0..100)
            .map(|i| arena.alloc(format!("value-{i}").as_bytes()))
            .collect();
        for (i, &h) in handles.iter().enumerate() {
            assert_eq!(arena.get(h), format!("value-{i}").as_bytes());
        }
        let stats = arena.stats();
        assert_eq!(stats.allocations, 100);
        assert!(stats.bytes_requested > 700);
    }

    #[test]
    fn large_allocation_gets_own_chunk() {
        let arena = Arena::with_chunk_size(64);
        let big = vec![0xabu8; 1000];
        let h = arena.alloc(&big);
        assert_eq!(arena.get(h), big);
        assert!(arena.stats().bytes_reserved >= 1000);
    }

    #[test]
    fn chunk_rollover_preserves_earlier_data() {
        let arena = Arena::with_chunk_size(32);
        let a = arena.alloc(&[1u8; 20]);
        let b = arena.alloc(&[2u8; 20]); // forces a second chunk
        let c = arena.alloc(&[3u8; 20]);
        assert_eq!(arena.get(a), vec![1u8; 20]);
        assert_eq!(arena.get(b), vec![2u8; 20]);
        assert_eq!(arena.get(c), vec![3u8; 20]);
        assert!(arena.stats().chunks >= 2);
    }

    #[test]
    fn reset_reuses_reservation() {
        let arena = Arena::with_chunk_size(1024);
        for _ in 0..10 {
            arena.alloc(&[0u8; 100]);
        }
        let before = arena.stats();
        arena.reset();
        let after = arena.stats();
        assert_eq!(after.resets, 1);
        assert!(after.chunks <= 1);
        assert!(after.bytes_reserved <= before.bytes_reserved);
        // The arena still works after reset.
        let h = arena.alloc(b"again");
        assert_eq!(arena.get(h), b"again");
    }

    #[test]
    fn empty_allocation() {
        let arena = Arena::new();
        let h = arena.alloc(b"");
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(arena.get(h), Vec::<u8>::new());
    }
}
