//! SHA-3 (Keccak) hashing, implemented from scratch.
//!
//! The paper's model-validation experiment (Section 6.4, Table 8) chains a
//! protobuf-serialization accelerator into a SHA3 accelerator; this module is
//! the software baseline for that pipeline. It implements Keccak-f\[1600\] per
//! FIPS 202 with the SHA3-224/256/384/512 fixed-output variants.
//!
//! # Examples
//!
//! ```
//! use hsdp_taxes::sha3::Sha3_256;
//!
//! let digest = Sha3_256::digest(b"abc");
//! assert_eq!(
//!     hsdp_taxes::sha3::to_hex(&digest),
//!     "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532",
//! );
//! ```

/// Keccak round constants (24 rounds of Keccak-f[1600]).
const ROUND_CONSTANTS: [u64; 24] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets for the rho step, indexed `[x][y]`.
const RHO_OFFSETS: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// The Keccak permutation state: 5x5 lanes of 64 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct KeccakState {
    lanes: [[u64; 5]; 5],
}

impl KeccakState {
    /// Applies the full 24-round Keccak-f[1600] permutation.
    fn permute(&mut self) {
        for &rc in &ROUND_CONSTANTS {
            self.round(rc);
        }
    }

    fn round(&mut self, rc: u64) {
        let a = &mut self.lanes;

        // Theta.
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for (row, dx) in a.iter_mut().zip(&d) {
            for lane in row.iter_mut() {
                *lane ^= *dx;
            }
        }

        // Rho and pi.
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = a[x][y].rotate_left(RHO_OFFSETS[x][y]);
            }
        }

        // Chi.
        for x in 0..5 {
            for y in 0..5 {
                a[x][y] = b[x][y] ^ (!b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
            }
        }

        // Iota.
        a[0][0] ^= rc;
    }

    /// XORs a full rate block (little-endian lanes) into the state, then
    /// applies the permutation.
    fn absorb_block(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len() % 8, 0);
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            // audit: allow(panic, chunks_exact(8) yields exactly 8-byte chunks)
            let lane = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            let (x, y) = (i % 5, i / 5);
            self.lanes[x][y] ^= lane;
        }
        self.permute();
    }

    /// Reads `out.len()` bytes from the start of the state (rate portion).
    fn squeeze_into(&self, out: &mut [u8]) {
        let mut i = 0;
        'outer: for y in 0..5 {
            for x in 0..5 {
                let lane = self.lanes[x][y].to_le_bytes();
                for &byte in &lane {
                    if i == out.len() {
                        break 'outer;
                    }
                    out[i] = byte;
                    i += 1;
                }
            }
        }
    }
}

/// An incremental SHA-3 hasher with a compile-time digest size.
///
/// `RATE` is the sponge rate in bytes (`200 - 2 * DIGEST`), and `DIGEST` the
/// output size in bytes. Use the [`Sha3_224`], [`Sha3_256`], [`Sha3_384`],
/// [`Sha3_512`] aliases.
#[derive(Debug, Clone)]
pub struct Sha3<const RATE: usize, const DIGEST: usize> {
    state: KeccakState,
    buffer: [u8; 200],
    buffered: usize,
}

impl<const RATE: usize, const DIGEST: usize> Default for Sha3<RATE, DIGEST> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const RATE: usize, const DIGEST: usize> Sha3<RATE, DIGEST> {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        debug_assert!(
            RATE <= 200 && RATE.is_multiple_of(8),
            "rate must be a lane multiple"
        );
        Sha3 {
            state: KeccakState::default(),
            buffer: [0u8; 200],
            buffered: 0,
        }
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        // Fill the partial block first.
        if self.buffered > 0 {
            let take = (RATE - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == RATE {
                self.state.absorb_block(&self.buffer[..RATE]);
                self.buffered = 0;
            }
        }
        // Absorb full blocks directly from the input.
        while data.len() >= RATE {
            self.state.absorb_block(&data[..RATE]);
            data = &data[RATE..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST] {
        // SHA-3 domain padding: append 0b01 then pad10*1.
        let mut block = [0u8; 200];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        block[self.buffered] = 0x06;
        block[RATE - 1] |= 0x80;
        self.state.absorb_block(&block[..RATE]);

        let mut out = [0u8; DIGEST];
        debug_assert!(DIGEST <= RATE, "fixed-output SHA-3 digests fit one squeeze");
        self.state.squeeze_into(&mut out);
        out
    }

    /// One-shot convenience: hash `data` in a single call.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; DIGEST] {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }
}

/// SHA3-224 (rate 144, digest 28 bytes).
pub type Sha3_224 = Sha3<144, 28>;
/// SHA3-256 (rate 136, digest 32 bytes).
pub type Sha3_256 = Sha3<136, 32>;
/// SHA3-384 (rate 104, digest 48 bytes).
pub type Sha3_384 = Sha3<104, 48>;
/// SHA3-512 (rate 72, digest 64 bytes).
pub type Sha3_512 = Sha3<72, 64>;

/// Formats a digest as lowercase hex.
#[must_use]
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for byte in digest {
        use std::fmt::Write;
        // audit: allow(panic, fmt::Write to a String is infallible)
        write!(s, "{byte:02x}").expect("writing to a String cannot fail");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // Vectors cross-checked against CPython's hashlib (FIPS 202).
    #[test]
    fn sha3_256_empty() {
        assert_eq!(
            to_hex(&Sha3_256::digest(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn sha3_256_abc() {
        assert_eq!(
            to_hex(&Sha3_256::digest(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn sha3_256_fox() {
        assert_eq!(
            to_hex(&Sha3_256::digest(
                b"The quick brown fox jumps over the lazy dog"
            )),
            "69070dda01975c8c120c3aada1b282394e7f032fa9cf32f4cb2259a0897dfc04"
        );
    }

    #[test]
    fn sha3_256_long_input() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        assert_eq!(
            to_hex(&Sha3_256::digest(&data)),
            "b6c70631c6ff932b9f380d9cde8750eb9bea393817a9aea410c2119eb7b9b870"
        );
    }

    #[test]
    fn sha3_256_rate_boundaries() {
        // Inputs straddling the 136-byte rate boundary exercise padding.
        let cases = [
            (
                135,
                "c150125edc74b56fb5cbfdd024fabe20ea5a99bd3c97305bbf7cb55885c106fe",
            ),
            (
                136,
                "5bc276bac9c582508b8fa9b3949e7ed9b6e584ee4d2925b29a426b9931ba1486",
            ),
            (
                137,
                "2f25a6351abe05e289a0a3e65fef42db7d5fc314936bdee4f6d54d04fb20a609",
            ),
            (
                271,
                "15a27a861d7f3e285daf758babcdaee8579be2fa573dc65ed2c61307078ecb90",
            ),
            (
                272,
                "f0759f9d5c3f598bcb2a85480f30bec337e407bc659d9427363a8810718b29ae",
            ),
            (
                273,
                "db32b3436806d2573420c7ef544f0ea430a735fcfc64e7ec80e8721e668d0f30",
            ),
        ];
        for (n, expected) in cases {
            let data = vec![b'x'; n];
            assert_eq!(to_hex(&Sha3_256::digest(&data)), expected, "len {n}");
        }
    }

    #[test]
    fn sha3_512_vectors() {
        assert_eq!(
            to_hex(&Sha3_512::digest(b"")),
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6\
             15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
        );
        assert_eq!(
            to_hex(&Sha3_512::digest(b"abc")),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e\
             10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"
        );
    }

    #[test]
    fn sha3_224_and_384_abc() {
        assert_eq!(
            to_hex(&Sha3_224::digest(b"abc")),
            "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf"
        );
        assert_eq!(
            to_hex(&Sha3_384::digest(b"abc")),
            "ec01498288516fc926459f58e2c6ad8df9b473cb0fc08c2596da7cf0e49be4b2\
             98d88cea927ac7f539f1edf228376d25"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha3_256::digest(&data);
        // Feed in awkward chunk sizes.
        for chunk in [1usize, 7, 64, 135, 136, 137, 500] {
            let mut hasher = Sha3_256::new();
            for piece in data.chunks(chunk) {
                hasher.update(piece);
            }
            assert_eq!(hasher.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(Sha3_256::digest(b"a"), Sha3_256::digest(b"b"));
        assert_ne!(Sha3_256::digest(b""), Sha3_256::digest(b"\0"));
    }

    #[test]
    fn to_hex_formats() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
        assert_eq!(to_hex(&[]), "");
    }
}
