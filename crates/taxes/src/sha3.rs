//! SHA-3 (Keccak) hashing, implemented from scratch.
//!
//! The paper's model-validation experiment (Section 6.4, Table 8) chains a
//! protobuf-serialization accelerator into a SHA3 accelerator; this module is
//! the software baseline for that pipeline. It implements Keccak-f\[1600\] per
//! FIPS 202 with the SHA3-224/256/384/512 fixed-output variants.
//!
//! The permutation hot path ([`keccak_f1600`]) works on a flat 25-lane
//! array: theta/rho/pi/chi are unrolled with compile-time rotation and
//! permutation schedules. The original structured 5x5 formulation is
//! retained as [`keccak_f1600_reference`], the equivalence oracle and
//! benchmark baseline.
//!
//! # Examples
//!
//! ```
//! use hsdp_taxes::sha3::Sha3_256;
//!
//! let digest = Sha3_256::digest(b"abc");
//! assert_eq!(
//!     hsdp_taxes::sha3::to_hex(&digest),
//!     "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532",
//! );
//! ```

/// Keccak round constants (24 rounds of Keccak-f[1600]).
const ROUND_CONSTANTS: [u64; 24] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets for the rho step, indexed `[x][y]`.
const RHO_OFFSETS: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Fused rho+pi schedule over the flat state: `FLAT_RHO_PI[i]` is the
/// `(destination index, rotation)` of source lane `i`, precomputed at
/// compile time from [`RHO_OFFSETS`] and the pi permutation
/// `(x, y) -> (y, 2x + 3y mod 5)`.
const FLAT_RHO_PI: [(usize, u32); 25] = build_flat_rho_pi();

const fn build_flat_rho_pi() -> [(usize, u32); 25] {
    let mut table = [(0usize, 0u32); 25];
    let mut i = 0;
    while i < 25 {
        let x = i % 5;
        let y = i / 5;
        table[i] = (y + 5 * ((2 * x + 3 * y) % 5), RHO_OFFSETS[x][y]);
        i += 1;
    }
    table
}

/// Applies the full 24-round Keccak-f[1600] permutation (hot path).
///
/// One flat 25-lane pass per round: theta's five column parities and five
/// d-words are unrolled into scalars, rho+pi fuse into a single table-driven
/// scatter with precomputed rotations, and chi is unrolled per row — no 2-D
/// indexing, no `% 5` on the data path.
pub fn keccak_f1600(a: &mut [u64; 25]) {
    for &rc in &ROUND_CONSTANTS {
        // Theta: column parities, fully unrolled.
        let c0 = a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20];
        let c1 = a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21];
        let c2 = a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22];
        let c3 = a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23];
        let c4 = a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24];
        let d0 = c4 ^ c1.rotate_left(1);
        let d1 = c0 ^ c2.rotate_left(1);
        let d2 = c1 ^ c3.rotate_left(1);
        let d3 = c2 ^ c4.rotate_left(1);
        let d4 = c3 ^ c0.rotate_left(1);
        let mut row = 0;
        while row < 25 {
            a[row] ^= d0;
            a[row + 1] ^= d1;
            a[row + 2] ^= d2;
            a[row + 3] ^= d3;
            a[row + 4] ^= d4;
            row += 5;
        }

        // Rho + pi fused: rotate-and-scatter through the const schedule.
        let mut b = [0u64; 25];
        let mut i = 0;
        while i < 25 {
            let (dest, rot) = FLAT_RHO_PI[i];
            b[dest] = a[i].rotate_left(rot);
            i += 1;
        }

        // Chi, unrolled per row.
        let mut row = 0;
        while row < 25 {
            let (b0, b1, b2, b3, b4) = (b[row], b[row + 1], b[row + 2], b[row + 3], b[row + 4]);
            a[row] = b0 ^ (!b1 & b2);
            a[row + 1] = b1 ^ (!b2 & b3);
            a[row + 2] = b2 ^ (!b3 & b4);
            a[row + 3] = b3 ^ (!b4 & b0);
            a[row + 4] = b4 ^ (!b0 & b1);
            row += 5;
        }

        // Iota.
        a[0] ^= rc;
    }
}

/// The original structured 5x5 Keccak-f[1600], retained as the equivalence
/// oracle and benchmark baseline for [`keccak_f1600`] — the same discipline
/// the CRC32C kernel follows with its bytewise oracle. Lane `i` of the flat
/// state maps to `(x, y) = (i % 5, i / 5)`.
pub fn keccak_f1600_reference(flat: &mut [u64; 25]) {
    let mut a = [[0u64; 5]; 5];
    for (i, &lane) in flat.iter().enumerate() {
        a[i % 5][i / 5] = lane;
    }
    for &rc in &ROUND_CONSTANTS {
        // Theta.
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for (row, dx) in a.iter_mut().zip(&d) {
            for lane in row.iter_mut() {
                *lane ^= *dx;
            }
        }

        // Rho and pi.
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = a[x][y].rotate_left(RHO_OFFSETS[x][y]);
            }
        }

        // Chi.
        for x in 0..5 {
            for y in 0..5 {
                a[x][y] = b[x][y] ^ (!b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
            }
        }

        // Iota.
        a[0][0] ^= rc;
    }
    for (i, lane) in flat.iter_mut().enumerate() {
        *lane = a[i % 5][i / 5];
    }
}

/// The Keccak permutation state: 25 lanes of 64 bits, flat in absorb order
/// (lane `i` is the sponge's byte range `8i..8i+8`; `(x, y) = (i % 5, i / 5)`
/// in the 5x5 formulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct KeccakState {
    lanes: [u64; 25],
}

impl KeccakState {
    /// XORs a full rate block (little-endian lanes) into the state, then
    /// applies the permutation.
    fn absorb_block(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len() % 8, 0);
        for (lane, chunk) in self.lanes.iter_mut().zip(block.chunks_exact(8)) {
            // audit: allow(panic, chunks_exact(8) yields exactly 8-byte chunks)
            *lane ^= u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        }
        keccak_f1600(&mut self.lanes);
    }

    /// Reads `out.len()` bytes from the start of the state (rate portion).
    fn squeeze_into(&self, out: &mut [u8]) {
        for (dst, src) in out
            .chunks_mut(8)
            .zip(self.lanes.iter().map(|lane| lane.to_le_bytes()))
        {
            dst.copy_from_slice(&src[..dst.len()]);
        }
    }
}

/// An incremental SHA-3 hasher with a compile-time digest size.
///
/// `RATE` is the sponge rate in bytes (`200 - 2 * DIGEST`), and `DIGEST` the
/// output size in bytes. Use the [`Sha3_224`], [`Sha3_256`], [`Sha3_384`],
/// [`Sha3_512`] aliases.
#[derive(Debug, Clone)]
pub struct Sha3<const RATE: usize, const DIGEST: usize> {
    state: KeccakState,
    buffer: [u8; 200],
    buffered: usize,
}

impl<const RATE: usize, const DIGEST: usize> Default for Sha3<RATE, DIGEST> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const RATE: usize, const DIGEST: usize> Sha3<RATE, DIGEST> {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        debug_assert!(
            RATE <= 200 && RATE.is_multiple_of(8),
            "rate must be a lane multiple"
        );
        Sha3 {
            state: KeccakState::default(),
            buffer: [0u8; 200],
            buffered: 0,
        }
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        // Fill the partial block first.
        if self.buffered > 0 {
            let take = (RATE - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == RATE {
                self.state.absorb_block(&self.buffer[..RATE]);
                self.buffered = 0;
            }
        }
        // Absorb full blocks directly from the input.
        while data.len() >= RATE {
            self.state.absorb_block(&data[..RATE]);
            data = &data[RATE..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST] {
        // SHA-3 domain padding: append 0b01 then pad10*1.
        let mut block = [0u8; 200];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        block[self.buffered] = 0x06;
        block[RATE - 1] |= 0x80;
        self.state.absorb_block(&block[..RATE]);

        let mut out = [0u8; DIGEST];
        debug_assert!(DIGEST <= RATE, "fixed-output SHA-3 digests fit one squeeze");
        self.state.squeeze_into(&mut out);
        out
    }

    /// One-shot convenience: hash `data` in a single call.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; DIGEST] {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }
}

/// SHA3-224 (rate 144, digest 28 bytes).
pub type Sha3_224 = Sha3<144, 28>;
/// SHA3-256 (rate 136, digest 32 bytes).
pub type Sha3_256 = Sha3<136, 32>;
/// SHA3-384 (rate 104, digest 48 bytes).
pub type Sha3_384 = Sha3<104, 48>;
/// SHA3-512 (rate 72, digest 64 bytes).
pub type Sha3_512 = Sha3<72, 64>;

/// Formats a digest as lowercase hex.
#[must_use]
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for byte in digest {
        use std::fmt::Write;
        // audit: allow(panic, fmt::Write to a String is infallible)
        write!(s, "{byte:02x}").expect("writing to a String cannot fail");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // Vectors cross-checked against CPython's hashlib (FIPS 202).
    #[test]
    fn sha3_256_empty() {
        assert_eq!(
            to_hex(&Sha3_256::digest(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn sha3_256_abc() {
        assert_eq!(
            to_hex(&Sha3_256::digest(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn sha3_256_fox() {
        assert_eq!(
            to_hex(&Sha3_256::digest(
                b"The quick brown fox jumps over the lazy dog"
            )),
            "69070dda01975c8c120c3aada1b282394e7f032fa9cf32f4cb2259a0897dfc04"
        );
    }

    #[test]
    fn sha3_256_long_input() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        assert_eq!(
            to_hex(&Sha3_256::digest(&data)),
            "b6c70631c6ff932b9f380d9cde8750eb9bea393817a9aea410c2119eb7b9b870"
        );
    }

    #[test]
    fn sha3_256_rate_boundaries() {
        // Inputs straddling the 136-byte rate boundary exercise padding.
        let cases = [
            (
                135,
                "c150125edc74b56fb5cbfdd024fabe20ea5a99bd3c97305bbf7cb55885c106fe",
            ),
            (
                136,
                "5bc276bac9c582508b8fa9b3949e7ed9b6e584ee4d2925b29a426b9931ba1486",
            ),
            (
                137,
                "2f25a6351abe05e289a0a3e65fef42db7d5fc314936bdee4f6d54d04fb20a609",
            ),
            (
                271,
                "15a27a861d7f3e285daf758babcdaee8579be2fa573dc65ed2c61307078ecb90",
            ),
            (
                272,
                "f0759f9d5c3f598bcb2a85480f30bec337e407bc659d9427363a8810718b29ae",
            ),
            (
                273,
                "db32b3436806d2573420c7ef544f0ea430a735fcfc64e7ec80e8721e668d0f30",
            ),
        ];
        for (n, expected) in cases {
            let data = vec![b'x'; n];
            assert_eq!(to_hex(&Sha3_256::digest(&data)), expected, "len {n}");
        }
    }

    #[test]
    fn sha3_512_vectors() {
        assert_eq!(
            to_hex(&Sha3_512::digest(b"")),
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6\
             15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
        );
        assert_eq!(
            to_hex(&Sha3_512::digest(b"abc")),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e\
             10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"
        );
    }

    #[test]
    fn sha3_224_and_384_abc() {
        assert_eq!(
            to_hex(&Sha3_224::digest(b"abc")),
            "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf"
        );
        assert_eq!(
            to_hex(&Sha3_384::digest(b"abc")),
            "ec01498288516fc926459f58e2c6ad8df9b473cb0fc08c2596da7cf0e49be4b2\
             98d88cea927ac7f539f1edf228376d25"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha3_256::digest(&data);
        // Feed in awkward chunk sizes.
        for chunk in [1usize, 7, 64, 135, 136, 137, 500] {
            let mut hasher = Sha3_256::new();
            for piece in data.chunks(chunk) {
                hasher.update(piece);
            }
            assert_eq!(hasher.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(Sha3_256::digest(b"a"), Sha3_256::digest(b"b"));
        assert_ne!(Sha3_256::digest(b""), Sha3_256::digest(b"\0"));
    }

    #[test]
    fn to_hex_formats() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
        assert_eq!(to_hex(&[]), "");
    }

    #[test]
    fn flat_permutation_matches_reference_oracle() {
        // Random states through both permutations: bit-identical results.
        let mut state = 0x5A17_C0DEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..64 {
            let mut flat = [0u64; 25];
            for lane in &mut flat {
                *lane = next();
            }
            let mut reference = flat;
            keccak_f1600(&mut flat);
            keccak_f1600_reference(&mut reference);
            assert_eq!(flat, reference, "round {round}");
        }
        // The all-zero state too (the first absorb's starting point).
        let mut flat = [0u64; 25];
        let mut reference = [0u64; 25];
        keccak_f1600(&mut flat);
        keccak_f1600_reference(&mut reference);
        assert_eq!(flat, reference);
    }
}
