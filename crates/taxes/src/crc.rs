//! CRC32C (Castagnoli) checksums — the EDAC/error-handling system tax
//! (Table 3) and the integrity check used by the storage and RPC substrates.

/// The reflected CRC32C polynomial.
const POLY: u32 = 0x82f6_3b78;

/// Byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC32C of `data`.
///
/// # Examples
///
/// ```
/// assert_eq!(hsdp_taxes::crc::crc32c(b"123456789"), 0xe306_9283);
/// ```
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Extends a CRC32C over more data (streaming use).
#[must_use]
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// An incremental CRC32C hasher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Crc32c {
    crc: u32,
}

impl Crc32c {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs more input.
    pub fn update(&mut self, data: &[u8]) {
        self.crc = crc32c_append(self.crc, data);
    }

    /// The checksum so far.
    #[must_use]
    pub fn finalize(self) -> u32 {
        self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Cross-checked against a bitwise reference implementation.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        assert_eq!(
            crc32c(b"The quick brown fox jumps over the lazy dog"),
            0x2262_0404
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 256) as u8).collect();
        let oneshot = crc32c(&data);
        for chunk in [1usize, 3, 17, 100, 999] {
            let mut h = Crc32c::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), oneshot, "chunk {chunk}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello world, this is a checksum test".to_vec();
        let original = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), original, "flip {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
