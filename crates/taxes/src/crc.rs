//! CRC32C (Castagnoli) checksums — the EDAC/error-handling system tax
//! (Table 3) and the integrity check used by the storage and RPC substrates.

/// The reflected CRC32C polynomial.
const POLY: u32 = 0x82f6_3b78;

/// Byte-indexed lookup table, built at compile time. This is the reference
/// oracle: the slicing-by-8 tables below are derived from it and the
/// byte-at-a-time implementation ([`crc32c_append_bytewise`]) is kept for
/// equivalence testing and as the benchmark baseline.
pub(crate) const TABLE: [u32; 256] = build_table();

/// Slicing-by-8 tables: `TABLES[k][b]` is the CRC contribution of byte `b`
/// advanced `k` further byte positions through the polynomial.
/// `TABLES[0]` equals [`TABLE`].
const TABLES: [[u32; 256]; 8] = build_slicing_tables();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const fn build_slicing_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = TABLE;
    let mut i = 0;
    while i < 256 {
        let mut k = 1;
        while k < 8 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ TABLE[(prev & 0xff) as usize];
            k += 1;
        }
        i += 1;
    }
    tables
}

/// Computes the CRC32C of `data`.
///
/// # Examples
///
/// ```
/// assert_eq!(hsdp_taxes::crc::crc32c(b"123456789"), 0xe306_9283);
/// ```
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Extends a CRC32C over more data (streaming use) — the dispatched entry.
///
/// Resolves once per process to the best implementation the host supports:
/// the hardware `crc32` instruction path in [`crate::simd::crc`] (SSE4.2 /
/// aarch64 CRC, 3-way stream-interleaved) when detected, else the scalar
/// slicing-by-8 path. All paths are bit-identical for every input; set
/// `HSDP_FORCE_SCALAR=1` to pin the scalar path
/// (see [`crate::dispatch`]).
#[must_use]
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    type CrcFn = fn(u32, &[u8]) -> u32;
    static IMPL: std::sync::OnceLock<CrcFn> = std::sync::OnceLock::new();
    let resolved =
        *IMPL.get_or_init(|| crate::simd::crc::crc32c_fn().unwrap_or(crc32c_append_slicing8));
    resolved(crc, data)
}

/// Extends a CRC32C over more data — the scalar fast path and the oracle
/// for the hardware path.
///
/// Slicing-by-8 (Kounavis & Berry): eight table lookups fold eight input
/// bytes per step instead of one, with the byte-table loop mopping up the
/// sub-8-byte tail. Bit-identical to [`crc32c_append_bytewise`] for every
/// input. Kept as the round-2 benchmark baseline and the CI fallback on
/// hosts without the `crc32` instruction.
#[must_use]
pub fn crc32c_append_slicing8(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        crc ^= u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        crc = TABLES[7][(crc & 0xff) as usize]
            ^ TABLES[6][((crc >> 8) & 0xff) as usize]
            ^ TABLES[5][((crc >> 16) & 0xff) as usize]
            ^ TABLES[4][(crc >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// The byte-at-a-time table-lookup implementation — the original seed code
/// path, retained as the reference oracle for the slicing-by-8 fast path
/// and as the benchmark baseline.
#[must_use]
pub fn crc32c_append_bytewise(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// An incremental CRC32C hasher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Crc32c {
    crc: u32,
}

impl Crc32c {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs more input.
    pub fn update(&mut self, data: &[u8]) {
        self.crc = crc32c_append(self.crc, data);
    }

    /// The checksum so far.
    #[must_use]
    pub fn finalize(self) -> u32 {
        self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Cross-checked against a bitwise reference implementation.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        assert_eq!(
            crc32c(b"The quick brown fox jumps over the lazy dog"),
            0x2262_0404
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 256) as u8).collect();
        let oneshot = crc32c(&data);
        for chunk in [1usize, 3, 17, 100, 999] {
            let mut h = Crc32c::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), oneshot, "chunk {chunk}");
        }
    }

    #[test]
    fn slicing_matches_bytewise_oracle_all_lengths() {
        // A cheap deterministic byte stream; covers every length 0..256 and
        // every alignment of the 8-byte slicing loop.
        let data: Vec<u8> = (0..256u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in 0..=256 {
            for start in [0usize, 1, 3, 7] {
                if start + len > data.len() {
                    continue;
                }
                let slice = &data[start..start + len];
                let oracle = crc32c_append_bytewise(0, slice);
                assert_eq!(
                    crc32c_append_slicing8(0, slice),
                    oracle,
                    "len {len} start {start}"
                );
                // The dispatched entry (whatever path it resolved) agrees too.
                assert_eq!(crc32c_append(0, slice), oracle, "len {len} start {start}");
            }
        }
    }

    #[test]
    fn slicing_matches_bytewise_oracle_random_buffers() {
        // xorshift-style mixing so this stays dependency-free in-module.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..64 {
            let len = (next() % 4096) as usize;
            let buf: Vec<u8> = (0..len).map(|_| (next() >> 24) as u8).collect();
            let seed_crc = (next() & 0xffff_ffff) as u32;
            let oracle = crc32c_append_bytewise(seed_crc, &buf);
            assert_eq!(
                crc32c_append_slicing8(seed_crc, &buf),
                oracle,
                "round {round} len {len}"
            );
            assert_eq!(
                crc32c_append(seed_crc, &buf),
                oracle,
                "round {round} len {len}"
            );
        }
    }

    #[test]
    fn slicing_table_zero_is_reference_table() {
        assert_eq!(TABLES[0], TABLE);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello world, this is a checksum test".to_vec();
        let original = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), original, "flip {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
