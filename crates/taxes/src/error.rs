//! Error types for the tax-primitive codecs.

use std::error::Error;
use std::fmt;

/// Errors from the protobuf wire-format codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Input ended in the middle of a varint.
    TruncatedVarint,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// Input ended before a declared field length.
    TruncatedField {
        /// Field number being decoded.
        field: u32,
    },
    /// A tag carried an unsupported wire type.
    UnknownWireType {
        /// The raw wire-type bits.
        wire_type: u8,
    },
    /// A field number was zero or exceeded the protobuf maximum.
    InvalidFieldNumber {
        /// The offending field number.
        field: u64,
    },
    /// A decoded field did not match its schema type.
    TypeMismatch {
        /// Field number.
        field: u32,
        /// What the schema expected.
        expected: &'static str,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8 {
        /// Field number.
        field: u32,
    },
    /// A required field was missing.
    MissingField {
        /// Field number.
        field: u32,
    },
    /// Nesting exceeded the decoder's recursion limit.
    RecursionLimit,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TruncatedVarint => write!(f, "input ended inside a varint"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::TruncatedField { field } => {
                write!(f, "input ended inside field {field}")
            }
            WireError::UnknownWireType { wire_type } => {
                write!(f, "unsupported wire type {wire_type}")
            }
            WireError::InvalidFieldNumber { field } => {
                write!(f, "invalid field number {field}")
            }
            WireError::TypeMismatch { field, expected } => {
                write!(f, "field {field} is not a {expected}")
            }
            WireError::InvalidUtf8 { field } => {
                write!(f, "field {field} holds invalid UTF-8")
            }
            WireError::MissingField { field } => {
                write!(f, "required field {field} is missing")
            }
            WireError::RecursionLimit => write!(f, "message nesting too deep"),
        }
    }
}

impl Error for WireError {}

/// Errors from the block compressor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompressError {
    /// Compressed input ended unexpectedly.
    Truncated,
    /// A back-reference pointed before the start of the output.
    InvalidBackref {
        /// Offset of the bad reference in the compressed stream.
        at: usize,
    },
    /// The stream header was malformed or versioned wrong.
    BadHeader,
    /// The decompressed length did not match the header's claim.
    LengthMismatch {
        /// Length the header declared.
        expected: usize,
        /// Length actually produced.
        actual: usize,
    },
    /// Stored checksum did not match the decompressed payload.
    ChecksumMismatch,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::InvalidBackref { at } => {
                write!(f, "invalid back-reference at byte {at}")
            }
            CompressError::BadHeader => write!(f, "bad compressed stream header"),
            CompressError::LengthMismatch { expected, actual } => {
                write!(f, "decompressed {actual} bytes, header claimed {expected}")
            }
            CompressError::ChecksumMismatch => {
                write!(f, "checksum mismatch after decompression")
            }
        }
    }
}

impl Error for CompressError {}

/// Errors from the RPC frame codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// Input shorter than a frame header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Header checksum failed.
    HeaderChecksum,
    /// Payload checksum failed.
    PayloadChecksum,
    /// Declared payload length exceeds the configured maximum.
    Oversized {
        /// Declared length.
        declared: usize,
        /// Configured maximum.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::HeaderChecksum => write!(f, "frame header checksum mismatch"),
            FrameError::PayloadChecksum => write!(f, "frame payload checksum mismatch"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame payload {declared} exceeds maximum {max}")
            }
        }
    }
}

impl Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_error() {
        fn check<T: Error + Send + Sync>() {}
        check::<WireError>();
        check::<CompressError>();
        check::<FrameError>();
    }

    #[test]
    fn displays_are_informative() {
        assert!(WireError::TypeMismatch {
            field: 3,
            expected: "string"
        }
        .to_string()
        .contains("field 3"));
        assert!(CompressError::LengthMismatch {
            expected: 10,
            actual: 5
        }
        .to_string()
        .contains("10"));
        assert!(FrameError::Oversized {
            declared: 9,
            max: 4
        }
        .to_string()
        .contains('9'));
    }
}
