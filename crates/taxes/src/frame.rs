//! RPC message framing — the wire layer of the RPC datacenter tax.
//!
//! Frames carry a fixed header (magic, kind, method, request id, payload
//! length, header CRC) followed by the payload and a payload CRC32C. The
//! RPC substrate (`hsdp-rpc`) and the platforms serialize every simulated
//! RPC through this codec so its CPU cost is real, measurable work.

use crate::crc::crc32c;
use crate::error::FrameError;

/// Frame magic bytes.
const MAGIC: [u8; 2] = *b"RF";
/// Fixed header length: magic(2) + kind(1) + method(2) + request_id(8) +
/// payload_len(4) + header_crc(4).
pub const HEADER_LEN: usize = 21;
/// Trailing payload checksum length.
pub const TRAILER_LEN: usize = 4;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A request from client to server.
    Request,
    /// A successful response.
    Response,
    /// An application-level error response.
    Error,
    /// A cancellation notice.
    Cancel,
}

/// Converts a header/trailer sub-slice into a fixed-size array. Callers
/// have already bounds-checked `buf` against `HEADER_LEN`/`total`.
fn arr<const N: usize>(bytes: &[u8]) -> [u8; N] {
    // audit: allow(panic, callers have already bounds-checked the slice length)
    bytes.try_into().expect("length checked by caller")
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
            FrameKind::Error => 2,
            FrameKind::Cancel => 3,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, FrameError> {
        match byte {
            0 => Ok(FrameKind::Request),
            1 => Ok(FrameKind::Response),
            2 => Ok(FrameKind::Error),
            3 => Ok(FrameKind::Cancel),
            _ => Err(FrameError::BadMagic),
        }
    }
}

/// A decoded RPC frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Method identifier.
    pub method: u16,
    /// Request correlation id.
    pub request_id: u64,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a request frame.
    #[must_use]
    pub fn request(method: u16, request_id: u64, payload: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::Request,
            method,
            request_id,
            payload,
        }
    }

    /// Creates a response frame.
    #[must_use]
    pub fn response(method: u16, request_id: u64, payload: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::Response,
            method,
            request_id,
            payload,
        }
    }

    /// Total encoded length.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + TRAILER_LEN
    }

    /// Encodes the frame, appending to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let header_start = out.len();
        out.extend_from_slice(&MAGIC);
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.method.to_le_bytes());
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let header_crc = crc32c(&out[header_start..header_start + HEADER_LEN - 4]);
        out.extend_from_slice(&header_crc.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&crc32c(&self.payload).to_le_bytes());
    }

    /// Encodes to a fresh buffer.
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode(&mut out);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the bytes
    /// consumed. `max_payload` bounds accepted payload sizes.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] on truncation, bad magic, checksum failures,
    /// or oversized payloads.
    pub fn decode(buf: &[u8], max_payload: usize) -> Result<(Frame, usize), FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        if buf[..2] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let declared_header_crc = u32::from_le_bytes(arr(&buf[HEADER_LEN - 4..HEADER_LEN]));
        if crc32c(&buf[..HEADER_LEN - 4]) != declared_header_crc {
            return Err(FrameError::HeaderChecksum);
        }
        let kind = FrameKind::from_byte(buf[2])?;
        let method = u16::from_le_bytes(arr(&buf[3..5]));
        let request_id = u64::from_le_bytes(arr(&buf[5..13]));
        let payload_len = u32::from_le_bytes(arr(&buf[13..17])) as usize;
        if payload_len > max_payload {
            return Err(FrameError::Oversized {
                declared: payload_len,
                max: max_payload,
            });
        }
        let total = HEADER_LEN + payload_len + TRAILER_LEN;
        if buf.len() < total {
            return Err(FrameError::Truncated);
        }
        let payload = &buf[HEADER_LEN..HEADER_LEN + payload_len];
        let declared_payload_crc = u32::from_le_bytes(arr(&buf[HEADER_LEN + payload_len..total]));
        if crc32c(payload) != declared_payload_crc {
            return Err(FrameError::PayloadChecksum);
        }
        Ok((
            Frame {
                kind,
                method,
                request_id,
                payload: payload.to_vec(),
            },
            total,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            FrameKind::Request,
            FrameKind::Response,
            FrameKind::Error,
            FrameKind::Cancel,
        ] {
            let frame = Frame {
                kind,
                method: 7,
                request_id: 0xfeed,
                payload: b"payload".to_vec(),
            };
            let bytes = frame.encode_to_vec();
            assert_eq!(bytes.len(), frame.encoded_len());
            let (decoded, consumed) = Frame::decode(&bytes, 1024).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn empty_payload() {
        let frame = Frame::request(1, 2, Vec::new());
        let bytes = frame.encode_to_vec();
        let (decoded, _) = Frame::decode(&bytes, 0).unwrap();
        assert!(decoded.payload.is_empty());
    }

    #[test]
    fn streams_of_frames_decode_in_order() {
        let mut stream = Vec::new();
        for i in 0..10u64 {
            Frame::request(i as u16, i, vec![i as u8; i as usize]).encode(&mut stream);
        }
        let mut pos = 0;
        for i in 0..10u64 {
            let (frame, n) = Frame::decode(&stream[pos..], 1024).unwrap();
            assert_eq!(frame.request_id, i);
            assert_eq!(frame.payload.len(), i as usize);
            pos += n;
        }
        assert_eq!(pos, stream.len());
    }

    #[test]
    fn truncation_detected() {
        let bytes = Frame::request(1, 2, b"data".to_vec()).encode_to_vec();
        for cut in 0..bytes.len() {
            assert!(
                Frame::decode(&bytes[..cut], 1024).is_err(),
                "prefix {cut} must fail"
            );
        }
    }

    #[test]
    fn corruption_detected_everywhere() {
        let bytes = Frame::request(3, 99, b"integrity matters".to_vec()).encode_to_vec();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Frame::decode(&bad, 1024).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn oversized_payload_rejected_before_allocation() {
        let bytes = Frame::request(1, 2, vec![0u8; 100]).encode_to_vec();
        assert!(matches!(
            Frame::decode(&bytes, 10),
            Err(FrameError::Oversized {
                declared: 100,
                max: 10
            })
        ));
    }
}
