//! Counted data-movement operations — the `mem{cpy,move}` datacenter tax
//! (Table 2).
//!
//! The substrates route bulk copies through [`MoveCounter`] so the profiler
//! can attribute data-movement bytes and operations per platform.

use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulates data-movement statistics. Cheap, thread-safe, shareable.
#[derive(Debug, Default)]
pub struct MoveCounter {
    operations: AtomicU64,
    bytes: AtomicU64,
}

impl MoveCounter {
    /// A fresh counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `src` into a fresh buffer, counting the movement.
    #[must_use]
    pub fn copy_out(&self, src: &[u8]) -> Vec<u8> {
        self.record(src.len());
        src.to_vec()
    }

    /// Copies `src` into `dst`, counting the movement.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn copy_into(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "copy_into requires equal lengths");
        dst.copy_from_slice(src);
        self.record(src.len());
    }

    /// Appends `src` to `dst`, counting the movement.
    pub fn append(&self, src: &[u8], dst: &mut Vec<u8>) {
        dst.extend_from_slice(src);
        self.record(src.len());
    }

    /// Records a movement performed elsewhere.
    pub fn record(&self, bytes: usize) {
        self.operations.fetch_add(1, Ordering::Relaxed);
        // audit: allow(cast, usize to u64 widening is lossless on all supported targets)
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Number of copy operations recorded.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations.load(Ordering::Relaxed)
    }

    /// Total bytes moved.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.operations.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_and_counts() {
        let counter = MoveCounter::new();
        let out = counter.copy_out(b"hello");
        assert_eq!(out, b"hello");
        let mut dst = vec![0u8; 5];
        counter.copy_into(b"world", &mut dst);
        assert_eq!(dst, b"world");
        let mut buf = Vec::new();
        counter.append(b"!!", &mut buf);
        assert_eq!(counter.operations(), 3);
        assert_eq!(counter.bytes(), 12);
        counter.reset();
        assert_eq!(counter.operations(), 0);
        assert_eq!(counter.bytes(), 0);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let counter = Arc::new(MoveCounter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _ = c.copy_out(&[0u8; 10]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.operations(), 400);
        assert_eq!(counter.bytes(), 4000);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn copy_into_length_mismatch_panics() {
        let counter = MoveCounter::new();
        let mut dst = vec![0u8; 3];
        counter.copy_into(b"four", &mut dst);
    }
}
