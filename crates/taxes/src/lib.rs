//! # hsdp-taxes
//!
//! Real, from-scratch implementations of the *datacenter tax* operations the
//! paper identifies as dominant acceleration targets (Section 5.4, Table 2):
//!
//! | Paper tax | Module |
//! |---|---|
//! | Protobuf (de)serialization | [`protowire`] (+ [`varint`]) |
//! | Compression | [`compress`](mod@compress) |
//! | Cryptography | [`sha3`] |
//! | Mem. allocation | [`arena`] |
//! | RPC | [`frame`] |
//! | Data movement | [`memops`] |
//! | EDAC / checksums (system tax) | [`crc`] |
//!
//! [`pprof`] dogfoods [`protowire`] to serialize profiler output in the
//! standard `profile.proto` format, and [`framed`] wraps protowire payloads
//! in the length-prefixed, CRC32C-checked container the per-commit
//! profile-history store (`hsdp-profiling::history`) appends to.
//!
//! The platform simulators in `hsdp-platforms` execute these primitives on
//! their hot paths, so the profiling pipeline observes genuine tax work; the
//! chained-accelerator validation in `hsdp-accelsim` uses [`protowire`] and
//! [`sha3`] as its pipeline stages, mirroring the paper's ProtoAcc → SHA3
//! RTL experiment (Section 6.4).

// `deny` rather than `forbid`: the [`simd`] quarantine overrides it with a
// scoped allow. Everything outside `simd/` remains unsafe-free, enforced by
// `xtask audit --rule unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod compress;
pub mod crc;
pub mod dispatch;
pub mod error;
pub mod frame;
pub mod framed;
pub mod memops;
pub mod pprof;
pub mod protowire;
pub mod sha3;
pub mod simd;
pub mod varint;

pub use arena::{Arena, ArenaStats};
pub use compress::{compress, decompress};
pub use crc::crc32c;
pub use error::{CompressError, FrameError, WireError};
pub use frame::{Frame, FrameKind};
pub use memops::MoveCounter;
pub use protowire::{FieldDescriptor, FieldType, Message, MessageDescriptor, Value};
pub use sha3::{Sha3_256, Sha3_512};
