//! Runtime CPU-capability detection for the tax-kernel fast paths.
//!
//! The paper's datacenter-tax kernels (checksumming, compression, hashing,
//! filtering) all have hardware-instruction or SIMD fast paths on modern
//! cores. This module performs **one-time** feature detection and hands each
//! kernel a function pointer for the best implementation the host supports
//! (kernel round 3); the scalar round-1/2 paths remain the permanent
//! fallback, equivalence oracle, and benchmark baseline.
//!
//! Detection runs once per process via [`CpuFeatures::get`] and is cached in
//! a `OnceLock`; kernels then cache their *resolved* function pointer the
//! same way, so the steady-state dispatch cost is a single indirect call.
//!
//! ## Forcing the scalar paths
//!
//! Setting the environment variable `HSDP_FORCE_SCALAR` to any value other
//! than `0` or the empty string makes detection report no capabilities, so
//! every kernel resolves to its scalar implementation. CI runs the test and
//! equivalence suites both natively and under `HSDP_FORCE_SCALAR=1`;
//! because every fast path is byte-identical to its scalar predecessor, all
//! determinism and telemetry artifacts are unchanged either way.

use std::sync::OnceLock;

/// The instruction-set capabilities the tax kernels can dispatch on.
///
/// Detected once per process; all fields are `false` when the scalar paths
/// are forced via `HSDP_FORCE_SCALAR` or on architectures without a fast
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// The scalar override (`HSDP_FORCE_SCALAR`) was active at detection.
    pub forced_scalar: bool,
    /// x86-64 SSE4.2: the `crc32` instruction (hardware CRC32C).
    pub sse42: bool,
    /// x86-64 PCLMULQDQ: carry-less multiply (CRC folding/recombination).
    pub pclmulqdq: bool,
    /// x86-64 AVX2: 32-byte integer SIMD (match finding, block probes).
    pub avx2: bool,
    /// aarch64 CRC extension: the `crc32c*` instructions.
    pub aarch64_crc: bool,
}

impl CpuFeatures {
    /// A feature set with nothing enabled (the scalar-only profile).
    const fn none(forced_scalar: bool) -> Self {
        CpuFeatures {
            forced_scalar,
            sse42: false,
            pclmulqdq: false,
            avx2: false,
            aarch64_crc: false,
        }
    }

    /// The process-wide detected feature set (detection runs on first call).
    pub fn get() -> &'static Self {
        static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
        FEATURES.get_or_init(Self::detect)
    }

    /// Performs detection: the env override first, then the host ISA.
    ///
    /// Reading `HSDP_FORCE_SCALAR` is an ambient input, but it only selects
    /// *which* byte-identical implementation runs — outputs are invariant.
    fn detect() -> Self {
        if force_scalar_requested() {
            return Self::none(true);
        }
        Self::detect_isa()
    }

    #[cfg(target_arch = "x86_64")]
    fn detect_isa() -> Self {
        CpuFeatures {
            forced_scalar: false,
            sse42: std::arch::is_x86_feature_detected!("sse4.2"),
            pclmulqdq: std::arch::is_x86_feature_detected!("pclmulqdq"),
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            aarch64_crc: false,
        }
    }

    #[cfg(target_arch = "aarch64")]
    fn detect_isa() -> Self {
        CpuFeatures {
            forced_scalar: false,
            sse42: false,
            pclmulqdq: false,
            avx2: false,
            aarch64_crc: std::arch::is_aarch64_feature_detected!("crc"),
        }
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn detect_isa() -> Self {
        Self::none(false)
    }

    /// True when any fast-path capability is available.
    #[must_use]
    pub fn any(&self) -> bool {
        self.sse42 || self.pclmulqdq || self.avx2 || self.aarch64_crc
    }

    /// A compact, order-stable summary for bench reports and log headers,
    /// e.g. `"sse4.2+pclmul+avx2"`, `"aarch64-crc"`, `"scalar(forced)"`, or
    /// `"scalar"`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.forced_scalar {
            return "scalar(forced)".to_owned();
        }
        let mut parts: Vec<&str> = Vec::new();
        if self.sse42 {
            parts.push("sse4.2");
        }
        if self.pclmulqdq {
            parts.push("pclmul");
        }
        if self.avx2 {
            parts.push("avx2");
        }
        if self.aarch64_crc {
            parts.push("aarch64-crc");
        }
        if parts.is_empty() {
            "scalar".to_owned()
        } else {
            parts.join("+")
        }
    }
}

/// True when `HSDP_FORCE_SCALAR` requests the scalar paths.
///
/// Any value other than unset, empty, or `0` counts as a request, so both
/// `HSDP_FORCE_SCALAR=1` and `HSDP_FORCE_SCALAR=yes` work.
#[must_use]
pub fn force_scalar_requested() -> bool {
    match std::env::var_os("HSDP_FORCE_SCALAR") {
        Some(v) => !v.is_empty() && v != "0",
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable_across_calls() {
        assert_eq!(CpuFeatures::get(), CpuFeatures::get());
    }

    #[test]
    fn summary_shapes() {
        assert_eq!(CpuFeatures::none(true).summary(), "scalar(forced)");
        assert_eq!(CpuFeatures::none(false).summary(), "scalar");
        let full = CpuFeatures {
            forced_scalar: false,
            sse42: true,
            pclmulqdq: true,
            avx2: true,
            aarch64_crc: false,
        };
        assert_eq!(full.summary(), "sse4.2+pclmul+avx2");
        assert!(full.any());
        assert!(!CpuFeatures::none(false).any());
    }

    #[test]
    fn forced_scalar_reports_no_capabilities() {
        let forced = CpuFeatures::none(true);
        assert!(!forced.any());
        assert!(forced.forced_scalar);
    }
}
