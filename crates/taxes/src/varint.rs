//! Base-128 varints and ZigZag encoding — the integer primitives of the
//! protobuf wire format.

use crate::error::WireError;

/// Maximum encoded size of a 64-bit varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends a varint-encoded `u64` to `out`, returning the encoded length.
///
/// The 1- and 2-byte cases are special-cased: in fleet-representative
/// protobuf traffic (HyperProtoBench shapes) the overwhelming majority of
/// varints are tags and small scalars that fit in one or two bytes, so the
/// hot path writes them without entering the generic shift loop.
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) -> usize {
    if value < 0x80 {
        out.push(value as u8);
        return 1;
    }
    if value < 0x4000 {
        out.extend_from_slice(&[(value as u8 & 0x7f) | 0x80, (value >> 7) as u8]);
        return 2;
    }
    let mut len = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        len += 1;
        if value == 0 {
            out.push(byte);
            return len;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint from the front of `buf`.
///
/// Returns the value and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`WireError::TruncatedVarint`] if the buffer ends mid-varint and
/// [`WireError::VarintOverflow`] if the encoding exceeds 10 bytes or
/// overflows 64 bits.
pub fn decode_varint(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut value: u64 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(WireError::VarintOverflow);
        }
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only contribute a single bit.
        if i == MAX_VARINT_LEN - 1 && payload > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    Err(WireError::TruncatedVarint)
}

/// ZigZag-encodes a signed 64-bit integer (`sint64` semantics).
#[must_use]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// ZigZag-decodes to a signed 64-bit integer.
#[must_use]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// The encoded length of a varint without encoding it.
#[must_use]
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            let len = encode_varint(v, &mut buf);
            assert_eq!(len, buf.len());
            assert_eq!(len, varint_len(v), "value {v}");
            let (decoded, consumed) = decode_varint(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(consumed, len);
        }
    }

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        encode_varint(300, &mut buf);
        assert_eq!(buf, vec![0xac, 0x02]);
        buf.clear();
        encode_varint(1, &mut buf);
        assert_eq!(buf, vec![0x01]);
    }

    #[test]
    fn fast_paths_match_generic_loop() {
        // Reference: the unconditional shift loop the fast paths bypass.
        fn encode_slow(mut value: u64, out: &mut Vec<u8>) {
            loop {
                let byte = (value & 0x7f) as u8;
                value >>= 7;
                if value == 0 {
                    out.push(byte);
                    return;
                }
                out.push(byte | 0x80);
            }
        }
        // Every boundary of the 1-/2-byte fast paths, plus a spread beyond.
        let cases = [
            0u64,
            1,
            0x7e,
            0x7f,
            0x80,
            0x81,
            0x3ffe,
            0x3fff,
            0x4000,
            0x4001,
            0x1f_ffff,
            1 << 35,
            u64::MAX,
        ];
        for v in cases {
            let mut fast = Vec::new();
            let len = encode_varint(v, &mut fast);
            let mut slow = Vec::new();
            encode_slow(v, &mut slow);
            assert_eq!(fast, slow, "value {v:#x}");
            assert_eq!(len, slow.len(), "value {v:#x}");
        }
    }

    #[test]
    fn truncated_varint_fails() {
        assert!(matches!(
            decode_varint(&[0x80]),
            Err(WireError::TruncatedVarint)
        ));
        assert!(matches!(
            decode_varint(&[]),
            Err(WireError::TruncatedVarint)
        ));
    }

    #[test]
    fn overlong_varint_fails() {
        // 11 continuation bytes can never be a valid 64-bit varint.
        let buf = [0x80u8; 11];
        assert!(matches!(
            decode_varint(&buf),
            Err(WireError::VarintOverflow)
        ));
        // A 10-byte varint whose final byte exceeds 1 overflows 64 bits.
        let mut buf = [0xffu8; 10];
        buf[9] = 0x02;
        assert!(matches!(
            decode_varint(&buf),
            Err(WireError::VarintOverflow)
        ));
    }

    #[test]
    fn max_u64_roundtrips_at_10_bytes() {
        let mut buf = Vec::new();
        assert_eq!(encode_varint(u64::MAX, &mut buf), 10);
        assert_eq!(decode_varint(&buf).unwrap(), (u64::MAX, 10));
    }

    #[test]
    fn zigzag_known_values() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 42, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn trailing_bytes_ignored() {
        let buf = [0x01, 0xde, 0xad];
        let (v, n) = decode_varint(&buf).unwrap();
        assert_eq!((v, n), (1, 1));
    }
}
