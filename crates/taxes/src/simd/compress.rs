//! AVX2 compression fast paths: vectorized match extension and wide copies.
//!
//! The encoder here mirrors [`crate::compress::compress_scalar`]
//! **decision for decision** — same hash probes, same table updates, same
//! miss-skip acceleration, same greedy match acceptance — so the two paths
//! emit byte-identical streams for every input. Only three things are
//! accelerated: unaligned loads skip bounds checks (the scalar control flow
//! already proves them in range), match extension compares 32 bytes per
//! step with `vpcmpeqb`/`vpmovmskb`, and emission writes through a raw
//! cursor into a buffer reserved up front to the format's worst-case size,
//! eliminating the per-op capacity checks and memcpy dispatch.
//!
//! The decoder keeps [`crate::compress::decompress_scalar`]'s validation
//! order and error behaviour exactly (hardened-decoder budget checks
//! included) and accelerates only the copies: literal runs and disjoint
//! back-references move 32 bytes per step, and overlapping (RLE-style)
//! references with offset ≥ 32 use a forward wide copy whose reads always
//! trail the write frontier.

use crate::error::CompressError;

/// Signature shared by the scalar and SIMD compressors.
pub type CompressFn = fn(&[u8]) -> Vec<u8>;

/// Signature shared by the scalar and SIMD decompressors.
pub type DecompressFn = fn(&[u8]) -> Result<Vec<u8>, CompressError>;

/// Resolves the SIMD compressor when the host supports it (else `None`).
pub fn compress_fn() -> Option<CompressFn> {
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::CpuFeatures::get().avx2 {
        return Some(x86::compress_entry);
    }
    None
}

/// Resolves the SIMD decompressor when the host supports it (else `None`).
pub fn decompress_fn() -> Option<DecompressFn> {
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::CpuFeatures::get().avx2 {
        return Some(x86::decompress_entry);
    }
    None
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8,
        _mm256_storeu_si256, _mm_loadu_si128, _mm_storeu_si128,
    };

    use crate::compress::{
        compress_reference, decode_op_len, emit_copy, emit_literals, hash4, load_u32, HASH_BITS,
        MAGIC, MAX_OFFSET, MAX_PREALLOC, MIN_MATCH, SKIP_TRIGGER, VERSION,
    };
    use crate::error::CompressError;
    use crate::varint::{decode_varint, encode_varint};

    /// Loads a little-endian u64 without a bounds check.
    ///
    /// # Safety
    ///
    /// `pos + 8 <= data.len()`.
    #[inline]
    unsafe fn load64(data: &[u8], pos: usize) -> u64 {
        debug_assert!(pos + 8 <= data.len());
        // SAFETY: the caller guarantees `pos + 8 <= data.len()`.
        unsafe { data.as_ptr().add(pos).cast::<u64>().read_unaligned() }
    }

    /// Appends one byte through the raw cursor.
    ///
    /// # Safety
    ///
    /// `out` has at least one spare byte of capacity.
    #[inline(always)]
    unsafe fn push_byte(out: &mut Vec<u8>, byte: u8) {
        let len = out.len();
        debug_assert!(len < out.capacity());
        // SAFETY: the caller guarantees spare capacity, so the write stays
        // inside the allocation and the new length is initialized.
        unsafe {
            out.as_mut_ptr().add(len).write(byte);
            out.set_len(len + 1);
        }
    }

    /// Appends a varint through the raw cursor — byte-identical to
    /// [`crate::varint::encode_varint`] for every value.
    ///
    /// # Safety
    ///
    /// `out` has at least 10 spare bytes of capacity.
    #[inline(always)]
    unsafe fn push_varint(out: &mut Vec<u8>, mut value: u64) {
        if value < 0x80 {
            // SAFETY: the caller guarantees 10 spare bytes (≥ 1).
            unsafe { push_byte(out, value as u8) };
            return;
        }
        if value < 0x4000 {
            // SAFETY: the caller guarantees 10 spare bytes (≥ 2).
            unsafe {
                push_byte(out, (value as u8 & 0x7f) | 0x80);
                push_byte(out, (value >> 7) as u8);
            }
            return;
        }
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                // SAFETY: a u64 varint is ≤ 10 bytes, all reserved.
                unsafe { push_byte(out, byte) };
                return;
            }
            // SAFETY: a u64 varint is ≤ 10 bytes, all reserved.
            unsafe { push_byte(out, byte | 0x80) };
        }
    }

    /// Appends `src` through the raw cursor with wide copies. All reads stay
    /// inside `src` (the final vector/word overlaps backwards), so no
    /// out-of-bounds source bytes are touched.
    ///
    /// # Safety
    ///
    /// `out` has at least `src.len()` spare bytes of capacity.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn append_slice(out: &mut Vec<u8>, src: &[u8]) {
        let len = src.len();
        let old = out.len();
        debug_assert!(old + len <= out.capacity());
        let from = src.as_ptr();
        // SAFETY: the caller guarantees `len` spare bytes of capacity, so
        // every store lands inside the allocation; every load below is
        // bounded by `src`'s own length.
        unsafe {
            let to = out.as_mut_ptr().add(old);
            copy_exact(from, to, len);
            out.set_len(old + len);
        }
    }

    /// Copies one unaligned 32-byte vector.
    ///
    /// # Safety
    ///
    /// 32 bytes are readable at `from` and writable at `to`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn copy32(from: *const u8, to: *mut u8) {
        // SAFETY: the caller guarantees both 32-byte ranges are valid.
        unsafe { _mm256_storeu_si256(to.cast::<__m256i>(), _mm256_loadu_si256(from.cast())) };
    }

    /// Copies exactly `len` bytes between non-overlapping regions, 32 bytes
    /// per step with an overlapping final vector (no wild reads or writes).
    ///
    /// # Safety
    ///
    /// `len` bytes readable at `from`, `len` bytes writable at `to`, and the
    /// regions do not overlap.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn copy_exact(from: *const u8, to: *mut u8, len: usize) {
        // SAFETY: every load/store below stays inside the caller-guaranteed
        // `len`-byte regions (this covers all branches of the block).
        unsafe {
            if len >= 32 {
                let mut i = 0;
                while i + 32 <= len {
                    copy32(from.add(i), to.add(i));
                    i += 32;
                }
                if i < len {
                    // Overlapping final vector: touches exactly [len-32, len).
                    copy32(from.add(len - 32), to.add(len - 32));
                }
            } else if len >= 16 {
                // Two overlapping 16-byte vectors cover 16..=31.
                let head = _mm_loadu_si128(from.cast());
                let tail = _mm_loadu_si128(from.add(len - 16).cast());
                _mm_storeu_si128(to.cast::<__m128i>(), head);
                _mm_storeu_si128(to.add(len - 16).cast::<__m128i>(), tail);
            } else if len >= 8 {
                let head = from.cast::<u64>().read_unaligned();
                let tail = from.add(len - 8).cast::<u64>().read_unaligned();
                to.cast::<u64>().write_unaligned(head);
                to.add(len - 8).cast::<u64>().write_unaligned(tail);
            } else {
                for i in 0..len {
                    to.add(i).write(*from.add(i));
                }
            }
        }
    }

    /// Emits a literal run — byte-identical to
    /// [`crate::compress::emit_literals`].
    ///
    /// # Safety
    ///
    /// `out` has at least `11 + (end - start)` spare bytes of capacity.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn emit_literals_raw(out: &mut Vec<u8>, data: &[u8], start: usize, end: usize) {
        let len = end - start;
        if len == 0 {
            return;
        }
        // SAFETY: the caller's capacity bound covers the ≤11-byte header and
        // the `len` literal bytes.
        unsafe {
            if len - 1 < 0x7f {
                push_byte(out, ((len - 1) as u8) << 1);
            } else {
                push_byte(out, 0x7f << 1);
                push_varint(out, len as u64);
            }
            append_slice(out, &data[start..end]);
        }
    }

    /// Emits a copy op — byte-identical to [`crate::compress::emit_copy`].
    ///
    /// # Safety
    ///
    /// `out` has at least 21 spare bytes of capacity.
    #[inline(always)]
    unsafe fn emit_copy_raw(out: &mut Vec<u8>, len: usize, offset: usize) {
        debug_assert!(len >= MIN_MATCH && offset >= 1);
        // SAFETY: the caller's capacity bound covers the tag plus two
        // varints (≤ 1 + 10 + 10 bytes).
        unsafe {
            if len - MIN_MATCH < 0x7f {
                push_byte(out, (((len - MIN_MATCH) as u8) << 1) | 1);
            } else {
                push_byte(out, (0x7f << 1) | 1);
                push_varint(out, len as u64);
            }
            push_varint(out, offset as u64);
        }
    }

    /// Length of the common prefix of `data[a..]` and `data[b..]` (`a < b`),
    /// bounded by the end of the buffer — the vectorized counterpart of
    /// [`crate::compress`]'s `common_prefix_len`, returning identical values.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn prefix_len_avx2(data: &[u8], mut a: usize, mut b: usize) -> usize {
        debug_assert!(a < b);
        let start = b;
        let total = data.len();
        let ptr = data.as_ptr();
        while b + 32 <= total {
            // SAFETY: `b + 32 <= total` and `a < b`, so both 32-byte loads
            // end inside `data`.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(ptr.add(a).cast()),
                    _mm256_loadu_si256(ptr.add(b).cast()),
                )
            };
            let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32;
            if eq != u32::MAX {
                return b - start + (!eq).trailing_zeros() as usize;
            }
            a += 32;
            b += 32;
        }
        while b + 8 <= total {
            // SAFETY: `b + 8 <= total` and `a < b`.
            let diff = unsafe { load64(data, a) ^ load64(data, b) };
            if diff != 0 {
                return b - start + (diff.trailing_zeros() / 8) as usize;
            }
            a += 8;
            b += 8;
        }
        while b < total && data[a] == data[b] {
            a += 1;
            b += 1;
        }
        b - start
    }

    /// Safe entry installed by [`super::compress_fn`].
    pub(super) fn compress_entry(data: &[u8]) -> Vec<u8> {
        // Same guard as the scalar path: the u32 match table cannot encode
        // positions past u32::MAX, so huge inputs take the reference codec.
        if data.len() >= u32::MAX as usize {
            return compress_reference(data);
        }
        // SAFETY: `compress_fn` installs this entry only after
        // `CpuFeatures::get` confirmed AVX2 on this CPU.
        unsafe { compress_avx2(data) }
    }

    /// AVX2 compressor — emits the exact byte stream of
    /// [`crate::compress::compress_scalar`].
    #[target_feature(enable = "avx2")]
    fn compress_avx2(data: &[u8]) -> Vec<u8> {
        let total = data.len();
        // Worst-case output bound, so the raw cursor never reallocates:
        // header ≤ 13 bytes; literal bytes ≤ n; copy ops emit at most one
        // byte per input byte consumed (a ≤4-byte op per ≥4-byte match; the
        // long-form varint amortizes over ≥131 matched bytes); literal run
        // headers cost ≤1 byte plus varint/21 per byte for long runs, with
        // at most n/4 + 1 runs (every copy between runs consumes ≥
        // MIN_MATCH). 32 + n + n/4 + n/16 covers all of it; reserving the
        // roomier 32 + 2n + n/2 keeps a wide margin and measures faster
        // here — the first free of a block this size bumps the allocator's
        // dynamic mmap/trim thresholds, so subsequent calls recycle the
        // arena instead of trim-thrashing pages back to the kernel.
        let cap = 32 + 2 * total + total / 2;
        let mut out = Vec::with_capacity(cap);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        encode_varint(total as u64, &mut out);

        let mut table: Box<[u32; 1 << HASH_BITS]> = Box::new([0u32; 1 << HASH_BITS]);
        let mut pos = 0;
        let mut literal_start = 0;
        let mut misses: u32 = 0;

        while pos + 8 <= total {
            // SAFETY: the loop condition proves `pos + 8 <= total`.
            let here = unsafe { load64(data, pos) };
            let h = hash4(here as u32);
            let candidate = (table[h] as usize).wrapping_sub(1);
            table[h] = (pos + 1) as u32;

            let diff = if candidate != usize::MAX && pos - candidate <= MAX_OFFSET {
                // SAFETY: the table only holds previously probed positions,
                // so `candidate < pos` and `candidate + 8 <= total`.
                unsafe { load64(data, candidate) ^ here }
            } else {
                1 // low bit set: "seed mismatch"
            };
            if diff & 0xFFFF_FFFF != 0 {
                pos += 1 + (misses >> SKIP_TRIGGER) as usize;
                misses += 1;
                continue;
            }
            let len = if diff != 0 {
                (diff.trailing_zeros() / 8) as usize
            } else {
                8 + prefix_len_avx2(data, candidate + 8, pos + 8)
            };
            let lit = pos - literal_start;
            if lit <= 32 && literal_start + 32 <= total {
                // Branchless short literal run (the common case): write the
                // tag and one wild 32-byte vector, then advance the cursor
                // by the real size — zero for an empty run, whose garbage
                // tag byte the next emission overwrites.
                // SAFETY: `cap` leaves ≥ 33 bytes of slack over the stream
                // bound, and `literal_start + 32 <= total` keeps the wild
                // source read inside `data`.
                unsafe {
                    let cursor = out.len();
                    let base: *mut u8 = out.as_mut_ptr();
                    base.add(cursor).write((lit.wrapping_sub(1) as u8) << 1);
                    copy32(data.as_ptr().add(literal_start), base.add(cursor + 1));
                    out.set_len(cursor + usize::from(lit != 0) * (1 + lit));
                }
            } else {
                // SAFETY: `cap` bounds the whole stream's size.
                unsafe { emit_literals_raw(&mut out, data, literal_start, pos) };
            }
            let off = pos - candidate;
            if len - MIN_MATCH < 0x7f {
                // Branchless short copy op: tag byte plus a ≤3-byte varint
                // offset (off <= MAX_OFFSET < 2^21) written unconditionally,
                // cursor advanced by the real encoded size.
                // SAFETY: `cap` leaves ≥ 4 bytes of slack over the bound.
                unsafe {
                    let cursor = out.len();
                    let base: *mut u8 = out.as_mut_ptr();
                    base.add(cursor).write((((len - MIN_MATCH) as u8) << 1) | 1);
                    let n = 1 + usize::from(off >= 0x80) + usize::from(off >= 0x4000);
                    let more1 = if n > 1 { 0x80 } else { 0 };
                    let more2 = if n > 2 { 0x80 } else { 0 };
                    base.add(cursor + 1).write((off as u8 & 0x7f) | more1);
                    base.add(cursor + 2)
                        .write(((off >> 7) as u8 & 0x7f) | more2);
                    base.add(cursor + 3).write((off >> 14) as u8);
                    out.set_len(cursor + 1 + n);
                }
            } else {
                // SAFETY: `cap` bounds the whole stream's size.
                unsafe { emit_copy_raw(&mut out, len, off) };
            }
            let end = pos + len;
            if end >= 2 && end + 2 <= total {
                table[hash4(load_u32(data, end - 2))] = (end - 1) as u32;
            }
            pos = end;
            literal_start = pos;
            misses = 0;
        }
        // Sub-word tail: cold, identical to the scalar path, safe helpers.
        while pos + MIN_MATCH <= total {
            let here = load_u32(data, pos);
            let h = hash4(here);
            let candidate = (table[h] as usize).wrapping_sub(1);
            table[h] = (pos + 1) as u32;

            if candidate != usize::MAX
                && pos - candidate <= MAX_OFFSET
                && load_u32(data, candidate) == here
            {
                let len = MIN_MATCH
                    + data[pos + MIN_MATCH..]
                        .iter()
                        .zip(&data[candidate + MIN_MATCH..])
                        .take_while(|(x, y)| x == y)
                        .count();
                emit_literals(&data[literal_start..pos], &mut out);
                emit_copy(len, pos - candidate, &mut out);
                pos += len;
                literal_start = pos;
            } else {
                pos += 1;
            }
        }
        emit_literals(&data[literal_start..], &mut out);
        out
    }

    /// Safe entry installed by [`super::decompress_fn`].
    pub(super) fn decompress_entry(input: &[u8]) -> Result<Vec<u8>, CompressError> {
        // SAFETY: `decompress_fn` installs this entry only after
        // `CpuFeatures::get` confirmed AVX2 on this CPU.
        unsafe { decompress_avx2(input) }
    }

    /// AVX2 decoder — same validation order, errors, and output bytes as
    /// [`crate::compress::decompress_scalar`], with wide copies.
    #[target_feature(enable = "avx2")]
    fn decompress_avx2(input: &[u8]) -> Result<Vec<u8>, CompressError> {
        if input.len() < 3 || input[..2] != MAGIC || input[2] != VERSION {
            return Err(CompressError::BadHeader);
        }
        let mut pos = 3;
        let (expected_len, n) =
            decode_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
        pos += n;
        let expected_len = usize::try_from(expected_len).map_err(|_| CompressError::BadHeader)?;

        // Same decompression-bomb posture as the scalar decoder: the header
        // length is untrusted, so cap the up-front reservation.
        let mut out = Vec::with_capacity(expected_len.min(MAX_PREALLOC));
        while pos < input.len() {
            let tag = input[pos];
            pos += 1;
            let short_len = (tag >> 1) as usize;
            if tag & 1 == 1 {
                let len = decode_op_len(input, &mut pos, short_len, MIN_MATCH)?;
                let (offset, n) =
                    decode_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
                pos += n;
                let offset = usize::try_from(offset).map_err(|_| CompressError::Truncated)?;
                if offset == 0 || offset > out.len() {
                    return Err(CompressError::InvalidBackref { at: pos });
                }
                if len > expected_len - out.len() {
                    return Err(CompressError::LengthMismatch {
                        expected: expected_len,
                        actual: out.len().saturating_add(len),
                    });
                }
                let start = out.len() - offset;
                if offset >= len {
                    out.reserve(len);
                    // SAFETY: `reserve` guarantees `len` spare bytes; the
                    // source `[start, start + len)` is initialized and ends
                    // at or before the old length (offset >= len), so the
                    // regions are disjoint.
                    unsafe {
                        let base: *mut u8 = out.as_mut_ptr();
                        let old = out.len();
                        copy_exact(base.add(start).cast_const(), base.add(old), len);
                        out.set_len(old + len);
                    }
                } else if offset >= 32 {
                    // Overlapping forward copy, 32 bytes per step: reads
                    // trail the write frontier by `offset >= 32` bytes, so
                    // every chunk's source is already written. Writes may
                    // run up to 31 bytes past `len` (into reserved slack);
                    // `set_len` trims them.
                    out.reserve(len + 31);
                    // SAFETY: `reserve` guarantees `len + 31` writable spare
                    // bytes; chunk k reads `[start + 32k, start + 32k + 32)`,
                    // which ends at or below `old + 32k` — memory already
                    // written — because `offset >= 32`.
                    unsafe {
                        let base: *mut u8 = out.as_mut_ptr();
                        let old = out.len();
                        let mut copied = 0;
                        while copied < len {
                            copy32(
                                base.add(start + copied).cast_const(),
                                base.add(old + copied),
                            );
                            copied += 32;
                        }
                        out.set_len(old + len);
                    }
                } else {
                    // Tight overlap (RLE-style, offset < 32): the scalar
                    // doubling copy is already O(log n) rounds; keep it.
                    let mut copied = 0;
                    while copied < len {
                        let chunk = (out.len() - start).min(len - copied);
                        out.extend_from_within(start..start + chunk);
                        copied += chunk;
                    }
                }
            } else {
                let len = decode_op_len(input, &mut pos, short_len, 1)?;
                let literals = input.get(pos..pos + len).ok_or(CompressError::Truncated)?;
                if len > expected_len - out.len() {
                    return Err(CompressError::LengthMismatch {
                        expected: expected_len,
                        actual: out.len().saturating_add(len),
                    });
                }
                out.reserve(len);
                // SAFETY: `reserve` guarantees `len` spare bytes of
                // capacity, the precondition of `append_slice`.
                unsafe { append_slice(&mut out, literals) };
                pos += len;
            }
        }
        if out.len() != expected_len {
            return Err(CompressError::LengthMismatch {
                expected: expected_len,
                actual: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::compress::{compress_scalar, decompress_scalar, MAX_OFFSET, MIN_MATCH};

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// The SIMD encoder must emit the exact bytes of the scalar encoder, and
    /// the SIMD decoder must invert both, over a spread of data shapes.
    #[test]
    fn simd_compress_bytes_match_scalar() {
        let Some(simd) = super::compress_fn() else {
            eprintln!("skipping: no SIMD compress on this host");
            return;
        };
        let mut s = 0xA5A5_1234_5678_9ABCu64;
        for len in [0usize, 1, 3, 4, 7, 8, 9, 31, 32, 33, 64, 255, 1024, 4096] {
            // Compressible: small alphabet, long repeats.
            let compressible: Vec<u8> = (0..len)
                .map(|_| b"abcab"[xorshift(&mut s) as usize % 5])
                .collect();
            // Incompressible: full-range random bytes.
            let random: Vec<u8> = (0..len).map(|_| (xorshift(&mut s) >> 24) as u8).collect();
            for data in [&compressible, &random] {
                let expect = compress_scalar(data);
                assert_eq!(simd(data), expect, "len {len}");
                if let Some(dec) = super::decompress_fn() {
                    assert_eq!(dec(&expect).expect("roundtrip"), **data, "len {len}");
                }
            }
        }
    }

    /// Long matches exercise the 32-byte extension loop and wide copies;
    /// a corpus past MAX_OFFSET exercises the window guard.
    #[test]
    fn simd_compress_long_matches_and_window_edge() {
        let Some(simd) = super::compress_fn() else {
            return;
        };
        let mut data = Vec::new();
        let line = b"ts=1681000123 shard=07 user=000042 op=read status=OK\n";
        while data.len() < 3 * MAX_OFFSET {
            data.extend_from_slice(line);
        }
        // A giant single-byte run (RLE regime) appended after the log lines.
        data.extend_from_slice(&[0x5a; 8 * 1024]);
        let expect = compress_scalar(&data);
        assert_eq!(simd(&data), expect);
        assert_eq!(decompress_scalar(&expect).expect("scalar roundtrip"), data);
        if let Some(dec) = super::decompress_fn() {
            assert_eq!(dec(&expect).expect("simd roundtrip"), data);
        }
    }

    /// The SIMD decoder must agree with the scalar decoder on malformed
    /// streams too — same accept/reject result and same error values.
    #[test]
    fn simd_decompress_error_parity_on_corrupted_streams() {
        let Some(dec) = super::decompress_fn() else {
            eprintln!("skipping: no SIMD decompress on this host");
            return;
        };
        let mut s = 0xDEAD_BEEF_0BAD_F00Du64;
        let data: Vec<u8> = (0..2048)
            .map(|_| b"log line payload "[xorshift(&mut s) as usize % 17])
            .collect();
        let packed = compress_scalar(&data);
        // Truncations at every prefix length.
        for cut in 0..packed.len() {
            assert_eq!(
                decompress_scalar(&packed[..cut]),
                dec(&packed[..cut]),
                "truncated at {cut}"
            );
        }
        // Single-byte corruptions across the stream.
        for i in 0..packed.len() {
            let mut bad = packed.clone();
            bad[i] ^= 0x41;
            assert_eq!(decompress_scalar(&bad), dec(&bad), "corrupt byte {i}");
        }
        // A stream with RLE-style tight overlaps (offset < 32).
        let rle_src: Vec<u8> = std::iter::repeat_n(b"ab".as_slice(), MIN_MATCH * 200)
            .flatten()
            .copied()
            .collect();
        let packed_rle = compress_scalar(&rle_src);
        assert_eq!(
            dec(&packed_rle).expect("rle roundtrip"),
            rle_src,
            "tight-overlap backref"
        );
    }
}
