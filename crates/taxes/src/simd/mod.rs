//! SIMD / hardware-instruction fast paths — the **unsafe quarantine**.
//!
//! Kernel round 3: everything `unsafe` in this crate lives under `simd/`,
//! machine-enforced by `xtask audit --rule unsafe` (any `unsafe` token
//! outside a `simd`/`hw` submodule is a finding, and every `unsafe` block in
//! here must carry a `// SAFETY:` comment). The crate root carries
//! `deny(unsafe_code)`; only this subtree opts back in.
//!
//! Each submodule exposes a *resolver* (`crc32c_fn`, `compress_fn`, …)
//! returning `Some(fast_path)` only when [`crate::dispatch::CpuFeatures`]
//! reports the required instruction set — so the `unsafe` precondition
//! (the ISA extension is present) is established exactly once, at dispatch
//! time. Every fast path is byte-identical to its scalar predecessor: same
//! outputs, same error behaviour, property-tested against the scalar oracle
//! over random lengths and alignments.
#![allow(unsafe_code)]

pub mod compress;
pub mod crc;
