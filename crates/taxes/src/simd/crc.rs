//! Hardware CRC32C: the SSE4.2 `crc32` instruction (and the aarch64 `crc32c`
//! extension), 3-way stream-interleaved.
//!
//! The `crc32` instruction retires one 8-byte step per cycle but has ~3
//! cycles of latency, so a single dependent chain leaves two thirds of the
//! unit idle. The fast path therefore splits the input into three
//! independent [`BLOCK`]-byte legs, drives all three chains in one
//! interleaved loop, and then *recombines* the three partial CRCs.
//!
//! Recombination uses the carry-less algebra the PCLMUL folding constants
//! come from: advancing a CRC state across `N` zero bytes is a GF(2)-linear
//! operator, so it is precomputed — at compile time — as a 32x32 bit-matrix
//! raised to the `N`th power and materialized as four 256-entry tables
//! ([`SHIFT_BLOCK`]). One application costs four table lookups, amortized
//! over 2 KiB of input per leg.
//!
//! Everything here is byte-identical to [`crate::crc::crc32c_append_slicing8`]
//! (and transitively to the bytewise oracle) for every input.

use crate::crc::TABLE;

/// Bytes per interleaved leg. A power of two so the shift operator is built
/// by repeated squaring; 2 KiB keeps all three legs within one 4 KiB page
/// pair while giving the recombination plenty of bytes to amortize over.
const BLOCK: usize = 2048;

/// The advance-by-[`BLOCK`]-zero-bytes operator as four byte-indexed tables:
/// `SHIFT_BLOCK[k][b]` is the operator applied to `b << (8k)`. XORing the
/// four lookups applies it to a full 32-bit state.
const SHIFT_BLOCK: [[u32; 256]; 4] = build_shift_tables();

/// Applies the one-zero-byte CRC step matrix `mat` to `vec`.
const fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Squares a GF(2) 32x32 matrix (composition with itself).
const fn gf2_matrix_square(mat: &[u32; 32]) -> [u32; 32] {
    let mut sq = [0u32; 32];
    let mut j = 0;
    while j < 32 {
        sq[j] = gf2_matrix_times(mat, mat[j]);
        j += 1;
    }
    sq
}

const fn build_shift_tables() -> [[u32; 256]; 4] {
    // Column j of the one-zero-byte operator: advance the state `1 << j` by
    // one zero byte, exactly the table loop's step with `byte = 0`.
    let mut mat = [0u32; 32];
    let mut j = 0;
    while j < 32 {
        let c = 1u32 << j;
        mat[j] = (c >> 8) ^ TABLE[(c & 0xff) as usize];
        j += 1;
    }
    // Square log2(BLOCK) times: the operator for BLOCK zero bytes.
    let mut n = BLOCK;
    while n > 1 {
        mat = gf2_matrix_square(&mat);
        n >>= 1;
    }
    let mut tables = [[0u32; 256]; 4];
    let mut k = 0;
    while k < 4 {
        let mut b = 0;
        while b < 256 {
            tables[k][b] = gf2_matrix_times(&mat, (b as u32) << (8 * k));
            b += 1;
        }
        k += 1;
    }
    tables
}

/// Advances a raw (pre-final-XOR) CRC state across [`BLOCK`] zero bytes.
#[inline]
fn shift_block(crc: u32) -> u32 {
    SHIFT_BLOCK[0][(crc & 0xff) as usize]
        ^ SHIFT_BLOCK[1][((crc >> 8) & 0xff) as usize]
        ^ SHIFT_BLOCK[2][((crc >> 16) & 0xff) as usize]
        ^ SHIFT_BLOCK[3][(crc >> 24) as usize]
}

/// Resolves the hardware CRC32C implementation for the detected features,
/// or `None` when the host has no fast path (or scalar is forced).
pub fn crc32c_fn() -> Option<fn(u32, &[u8]) -> u32> {
    let features = crate::dispatch::CpuFeatures::get();
    #[cfg(target_arch = "x86_64")]
    if features.sse42 {
        return Some(crc32c_hw_entry);
    }
    #[cfg(target_arch = "aarch64")]
    if features.aarch64_crc {
        return Some(crc32c_hw_entry);
    }
    let _ = features;
    None
}

/// Safe entry point installed by [`crc32c_fn`].
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn crc32c_hw_entry(crc: u32, data: &[u8]) -> u32 {
    // SAFETY: `crc32c_fn` installs this entry only after `CpuFeatures::get`
    // confirmed the required CRC instruction set on this CPU, which is the
    // sole precondition of the target_feature function.
    unsafe { crc32c_hw(crc, data) }
}

/// Hardware CRC32C over `data`, extending `crc` — x86-64 SSE4.2 path.
///
/// Handles empty, short, and unaligned inputs: the 3-way loop only engages
/// at ≥ 3x[`BLOCK`] remaining bytes and uses unaligned loads; everything
/// else funnels through the single-stream word/byte loops.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
fn crc32c_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};

    let mut state = u64::from(!crc);
    let mut rest = data;

    // Three interleaved legs: leg 0 continues the running state, legs 1 and
    // 2 start from zero and are recombined via the shift operator.
    while rest.len() >= 3 * BLOCK {
        let ptr = rest.as_ptr();
        let mut leg0 = state;
        let mut leg1 = 0u64;
        let mut leg2 = 0u64;
        let mut offset = 0;
        while offset < BLOCK {
            // SAFETY: `offset + 8 <= BLOCK` within this loop and
            // `rest.len() >= 3 * BLOCK`, so all three unaligned u64 reads
            // end at most at `ptr + 3 * BLOCK`, inside `rest`.
            let (w0, w1, w2) = unsafe {
                (
                    ptr.add(offset).cast::<u64>().read_unaligned(),
                    ptr.add(BLOCK + offset).cast::<u64>().read_unaligned(),
                    ptr.add(2 * BLOCK + offset).cast::<u64>().read_unaligned(),
                )
            };
            leg0 = _mm_crc32_u64(leg0, w0);
            leg1 = _mm_crc32_u64(leg1, w1);
            leg2 = _mm_crc32_u64(leg2, w2);
            offset += 8;
        }
        // Processing A||B||C equals shift2B(crc(A)) ^ shiftB(crc(B)) ^ crc(C)
        // because the byte step is affine over GF(2).
        state = u64::from(shift_block(shift_block(leg0 as u32)) ^ shift_block(leg1 as u32)) ^ leg2;
        rest = &rest[3 * BLOCK..];
    }

    // Single-stream word loop for the mid-size tail.
    let mut words = rest.chunks_exact(8);
    for word in &mut words {
        // audit: allow(panic, chunks_exact(8) yields exactly 8-byte chunks)
        let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        state = _mm_crc32_u64(state, w);
    }
    let mut crc32 = state as u32;
    for &byte in words.remainder() {
        crc32 = _mm_crc32_u8(crc32, byte);
    }
    !crc32
}

/// Hardware CRC32C over `data`, extending `crc` — aarch64 CRC-extension
/// path (single stream: the `crc32cd` chain already saturates small cores,
/// and correctness, not peak, is what CI's arm runners need).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "crc")]
fn crc32c_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::aarch64::{__crc32cb, __crc32cd};

    let mut state = !crc;
    let mut words = data.chunks_exact(8);
    for word in &mut words {
        // audit: allow(panic, chunks_exact(8) yields exactly 8-byte chunks)
        let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        state = __crc32cd(state, w);
    }
    for &byte in words.remainder() {
        state = __crc32cb(state, byte);
    }
    !state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::{crc32c_append_bytewise, crc32c_append_slicing8};

    /// The const shift tables must agree with literally advancing the raw
    /// state one zero byte at a time.
    #[test]
    fn shift_block_matches_byte_at_a_time_zero_advance() {
        for seed in [0u32, 1, 0xdead_beef, 0xffff_ffff, 0x1234_5678] {
            let mut slow = seed;
            for _ in 0..BLOCK {
                slow = (slow >> 8) ^ TABLE[(slow & 0xff) as usize];
            }
            assert_eq!(shift_block(seed), slow, "seed {seed:#x}");
        }
    }

    /// The shift operator is linear: shift(a ^ b) == shift(a) ^ shift(b).
    #[test]
    fn shift_block_is_linear() {
        let (a, b) = (0x0bad_f00du32, 0xcafe_babeu32);
        assert_eq!(shift_block(a ^ b), shift_block(a) ^ shift_block(b));
        assert_eq!(shift_block(0), 0);
    }

    #[test]
    fn hw_crc_matches_oracles_when_available() {
        let Some(hw) = crc32c_fn() else {
            eprintln!("skipping: no hardware CRC32C on this host");
            return;
        };
        // Deterministic xorshift stream, lengths crossing every regime:
        // sub-word, word, one/two/three blocks, 3-way threshold, and beyond.
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let buf: Vec<u8> = (0..4 * 3 * BLOCK + 61)
            .map(|_| (next() >> 24) as u8)
            .collect();
        for len in [
            0usize,
            1,
            7,
            8,
            9,
            63,
            BLOCK - 1,
            BLOCK,
            3 * BLOCK - 1,
            3 * BLOCK,
            3 * BLOCK + 1,
            6 * BLOCK + 13,
            buf.len(),
        ] {
            for start in [0usize, 1, 3, 5] {
                if start + len > buf.len() {
                    continue;
                }
                let slice = &buf[start..start + len];
                let seed = (next() & 0xffff_ffff) as u32;
                let expect = crc32c_append_bytewise(seed, slice);
                assert_eq!(hw(seed, slice), expect, "len {len} start {start}");
                assert_eq!(crc32c_append_slicing8(seed, slice), expect);
            }
        }
    }

    #[test]
    fn hw_crc_streaming_split_points_agree() {
        let Some(hw) = crc32c_fn() else {
            return;
        };
        let data: Vec<u8> = (0..3 * 3 * BLOCK).map(|i| (i * 131 % 251) as u8).collect();
        let oneshot = hw(0, &data);
        for split in [1usize, 8, 100, BLOCK, 3 * BLOCK + 7, data.len() - 1] {
            let partial = hw(0, &data[..split]);
            assert_eq!(hw(partial, &data[split..]), oneshot, "split {split}");
        }
    }
}
