//! An append-only framed container: length-prefixed frames with CRC32C
//! record checksums.
//!
//! The profile-history store (`hsdp-profiling::history`) accumulates one
//! snapshot per commit in a single binary file. Each snapshot payload is a
//! protowire message ([`crate::protowire`]); this module supplies the
//! *container* around those payloads, built so that truncation and
//! corruption are **detected, not silently read**:
//!
//! ```text
//! file   := magic(4) version(1) frames*
//! frame  := payload_len(u32 LE) payload_crc32c(u32 LE) payload
//! ```
//!
//! - A frame's checksum covers its payload bytes; the length prefix is
//!   implicitly covered because a corrupted length either lands the reader
//!   on a checksum mismatch or runs off the end of the file (truncation).
//! - [`scan`] walks the file and reports the *valid prefix*: every intact
//!   frame before the first truncated or corrupt one, plus the byte offset
//!   where that prefix ends. Appenders use the offset to recover from a
//!   torn tail (truncate-then-append); strict readers ([`read_all`]) treat
//!   any damage as an error.
//! - Frame payloads are capped at [`MAX_FRAME_LEN`] so a corrupted length
//!   prefix cannot drive a multi-gigabyte allocation.

use crate::crc::crc32c;

/// File magic: "HSPH" (HSdp Profile History).
pub const MAGIC: [u8; 4] = *b"HSPH";
/// Container format version.
pub const VERSION: u8 = 1;
/// File header length: magic + version byte.
pub const HEADER_LEN: usize = MAGIC.len() + 1;
/// Per-frame prefix length: payload length (4) + payload CRC32C (4).
pub const FRAME_PREFIX_LEN: usize = 8;
/// Maximum accepted payload length (16 MiB) — far above any real snapshot,
/// low enough that a corrupt length prefix cannot provoke a huge read.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Errors from the framed container codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FramedError {
    /// The file is shorter than the header or carries the wrong magic.
    BadHeader,
    /// The container version is not supported by this reader.
    UnsupportedVersion {
        /// The version byte found in the header.
        version: u8,
    },
    /// A frame's declared length runs past the end of the buffer.
    Truncated {
        /// Index of the damaged frame (0-based).
        frame: usize,
        /// Byte offset where the last valid prefix ends.
        valid_len: usize,
    },
    /// A frame's payload failed its CRC32C check.
    Corrupt {
        /// Index of the damaged frame (0-based).
        frame: usize,
        /// Byte offset where the last valid prefix ends.
        valid_len: usize,
    },
    /// A frame's declared length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Index of the damaged frame (0-based).
        frame: usize,
        /// The declared payload length.
        declared: usize,
    },
}

impl std::fmt::Display for FramedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramedError::BadHeader => write!(f, "missing or invalid container header"),
            FramedError::UnsupportedVersion { version } => {
                write!(f, "unsupported container version {version}")
            }
            FramedError::Truncated { frame, valid_len } => {
                write!(
                    f,
                    "frame {frame} truncated (valid prefix: {valid_len} bytes)"
                )
            }
            FramedError::Corrupt { frame, valid_len } => write!(
                f,
                "frame {frame} failed its CRC32C check (valid prefix: {valid_len} bytes)"
            ),
            FramedError::Oversized { frame, declared } => write!(
                f,
                "frame {frame} declares {declared} bytes (max {MAX_FRAME_LEN})"
            ),
        }
    }
}

impl std::error::Error for FramedError {}

/// Writes the container header onto `out` (an empty store).
pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
}

/// Appends one frame (`payload` with its length prefix and CRC32C) to `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN, "oversized frame payload");
    out.reserve(FRAME_PREFIX_LEN + payload.len());
    // audit: allow(cast, payload length is bounded by MAX_FRAME_LEN which fits u32)
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The outcome of a tolerant container walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan<'a> {
    /// Every intact frame payload, in file order.
    pub frames: Vec<&'a [u8]>,
    /// Byte length of the valid prefix (header + intact frames). Appending
    /// at this offset after truncating discards a torn tail cleanly.
    pub valid_len: usize,
    /// What stopped the walk, if anything (`None` = the whole file is
    /// intact).
    pub damage: Option<FramedError>,
}

/// Converts a length-prefix sub-slice into the fixed array `from_le_bytes`
/// wants. Callers have already bounds-checked the slice.
fn arr<const N: usize>(bytes: &[u8]) -> [u8; N] {
    // audit: allow(panic, callers have already bounds-checked the slice length)
    bytes.try_into().expect("length checked by caller")
}

/// Walks the container, collecting every intact frame and reporting the
/// first damage without failing.
///
/// # Errors
///
/// Returns an error only when the *header* is unreadable (wrong magic or
/// unsupported version) — there is no valid prefix to recover in that case.
/// Frame-level damage is reported via [`Scan::damage`] instead.
pub fn scan(bytes: &[u8]) -> Result<Scan<'_>, FramedError> {
    if bytes.len() < HEADER_LEN || bytes[..MAGIC.len()] != MAGIC {
        return Err(FramedError::BadHeader);
    }
    let version = bytes[MAGIC.len()];
    if version != VERSION {
        return Err(FramedError::UnsupportedVersion { version });
    }
    let mut frames = Vec::new();
    let mut pos = HEADER_LEN;
    let mut index = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_PREFIX_LEN {
            return Ok(Scan {
                frames,
                valid_len: pos,
                damage: Some(FramedError::Truncated {
                    frame: index,
                    valid_len: pos,
                }),
            });
        }
        let declared = u32::from_le_bytes(arr(&bytes[pos..pos + 4])) as usize;
        if declared > MAX_FRAME_LEN {
            return Ok(Scan {
                frames,
                valid_len: pos,
                damage: Some(FramedError::Oversized {
                    frame: index,
                    declared,
                }),
            });
        }
        let expected_crc = u32::from_le_bytes(arr(&bytes[pos + 4..pos + 8]));
        let payload_start = pos + FRAME_PREFIX_LEN;
        let Some(payload) = bytes.get(payload_start..payload_start + declared) else {
            return Ok(Scan {
                frames,
                valid_len: pos,
                damage: Some(FramedError::Truncated {
                    frame: index,
                    valid_len: pos,
                }),
            });
        };
        if crc32c(payload) != expected_crc {
            return Ok(Scan {
                frames,
                valid_len: pos,
                damage: Some(FramedError::Corrupt {
                    frame: index,
                    valid_len: pos,
                }),
            });
        }
        frames.push(payload);
        pos = payload_start + declared;
        index += 1;
    }
    Ok(Scan {
        frames,
        valid_len: pos,
        damage: None,
    })
}

/// Strict read: every frame must be intact.
///
/// # Errors
///
/// Propagates header errors and promotes any [`Scan::damage`] to an error —
/// a store with a torn tail does not read at all under this entry point.
pub fn read_all(bytes: &[u8]) -> Result<Vec<&[u8]>, FramedError> {
    let scan = scan(bytes)?;
    match scan.damage {
        Some(damage) => Err(damage),
        None => Ok(scan.frames),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        write_header(&mut out);
        for p in payloads {
            append_frame(&mut out, p);
        }
        out
    }

    #[test]
    fn roundtrip_preserves_frames() {
        let payloads: Vec<Vec<u8>> = vec![b"alpha".to_vec(), Vec::new(), vec![0xAB; 300]];
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let bytes = store_with(&refs);
        let frames = read_all(&bytes).expect("intact store reads");
        assert_eq!(frames, refs);
        let scan = scan(&bytes).expect("header ok");
        assert_eq!(scan.valid_len, bytes.len());
        assert!(scan.damage.is_none());
    }

    #[test]
    fn empty_store_is_valid() {
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        assert!(read_all(&bytes).expect("empty store reads").is_empty());
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(read_all(b""), Err(FramedError::BadHeader));
        assert_eq!(read_all(b"NOPE\x01"), Err(FramedError::BadHeader));
        let mut wrong_version = Vec::new();
        write_header(&mut wrong_version);
        wrong_version[MAGIC.len()] = 9;
        assert_eq!(
            read_all(&wrong_version),
            Err(FramedError::UnsupportedVersion { version: 9 })
        );
    }

    #[test]
    fn truncation_reports_valid_prefix() {
        let bytes = store_with(&[b"first", b"second"]);
        // Cut into the middle of the second frame's payload.
        let first_end = HEADER_LEN + FRAME_PREFIX_LEN + 5;
        let cut = &bytes[..first_end + FRAME_PREFIX_LEN + 2];
        assert!(read_all(cut).is_err(), "strict read fails on a torn tail");
        let scan = scan(cut).expect("header ok");
        assert_eq!(scan.frames, vec![b"first".as_slice()]);
        assert_eq!(
            scan.valid_len, first_end,
            "valid prefix ends before the torn frame"
        );
        assert!(matches!(
            scan.damage,
            Some(FramedError::Truncated { frame: 1, .. })
        ));
        // Recovery: truncate to valid_len and append cleanly.
        let mut recovered = cut[..scan.valid_len].to_vec();
        append_frame(&mut recovered, b"third");
        let frames = read_all(&recovered).expect("recovered store is intact");
        assert_eq!(frames, vec![b"first".as_slice(), b"third".as_slice()]);
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = store_with(&[b"payload-one", b"payload-two"]);
        for cut in HEADER_LEN..bytes.len() {
            let scan = scan(&bytes[..cut]).expect("header ok");
            let whole = scan.damage.is_none();
            // A prefix is only damage-free when it ends exactly on a frame
            // boundary.
            let boundary_one = HEADER_LEN + FRAME_PREFIX_LEN + 11;
            assert_eq!(
                whole,
                cut == HEADER_LEN || cut == boundary_one,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let bytes = store_with(&[b"sensitive-record"]);
        for i in HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            let outcome = read_all(&bad);
            assert!(
                outcome.is_err(),
                "flip at byte {i} must not read silently: {outcome:?}"
            );
        }
    }

    #[test]
    fn corrupt_middle_frame_keeps_earlier_frames() {
        let bytes = store_with(&[b"keep-me", b"break-me", b"after"]);
        let mut bad = bytes.clone();
        // Flip one payload byte of the middle frame.
        let second_payload = HEADER_LEN + FRAME_PREFIX_LEN + 7 + FRAME_PREFIX_LEN;
        bad[second_payload] ^= 0xFF;
        let scan = scan(&bad).expect("header ok");
        assert_eq!(scan.frames, vec![b"keep-me".as_slice()]);
        assert!(matches!(
            scan.damage,
            Some(FramedError::Corrupt { frame: 1, .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        // audit: allow(cast, test constant fits u32)
        bytes.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let scan = scan(&bytes).expect("header ok");
        assert!(scan.frames.is_empty());
        assert!(matches!(
            scan.damage,
            Some(FramedError::Oversized { frame: 0, .. })
        ));
    }
}
