//! A from-scratch protobuf wire-format codec with dynamic messages.
//!
//! Protobuf (de)serialization is the single largest datacenter tax the paper
//! identifies (Figure 5, 20–25% of tax cycles). This module implements the
//! protobuf wire format — varint/zigzag scalars, fixed-width scalars,
//! length-delimited strings/bytes/submessages, tag encoding, unknown-field
//! skipping — over *dynamic* messages described by runtime
//! [`MessageDescriptor`]s, in the spirit of HyperProtoBench's
//! fleet-representative message shapes.
//!
//! # Examples
//!
//! ```
//! use hsdp_taxes::protowire::{FieldDescriptor, FieldType, Message, MessageDescriptor, Value};
//! use std::sync::Arc;
//!
//! let desc = Arc::new(MessageDescriptor::new(
//!     "KeyValue",
//!     vec![
//!         FieldDescriptor::required(1, "key", FieldType::String),
//!         FieldDescriptor::optional(2, "value", FieldType::Bytes),
//!     ],
//! )?);
//! let mut msg = Message::new(Arc::clone(&desc));
//! msg.set(1, Value::Str("user:42".into()))?;
//! msg.set(2, Value::Bytes(vec![1, 2, 3]))?;
//!
//! let bytes = msg.encode_to_vec();
//! let decoded = Message::decode(Arc::clone(&desc), &bytes)?;
//! assert_eq!(msg, decoded);
//! # Ok::<(), hsdp_taxes::error::WireError>(())
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::WireError;
use crate::varint::{decode_varint, encode_varint, varint_len, zigzag_decode, zigzag_encode};

/// Maximum protobuf field number.
pub const MAX_FIELD_NUMBER: u64 = (1 << 29) - 1;

/// Maximum message nesting depth accepted by the decoder.
pub const RECURSION_LIMIT: usize = 64;

/// Protobuf wire types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireType {
    /// Base-128 varint.
    Varint,
    /// Little-endian 64-bit scalar.
    Fixed64,
    /// Length-prefixed bytes (strings, bytes, submessages).
    LengthDelimited,
    /// Little-endian 32-bit scalar.
    Fixed32,
}

impl WireType {
    /// The on-wire discriminant.
    #[must_use]
    pub fn discriminant(self) -> u8 {
        match self {
            WireType::Varint => 0,
            WireType::Fixed64 => 1,
            WireType::LengthDelimited => 2,
            WireType::Fixed32 => 5,
        }
    }

    /// Parses a discriminant.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnknownWireType`] for deprecated group types and
    /// reserved values.
    pub fn from_discriminant(bits: u8) -> Result<Self, WireError> {
        match bits {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            5 => Ok(WireType::Fixed32),
            other => Err(WireError::UnknownWireType { wire_type: other }),
        }
    }
}

/// Encodes a field tag (field number + wire type).
pub fn encode_tag(field: u32, wire_type: WireType, out: &mut Vec<u8>) {
    encode_varint(
        (u64::from(field) << 3) | u64::from(wire_type.discriminant()),
        out,
    );
}

/// Decodes a field tag, returning `(field, wire type, bytes consumed)`.
///
/// # Errors
///
/// Propagates varint errors; rejects field number 0 and numbers above the
/// protobuf maximum.
pub fn decode_tag(buf: &[u8]) -> Result<(u32, WireType, usize), WireError> {
    let (raw, consumed) = decode_varint(buf)?;
    let field = raw >> 3;
    if field == 0 || field > MAX_FIELD_NUMBER {
        return Err(WireError::InvalidFieldNumber { field });
    }
    let wire_type = WireType::from_discriminant((raw & 0x7) as u8)?;
    Ok((field as u32, wire_type, consumed))
}

/// Field value types understood by the codec.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldType {
    /// Unsigned varint (`uint64`/`uint32`).
    Uint64,
    /// Two's-complement varint (`int64`/`int32`).
    Int64,
    /// ZigZag varint (`sint64`/`sint32`).
    Sint64,
    /// Varint-encoded boolean.
    Bool,
    /// 64-bit little-endian unsigned (`fixed64`).
    Fixed64,
    /// IEEE-754 double.
    Double,
    /// 32-bit little-endian unsigned (`fixed32`).
    Fixed32,
    /// IEEE-754 float.
    Float,
    /// UTF-8 string.
    String,
    /// Raw bytes.
    Bytes,
    /// A nested message with the given descriptor.
    Message(Arc<MessageDescriptor>),
}

impl FieldType {
    /// The wire type values of this field type use.
    #[must_use]
    pub fn wire_type(&self) -> WireType {
        match self {
            FieldType::Uint64 | FieldType::Int64 | FieldType::Sint64 | FieldType::Bool => {
                WireType::Varint
            }
            FieldType::Fixed64 | FieldType::Double => WireType::Fixed64,
            FieldType::Fixed32 | FieldType::Float => WireType::Fixed32,
            FieldType::String | FieldType::Bytes | FieldType::Message(_) => {
                WireType::LengthDelimited
            }
        }
    }

    /// Human-readable type name (for errors).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FieldType::Uint64 => "uint64",
            FieldType::Int64 => "int64",
            FieldType::Sint64 => "sint64",
            FieldType::Bool => "bool",
            FieldType::Fixed64 => "fixed64",
            FieldType::Double => "double",
            FieldType::Fixed32 => "fixed32",
            FieldType::Float => "float",
            FieldType::String => "string",
            FieldType::Bytes => "bytes",
            FieldType::Message(_) => "message",
        }
    }
}

/// A field in a message schema.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDescriptor {
    /// Field number (1..=2^29-1).
    pub number: u32,
    /// Field name.
    pub name: String,
    /// Value type.
    pub ty: FieldType,
    /// Whether multiple values are allowed.
    pub repeated: bool,
    /// Whether the field must be present after decode.
    pub required: bool,
}

impl FieldDescriptor {
    /// An optional singular field.
    #[must_use]
    pub fn optional(number: u32, name: &str, ty: FieldType) -> Self {
        FieldDescriptor {
            number,
            name: name.to_owned(),
            ty,
            repeated: false,
            required: false,
        }
    }

    /// A required singular field.
    #[must_use]
    pub fn required(number: u32, name: &str, ty: FieldType) -> Self {
        FieldDescriptor {
            number,
            name: name.to_owned(),
            ty,
            repeated: false,
            required: true,
        }
    }

    /// A repeated field.
    #[must_use]
    pub fn repeated(number: u32, name: &str, ty: FieldType) -> Self {
        FieldDescriptor {
            number,
            name: name.to_owned(),
            ty,
            repeated: true,
            required: false,
        }
    }
}

/// A message schema: an ordered set of field descriptors.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageDescriptor {
    name: String,
    fields: Vec<FieldDescriptor>,
    by_number: BTreeMap<u32, usize>,
}

impl MessageDescriptor {
    /// Builds a descriptor, validating field numbers.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidFieldNumber`] for zero/out-of-range or
    /// duplicate field numbers.
    pub fn new(name: &str, fields: Vec<FieldDescriptor>) -> Result<Self, WireError> {
        let mut by_number = BTreeMap::new();
        for (idx, field) in fields.iter().enumerate() {
            if field.number == 0 || u64::from(field.number) > MAX_FIELD_NUMBER {
                return Err(WireError::InvalidFieldNumber {
                    field: u64::from(field.number),
                });
            }
            if by_number.insert(field.number, idx).is_some() {
                return Err(WireError::InvalidFieldNumber {
                    field: u64::from(field.number),
                });
            }
        }
        Ok(MessageDescriptor {
            name: name.to_owned(),
            fields,
            by_number,
        })
    }

    /// The message name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields, in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[FieldDescriptor] {
        &self.fields
    }

    /// Looks up a field by number.
    #[must_use]
    pub fn field(&self, number: u32) -> Option<&FieldDescriptor> {
        self.by_number.get(&number).map(|&idx| &self.fields[idx])
    }
}

/// A dynamic field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `uint64`.
    Uint64(u64),
    /// `int64`.
    Int64(i64),
    /// `sint64` (zigzag).
    Sint64(i64),
    /// `bool`.
    Bool(bool),
    /// `fixed64`.
    Fixed64(u64),
    /// `double`.
    Double(f64),
    /// `fixed32`.
    Fixed32(u32),
    /// `float`.
    Float(f32),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Nested message.
    Message(Message),
}

impl Value {
    fn matches(&self, ty: &FieldType) -> bool {
        matches!(
            (self, ty),
            (Value::Uint64(_), FieldType::Uint64)
                | (Value::Int64(_), FieldType::Int64)
                | (Value::Sint64(_), FieldType::Sint64)
                | (Value::Bool(_), FieldType::Bool)
                | (Value::Fixed64(_), FieldType::Fixed64)
                | (Value::Double(_), FieldType::Double)
                | (Value::Fixed32(_), FieldType::Fixed32)
                | (Value::Float(_), FieldType::Float)
                | (Value::Str(_), FieldType::String)
                | (Value::Bytes(_), FieldType::Bytes)
                | (Value::Message(_), FieldType::Message(_))
        )
    }
}

/// A dynamic protobuf message: a descriptor plus field values.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    descriptor: Arc<MessageDescriptor>,
    values: BTreeMap<u32, Vec<Value>>,
}

impl Message {
    /// An empty message of the given schema.
    #[must_use]
    pub fn new(descriptor: Arc<MessageDescriptor>) -> Self {
        Message {
            descriptor,
            values: BTreeMap::new(),
        }
    }

    /// The message's descriptor.
    #[must_use]
    pub fn descriptor(&self) -> &Arc<MessageDescriptor> {
        &self.descriptor
    }

    /// Sets a singular field (replacing any existing value).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidFieldNumber`] for fields not in the schema
    /// and [`WireError::TypeMismatch`] for wrongly-typed values.
    pub fn set(&mut self, number: u32, value: Value) -> Result<(), WireError> {
        let field = self.check(number, &value)?;
        let _ = field;
        self.values.insert(number, vec![value]);
        Ok(())
    }

    /// Appends a value to a repeated field.
    ///
    /// # Errors
    ///
    /// Same as [`Message::set`].
    pub fn push(&mut self, number: u32, value: Value) -> Result<(), WireError> {
        self.check(number, &value)?;
        self.values.entry(number).or_default().push(value);
        Ok(())
    }

    fn check(&self, number: u32, value: &Value) -> Result<&FieldDescriptor, WireError> {
        let field = self
            .descriptor
            .field(number)
            .ok_or(WireError::InvalidFieldNumber {
                field: u64::from(number),
            })?;
        if !value.matches(&field.ty) {
            return Err(WireError::TypeMismatch {
                field: number,
                expected: field.ty.name(),
            });
        }
        Ok(field)
    }

    /// The first value of a field, if present.
    #[must_use]
    pub fn get(&self, number: u32) -> Option<&Value> {
        self.values.get(&number).and_then(|v| v.first())
    }

    /// All values of a field (empty slice if unset).
    #[must_use]
    pub fn get_all(&self, number: u32) -> &[Value] {
        self.values.get(&number).map_or(&[], Vec::as_slice)
    }

    /// Number of set fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no field is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The exact encoded size in bytes, without encoding.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        let mut len = 0;
        for (&number, values) in &self.values {
            for value in values {
                len += tag_len(number) + value_len(value);
            }
        }
        len
    }

    /// Serializes the message to the wire format, appending to `out`.
    ///
    /// Reserves the exact [`Message::encoded_len`] up front, so the whole
    /// message — nested submessages included — is written through a single
    /// pre-sized buffer with no intermediate reallocation.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        self.encode_raw(out);
    }

    /// The recursive encoding body. Capacity is reserved once at the top
    /// (by [`Message::encode`] / [`Message::encode_to_vec`]); nested
    /// messages append directly without re-walking their sizes for a
    /// redundant reserve.
    fn encode_raw(&self, out: &mut Vec<u8>) {
        for (&number, values) in &self.values {
            for value in values {
                encode_value(number, value, out);
            }
        }
    }

    /// Serializes to a fresh buffer of exactly [`Message::encoded_len`]
    /// bytes — after encoding, `capacity == len` (no reallocation, no slack).
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_raw(&mut out);
        out
    }

    /// Parses a message of the given schema from `buf`.
    ///
    /// Unknown fields are skipped per their wire type, as protobuf requires.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input, type conflicts with the
    /// schema, missing required fields, or nesting beyond
    /// [`RECURSION_LIMIT`].
    pub fn decode(descriptor: Arc<MessageDescriptor>, buf: &[u8]) -> Result<Self, WireError> {
        Self::decode_at_depth(descriptor, buf, 0)
    }

    fn decode_at_depth(
        descriptor: Arc<MessageDescriptor>,
        buf: &[u8],
        depth: usize,
    ) -> Result<Self, WireError> {
        if depth > RECURSION_LIMIT {
            return Err(WireError::RecursionLimit);
        }
        let mut message = Message::new(Arc::clone(&descriptor));
        let mut pos = 0;
        while pos < buf.len() {
            let (number, wire_type, n) = decode_tag(&buf[pos..])?;
            pos += n;
            match descriptor.field(number) {
                Some(field) if field.ty.wire_type() == wire_type => {
                    let (value, n) = decode_value(&field.ty, number, &buf[pos..], depth)?;
                    pos += n;
                    message.values.entry(number).or_default().push(value);
                }
                // Unknown field, or known field arriving with an unexpected
                // wire type: skip it per the wire rules.
                _ => pos += skip_len(wire_type, number, &buf[pos..])?,
            }
        }
        for field in descriptor.fields() {
            if field.required && !message.values.contains_key(&field.number) {
                return Err(WireError::MissingField {
                    field: field.number,
                });
            }
        }
        Ok(message)
    }
}

fn tag_len(number: u32) -> usize {
    varint_len(u64::from(number) << 3)
}

fn value_len(value: &Value) -> usize {
    match value {
        Value::Uint64(v) => varint_len(*v),
        Value::Int64(v) => varint_len(*v as u64),
        Value::Sint64(v) => varint_len(zigzag_encode(*v)),
        Value::Bool(_) => 1,
        Value::Fixed64(_) | Value::Double(_) => 8,
        Value::Fixed32(_) | Value::Float(_) => 4,
        Value::Str(s) => varint_len(s.len() as u64) + s.len(),
        Value::Bytes(b) => varint_len(b.len() as u64) + b.len(),
        Value::Message(m) => {
            let inner = m.encoded_len();
            varint_len(inner as u64) + inner
        }
    }
}

fn encode_value(number: u32, value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Uint64(v) => {
            encode_tag(number, WireType::Varint, out);
            encode_varint(*v, out);
        }
        Value::Int64(v) => {
            encode_tag(number, WireType::Varint, out);
            encode_varint(*v as u64, out);
        }
        Value::Sint64(v) => {
            encode_tag(number, WireType::Varint, out);
            encode_varint(zigzag_encode(*v), out);
        }
        Value::Bool(v) => {
            encode_tag(number, WireType::Varint, out);
            out.push(u8::from(*v));
        }
        Value::Fixed64(v) => {
            encode_tag(number, WireType::Fixed64, out);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Double(v) => {
            encode_tag(number, WireType::Fixed64, out);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Fixed32(v) => {
            encode_tag(number, WireType::Fixed32, out);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            encode_tag(number, WireType::Fixed32, out);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Str(s) => {
            encode_tag(number, WireType::LengthDelimited, out);
            encode_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            encode_tag(number, WireType::LengthDelimited, out);
            encode_varint(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::Message(m) => {
            encode_tag(number, WireType::LengthDelimited, out);
            encode_varint(m.encoded_len() as u64, out);
            m.encode_raw(out);
        }
    }
}

/// Converts a slice whose length [`take`] has already verified into the
/// fixed-size array the `from_le_bytes` constructors want.
fn arr<const N: usize>(bytes: &[u8]) -> [u8; N] {
    // audit: allow(panic, take() has already verified the slice is exactly N bytes)
    bytes.try_into().expect("length checked by take()")
}

fn decode_value(
    ty: &FieldType,
    number: u32,
    buf: &[u8],
    depth: usize,
) -> Result<(Value, usize), WireError> {
    match ty {
        FieldType::Uint64 => {
            let (v, n) = decode_varint(buf)?;
            Ok((Value::Uint64(v), n))
        }
        FieldType::Int64 => {
            let (v, n) = decode_varint(buf)?;
            Ok((Value::Int64(v as i64), n))
        }
        FieldType::Sint64 => {
            let (v, n) = decode_varint(buf)?;
            Ok((Value::Sint64(zigzag_decode(v)), n))
        }
        FieldType::Bool => {
            let (v, n) = decode_varint(buf)?;
            Ok((Value::Bool(v != 0), n))
        }
        FieldType::Fixed64 => {
            let bytes = take(buf, 8, number)?;
            Ok((Value::Fixed64(u64::from_le_bytes(arr(bytes))), 8))
        }
        FieldType::Double => {
            let bytes = take(buf, 8, number)?;
            Ok((Value::Double(f64::from_le_bytes(arr(bytes))), 8))
        }
        FieldType::Fixed32 => {
            let bytes = take(buf, 4, number)?;
            Ok((Value::Fixed32(u32::from_le_bytes(arr(bytes))), 4))
        }
        FieldType::Float => {
            let bytes = take(buf, 4, number)?;
            Ok((Value::Float(f32::from_le_bytes(arr(bytes))), 4))
        }
        FieldType::String => {
            let (payload, n) = take_length_delimited(buf, number)?;
            let s = std::str::from_utf8(payload)
                .map_err(|_| WireError::InvalidUtf8 { field: number })?;
            Ok((Value::Str(s.to_owned()), n))
        }
        FieldType::Bytes => {
            let (payload, n) = take_length_delimited(buf, number)?;
            Ok((Value::Bytes(payload.to_vec()), n))
        }
        FieldType::Message(desc) => {
            let (payload, n) = take_length_delimited(buf, number)?;
            let inner = Message::decode_at_depth(Arc::clone(desc), payload, depth + 1)?;
            Ok((Value::Message(inner), n))
        }
    }
}

fn take(buf: &[u8], len: usize, field: u32) -> Result<&[u8], WireError> {
    buf.get(..len).ok_or(WireError::TruncatedField { field })
}

fn take_length_delimited(buf: &[u8], field: u32) -> Result<(&[u8], usize), WireError> {
    let (len, n) = decode_varint(buf)?;
    let len = usize::try_from(len).map_err(|_| WireError::TruncatedField { field })?;
    let payload = buf
        .get(n..n + len)
        .ok_or(WireError::TruncatedField { field })?;
    Ok((payload, n + len))
}

/// The number of bytes a field of `wire_type` occupies at the front of `buf`
/// (used to skip unknown fields).
fn skip_len(wire_type: WireType, field: u32, buf: &[u8]) -> Result<usize, WireError> {
    match wire_type {
        WireType::Varint => decode_varint(buf).map(|(_, n)| n),
        WireType::Fixed64 => take(buf, 8, field).map(|_| 8),
        WireType::Fixed32 => take(buf, 4, field).map(|_| 4),
        WireType::LengthDelimited => take_length_delimited(buf, field).map(|(_, n)| n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_desc() -> Arc<MessageDescriptor> {
        Arc::new(
            MessageDescriptor::new(
                "Simple",
                vec![
                    FieldDescriptor::optional(1, "id", FieldType::Uint64),
                    FieldDescriptor::optional(2, "name", FieldType::String),
                    FieldDescriptor::optional(3, "score", FieldType::Double),
                    FieldDescriptor::repeated(4, "tags", FieldType::Sint64),
                    FieldDescriptor::optional(5, "active", FieldType::Bool),
                    FieldDescriptor::optional(6, "blob", FieldType::Bytes),
                    FieldDescriptor::optional(7, "ts32", FieldType::Fixed32),
                    FieldDescriptor::optional(8, "ts64", FieldType::Fixed64),
                    FieldDescriptor::optional(9, "ratio", FieldType::Float),
                    FieldDescriptor::optional(10, "delta", FieldType::Int64),
                ],
            )
            .unwrap(),
        )
    }

    fn filled_simple() -> Message {
        let mut m = Message::new(simple_desc());
        m.set(1, Value::Uint64(42)).unwrap();
        m.set(2, Value::Str("hello".into())).unwrap();
        m.set(3, Value::Double(2.5)).unwrap();
        m.push(4, Value::Sint64(-7)).unwrap();
        m.push(4, Value::Sint64(900)).unwrap();
        m.set(5, Value::Bool(true)).unwrap();
        m.set(6, Value::Bytes(vec![0, 255, 128])).unwrap();
        m.set(7, Value::Fixed32(0xdead_beef)).unwrap();
        m.set(8, Value::Fixed64(0x0123_4567_89ab_cdef)).unwrap();
        m.set(9, Value::Float(-1.5)).unwrap();
        m.set(10, Value::Int64(-3)).unwrap();
        m
    }

    #[test]
    fn scalar_roundtrip() {
        let m = filled_simple();
        let bytes = m.encode_to_vec();
        assert_eq!(bytes.len(), m.encoded_len());
        let decoded = Message::decode(simple_desc(), &bytes).unwrap();
        assert_eq!(m, decoded);
    }

    #[test]
    fn encode_to_vec_allocates_exactly_once() {
        // The buffer must be sized by encoded_len() up front: after encoding,
        // capacity equals length — proof that no growth reallocation (which
        // would over-allocate) ever happened, including for nested messages.
        let inner = filled_simple();
        let outer_desc = Arc::new(
            MessageDescriptor::new(
                "Outer",
                vec![
                    FieldDescriptor::optional(1, "a", FieldType::Message(simple_desc())),
                    FieldDescriptor::repeated(2, "b", FieldType::Message(simple_desc())),
                ],
            )
            .unwrap(),
        );
        let mut outer = Message::new(outer_desc);
        outer.set(1, Value::Message(inner.clone())).unwrap();
        for _ in 0..5 {
            outer.push(2, Value::Message(inner.clone())).unwrap();
        }
        for msg in [&inner, &outer] {
            let bytes = msg.encode_to_vec();
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(
                bytes.capacity(),
                bytes.len(),
                "encode_to_vec must allocate exactly encoded_len() bytes"
            );
        }
        // The appending form reserves the same exact amount on an empty buffer.
        let mut buf = Vec::new();
        outer.encode(&mut buf);
        assert_eq!(buf.capacity(), outer.encoded_len());
    }

    #[test]
    fn known_wire_encoding_field1_varint() {
        // Field 1, varint, value 150 -> 08 96 01 (protobuf docs example).
        let desc = Arc::new(
            MessageDescriptor::new(
                "T",
                vec![FieldDescriptor::optional(1, "a", FieldType::Uint64)],
            )
            .unwrap(),
        );
        let mut m = Message::new(desc);
        m.set(1, Value::Uint64(150)).unwrap();
        assert_eq!(m.encode_to_vec(), vec![0x08, 0x96, 0x01]);
    }

    #[test]
    fn known_wire_encoding_string() {
        // Field 2, string "testing" -> 12 07 74 65 73 74 69 6e 67.
        let desc = Arc::new(
            MessageDescriptor::new(
                "T",
                vec![FieldDescriptor::optional(2, "b", FieldType::String)],
            )
            .unwrap(),
        );
        let mut m = Message::new(desc);
        m.set(2, Value::Str("testing".into())).unwrap();
        assert_eq!(
            m.encode_to_vec(),
            vec![0x12, 0x07, 0x74, 0x65, 0x73, 0x74, 0x69, 0x6e, 0x67]
        );
    }

    #[test]
    fn nested_message_roundtrip() {
        let inner_desc = simple_desc();
        let outer_desc = Arc::new(
            MessageDescriptor::new(
                "Outer",
                vec![
                    FieldDescriptor::required(
                        1,
                        "inner",
                        FieldType::Message(Arc::clone(&inner_desc)),
                    ),
                    FieldDescriptor::repeated(
                        2,
                        "many",
                        FieldType::Message(Arc::clone(&inner_desc)),
                    ),
                ],
            )
            .unwrap(),
        );
        let mut outer = Message::new(Arc::clone(&outer_desc));
        outer.set(1, Value::Message(filled_simple())).unwrap();
        outer.push(2, Value::Message(filled_simple())).unwrap();
        outer
            .push(2, Value::Message(Message::new(simple_desc())))
            .unwrap();
        let bytes = outer.encode_to_vec();
        let decoded = Message::decode(outer_desc, &bytes).unwrap();
        assert_eq!(outer, decoded);
        assert_eq!(decoded.get_all(2).len(), 2);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        // Encode with the full schema, decode with a narrower one.
        let m = filled_simple();
        let bytes = m.encode_to_vec();
        let narrow = Arc::new(
            MessageDescriptor::new(
                "Narrow",
                vec![FieldDescriptor::optional(2, "name", FieldType::String)],
            )
            .unwrap(),
        );
        let decoded = Message::decode(narrow, &bytes).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded.get(2), Some(&Value::Str("hello".into())));
    }

    #[test]
    fn missing_required_field_fails() {
        let desc = Arc::new(
            MessageDescriptor::new(
                "R",
                vec![FieldDescriptor::required(1, "must", FieldType::Uint64)],
            )
            .unwrap(),
        );
        let err = Message::decode(desc, &[]).unwrap_err();
        assert_eq!(err, WireError::MissingField { field: 1 });
    }

    #[test]
    fn type_mismatch_on_set() {
        let mut m = Message::new(simple_desc());
        let err = m.set(1, Value::Str("oops".into())).unwrap_err();
        assert!(matches!(err, WireError::TypeMismatch { field: 1, .. }));
        let err = m.set(99, Value::Uint64(0)).unwrap_err();
        assert!(matches!(err, WireError::InvalidFieldNumber { field: 99 }));
    }

    #[test]
    fn wire_type_conflict_is_skipped_not_error() {
        // Field 1 encoded as a string but schema says varint: skipped.
        let str_desc = Arc::new(
            MessageDescriptor::new(
                "S",
                vec![FieldDescriptor::optional(1, "s", FieldType::String)],
            )
            .unwrap(),
        );
        let mut m = Message::new(str_desc);
        m.set(1, Value::Str("x".into())).unwrap();
        let bytes = m.encode_to_vec();
        let decoded = Message::decode(simple_desc(), &bytes).unwrap();
        assert!(decoded.get(1).is_none());
    }

    #[test]
    fn truncated_inputs_fail_cleanly() {
        let m = filled_simple();
        let bytes = m.encode_to_vec();
        // Every strict prefix either decodes to fewer fields or errors, but
        // never panics.
        for cut in 0..bytes.len() {
            let _ = Message::decode(simple_desc(), &bytes[..cut]);
        }
        // A length-delimited field whose declared length exceeds the buffer.
        let bad = vec![0x12, 0x0a, b'x'];
        assert!(matches!(
            Message::decode(simple_desc(), &bad).unwrap_err(),
            WireError::TruncatedField { field: 2 }
        ));
    }

    #[test]
    fn invalid_utf8_string_fails() {
        let bad = vec![0x12, 0x02, 0xff, 0xfe];
        assert_eq!(
            Message::decode(simple_desc(), &bad).unwrap_err(),
            WireError::InvalidUtf8 { field: 2 }
        );
    }

    #[test]
    fn recursion_limit_enforced() {
        // Build a self-nesting descriptor chain deeper than the limit.
        let leaf = Arc::new(
            MessageDescriptor::new(
                "Leaf",
                vec![FieldDescriptor::optional(1, "v", FieldType::Uint64)],
            )
            .unwrap(),
        );
        let mut desc = leaf;
        for _ in 0..(RECURSION_LIMIT + 2) {
            desc = Arc::new(
                MessageDescriptor::new(
                    "Nest",
                    vec![FieldDescriptor::optional(
                        1,
                        "inner",
                        FieldType::Message(desc),
                    )],
                )
                .unwrap(),
            );
        }
        // Hand-construct deeply nested bytes: each level is tag 0x0a + len.
        let mut bytes = vec![0x08, 0x01];
        for _ in 0..(RECURSION_LIMIT + 2) {
            let mut outer = vec![0x0a];
            encode_varint(bytes.len() as u64, &mut outer);
            outer.extend_from_slice(&bytes);
            bytes = outer;
        }
        assert_eq!(
            Message::decode(desc, &bytes).unwrap_err(),
            WireError::RecursionLimit
        );
    }

    #[test]
    fn descriptor_rejects_bad_field_numbers() {
        assert!(MessageDescriptor::new(
            "Bad",
            vec![FieldDescriptor::optional(0, "zero", FieldType::Bool)]
        )
        .is_err());
        assert!(MessageDescriptor::new(
            "Dup",
            vec![
                FieldDescriptor::optional(1, "a", FieldType::Bool),
                FieldDescriptor::optional(1, "b", FieldType::Bool),
            ]
        )
        .is_err());
    }

    #[test]
    fn tag_roundtrip() {
        for field in [1u32, 15, 16, 2047, 1 << 20] {
            for wt in [
                WireType::Varint,
                WireType::Fixed64,
                WireType::LengthDelimited,
                WireType::Fixed32,
            ] {
                let mut buf = Vec::new();
                encode_tag(field, wt, &mut buf);
                let (f, w, n) = decode_tag(&buf).unwrap();
                assert_eq!((f, w, n), (field, wt, buf.len()));
            }
        }
        assert!(decode_tag(&[0x00]).is_err(), "field 0 rejected");
        assert!(decode_tag(&[0x03]).is_err(), "group wire type rejected");
    }
}
