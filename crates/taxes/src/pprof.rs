//! A pprof `profile.proto` encoder/decoder over the [`crate::protowire`]
//! primitives.
//!
//! The fleet profiler exports stack-tree profiles in pprof's wire format so
//! standard tooling (`pprof`, speedscope, Perfetto) can open them. This
//! module dogfoods the repo's own protobuf tax kernel as the serializer:
//! tags, varints, and length-delimited submessages all go through
//! [`crate::protowire::encode_tag`] / [`crate::varint::encode_varint`].
//!
//! Only the subset of `profile.proto` the exporter produces is modeled:
//! sample types, samples (packed location ids + values + string labels),
//! single-line locations, functions, the string table, period, and
//! duration. Unknown fields are skipped on decode, as protobuf requires.
//! The bytes are emitted raw (not gzipped); pprof auto-detects that.

use crate::error::WireError;
use crate::protowire::{decode_tag, encode_tag, WireType};
use crate::varint::{decode_varint, encode_varint};

/// `ValueType`: a measurement dimension, both indices into the string table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValueType {
    /// String-table index of the type name (e.g. `"samples"`).
    pub kind: u64,
    /// String-table index of the unit (e.g. `"count"`).
    pub unit: u64,
}

/// `Label`: a string key/value annotation on a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label {
    /// String-table index of the key.
    pub key: u64,
    /// String-table index of the value.
    pub str_value: u64,
}

/// `Sample`: one stack with its measured values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sample {
    /// Location ids, leaf first (pprof convention).
    pub location_ids: Vec<u64>,
    /// One value per entry in `Profile::sample_types`.
    pub values: Vec<i64>,
    /// String labels.
    pub labels: Vec<Label>,
}

/// `Location`: a resolved frame. The exporter emits exactly one line per
/// location, so the function id is stored flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Unique nonzero id.
    pub id: u64,
    /// Id of the function at this location.
    pub function_id: u64,
}

/// `Function`: a named frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Function {
    /// Unique nonzero id.
    pub id: u64,
    /// String-table index of the function name.
    pub name: u64,
}

/// An in-memory pprof profile (the modeled subset of `profile.proto`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// The measurement dimensions of every sample.
    pub sample_types: Vec<ValueType>,
    /// The samples.
    pub samples: Vec<Sample>,
    /// Frame locations.
    pub locations: Vec<Location>,
    /// Frame functions.
    pub functions: Vec<Function>,
    /// The string table; index 0 must be the empty string.
    pub string_table: Vec<String>,
    /// Profile duration in nanoseconds.
    pub duration_nanos: i64,
    /// The period dimension (what one sample costs).
    pub period_type: Option<ValueType>,
    /// Sampling period in `period_type` units.
    pub period: i64,
}

/// Errors from pprof decoding or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PprofError {
    /// The underlying wire format was malformed.
    Wire(WireError),
    /// A referenced id or string-table index does not exist.
    DanglingReference {
        /// What kind of reference dangled.
        what: &'static str,
        /// The offending id or index.
        id: u64,
    },
    /// The string table is empty or does not start with `""`.
    BadStringTable,
    /// A sample's value count does not match `sample_types`.
    ValueArity {
        /// Values found on the sample.
        got: usize,
        /// Dimensions declared by the profile.
        want: usize,
    },
}

impl std::fmt::Display for PprofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PprofError::Wire(e) => write!(f, "pprof wire error: {e}"),
            PprofError::DanglingReference { what, id } => {
                write!(f, "pprof {what} reference {id} does not resolve")
            }
            PprofError::BadStringTable => {
                write!(f, "pprof string table must start with the empty string")
            }
            PprofError::ValueArity { got, want } => {
                write!(f, "sample has {got} values but profile declares {want}")
            }
        }
    }
}

impl std::error::Error for PprofError {}

impl From<WireError> for PprofError {
    fn from(e: WireError) -> Self {
        PprofError::Wire(e)
    }
}

// profile.proto field numbers.
const PROFILE_SAMPLE_TYPE: u32 = 1;
const PROFILE_SAMPLE: u32 = 2;
const PROFILE_LOCATION: u32 = 4;
const PROFILE_FUNCTION: u32 = 5;
const PROFILE_STRING_TABLE: u32 = 6;
const PROFILE_DURATION_NANOS: u32 = 10;
const PROFILE_PERIOD_TYPE: u32 = 11;
const PROFILE_PERIOD: u32 = 12;
const VALUE_TYPE_TYPE: u32 = 1;
const VALUE_TYPE_UNIT: u32 = 2;
const SAMPLE_LOCATION_ID: u32 = 1;
const SAMPLE_VALUE: u32 = 2;
const SAMPLE_LABEL: u32 = 3;
const LABEL_KEY: u32 = 1;
const LABEL_STR: u32 = 2;
const LOCATION_ID: u32 = 1;
const LOCATION_LINE: u32 = 4;
const LINE_FUNCTION_ID: u32 = 1;
const FUNCTION_ID: u32 = 1;
const FUNCTION_NAME: u32 = 2;

fn encode_len_delimited(field: u32, payload: &[u8], out: &mut Vec<u8>) {
    encode_tag(field, WireType::LengthDelimited, out);
    encode_varint(payload.len() as u64, out);
    out.extend_from_slice(payload);
}

fn encode_varint_field(field: u32, value: u64, out: &mut Vec<u8>) {
    if value != 0 {
        encode_tag(field, WireType::Varint, out);
        encode_varint(value, out);
    }
}

fn encode_value_type(vt: ValueType, field: u32, out: &mut Vec<u8>) {
    let mut body = Vec::new();
    encode_varint_field(VALUE_TYPE_TYPE, vt.kind, &mut body);
    encode_varint_field(VALUE_TYPE_UNIT, vt.unit, &mut body);
    encode_len_delimited(field, &body, out);
}

impl Profile {
    /// Encodes the profile into raw (non-gzipped) `profile.proto` bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for &vt in &self.sample_types {
            encode_value_type(vt, PROFILE_SAMPLE_TYPE, &mut out);
        }
        for sample in &self.samples {
            let mut body = Vec::new();
            if !sample.location_ids.is_empty() {
                let mut packed = Vec::new();
                for &id in &sample.location_ids {
                    encode_varint(id, &mut packed);
                }
                encode_len_delimited(SAMPLE_LOCATION_ID, &packed, &mut body);
            }
            if !sample.values.is_empty() {
                let mut packed = Vec::new();
                for &v in &sample.values {
                    // Protobuf int64: negative values take the two's
                    // complement 64-bit pattern.
                    // audit: allow(cast, i64 -> u64 two's complement reinterpretation is the protobuf wire rule)
                    encode_varint(v as u64, &mut packed);
                }
                encode_len_delimited(SAMPLE_VALUE, &packed, &mut body);
            }
            for label in &sample.labels {
                let mut lab = Vec::new();
                encode_varint_field(LABEL_KEY, label.key, &mut lab);
                encode_varint_field(LABEL_STR, label.str_value, &mut lab);
                encode_len_delimited(SAMPLE_LABEL, &lab, &mut body);
            }
            encode_len_delimited(PROFILE_SAMPLE, &body, &mut out);
        }
        for loc in &self.locations {
            let mut body = Vec::new();
            encode_varint_field(LOCATION_ID, loc.id, &mut body);
            let mut line = Vec::new();
            encode_varint_field(LINE_FUNCTION_ID, loc.function_id, &mut line);
            encode_len_delimited(LOCATION_LINE, &line, &mut body);
            encode_len_delimited(PROFILE_LOCATION, &body, &mut out);
        }
        for func in &self.functions {
            let mut body = Vec::new();
            encode_varint_field(FUNCTION_ID, func.id, &mut body);
            encode_varint_field(FUNCTION_NAME, func.name, &mut body);
            encode_len_delimited(PROFILE_FUNCTION, &body, &mut out);
        }
        for s in &self.string_table {
            encode_len_delimited(PROFILE_STRING_TABLE, s.as_bytes(), &mut out);
        }
        // audit: allow(cast, i64 -> u64 two's complement reinterpretation is the protobuf wire rule)
        encode_varint_field(PROFILE_DURATION_NANOS, self.duration_nanos as u64, &mut out);
        if let Some(vt) = self.period_type {
            encode_value_type(vt, PROFILE_PERIOD_TYPE, &mut out);
        }
        // audit: allow(cast, i64 -> u64 two's complement reinterpretation is the protobuf wire rule)
        encode_varint_field(PROFILE_PERIOD, self.period as u64, &mut out);
        out
    }

    /// Decodes raw `profile.proto` bytes, skipping unknown fields.
    ///
    /// # Errors
    ///
    /// Returns a [`PprofError`] on malformed wire data.
    pub fn decode(buf: &[u8]) -> Result<Self, PprofError> {
        let mut profile = Profile::default();
        let mut fields = FieldReader::new(buf);
        while let Some((field, payload)) = fields.next_field()? {
            match (field, payload) {
                (PROFILE_SAMPLE_TYPE, Payload::Bytes(b)) => {
                    profile.sample_types.push(decode_value_type(b)?);
                }
                (PROFILE_SAMPLE, Payload::Bytes(b)) => {
                    profile.samples.push(decode_sample(b)?);
                }
                (PROFILE_LOCATION, Payload::Bytes(b)) => {
                    profile.locations.push(decode_location(b)?);
                }
                (PROFILE_FUNCTION, Payload::Bytes(b)) => {
                    profile.functions.push(decode_function(b)?);
                }
                (PROFILE_STRING_TABLE, Payload::Bytes(b)) => {
                    let s = std::str::from_utf8(b).map_err(|_| WireError::InvalidUtf8 { field })?;
                    profile.string_table.push(s.to_owned());
                }
                (PROFILE_DURATION_NANOS, Payload::Varint(v)) => {
                    // audit: allow(cast, u64 -> i64 two's complement reinterpretation is the protobuf wire rule)
                    profile.duration_nanos = v as i64;
                }
                (PROFILE_PERIOD_TYPE, Payload::Bytes(b)) => {
                    profile.period_type = Some(decode_value_type(b)?);
                }
                (PROFILE_PERIOD, Payload::Varint(v)) => {
                    // audit: allow(cast, u64 -> i64 two's complement reinterpretation is the protobuf wire rule)
                    profile.period = v as i64;
                }
                _ => {}
            }
        }
        Ok(profile)
    }

    /// Looks up a string-table entry; out-of-range indices yield `""`.
    #[must_use]
    pub fn string(&self, index: u64) -> &str {
        usize::try_from(index)
            .ok()
            .and_then(|i| self.string_table.get(i))
            .map_or("", String::as_str)
    }

    /// Resolves a sample's frame names, leaf first.
    #[must_use]
    pub fn sample_frames(&self, sample: &Sample) -> Vec<&str> {
        sample
            .location_ids
            .iter()
            .map(|loc_id| {
                let function_id = self
                    .locations
                    .iter()
                    .find(|l| l.id == *loc_id)
                    .map_or(0, |l| l.function_id);
                let name = self
                    .functions
                    .iter()
                    .find(|f| f.id == function_id)
                    .map_or(0, |f| f.name);
                self.string(name)
            })
            .collect()
    }

    /// Checks referential integrity: the string table starts with `""`,
    /// every sample value vector matches the declared dimensions, and every
    /// location/function/string reference resolves.
    ///
    /// # Errors
    ///
    /// Returns the first [`PprofError`] found.
    pub fn validate(&self) -> Result<(), PprofError> {
        if self.string_table.first().map(String::as_str) != Some("") {
            return Err(PprofError::BadStringTable);
        }
        let strings = self.string_table.len() as u64;
        let check_str = |idx: u64, what: &'static str| {
            if idx >= strings {
                Err(PprofError::DanglingReference { what, id: idx })
            } else {
                Ok(())
            }
        };
        for vt in self.sample_types.iter().chain(self.period_type.as_ref()) {
            check_str(vt.kind, "value-type string")?;
            check_str(vt.unit, "value-type string")?;
        }
        for func in &self.functions {
            check_str(func.name, "function name string")?;
        }
        for loc in &self.locations {
            if !self.functions.iter().any(|f| f.id == loc.function_id) {
                return Err(PprofError::DanglingReference {
                    what: "function",
                    id: loc.function_id,
                });
            }
        }
        for sample in &self.samples {
            if sample.values.len() != self.sample_types.len() {
                return Err(PprofError::ValueArity {
                    got: sample.values.len(),
                    want: self.sample_types.len(),
                });
            }
            for &loc_id in &sample.location_ids {
                if !self.locations.iter().any(|l| l.id == loc_id) {
                    return Err(PprofError::DanglingReference {
                        what: "location",
                        id: loc_id,
                    });
                }
            }
            for label in &sample.labels {
                check_str(label.key, "label key string")?;
                check_str(label.str_value, "label value string")?;
            }
        }
        Ok(())
    }
}

/// A decoded field payload.
enum Payload<'a> {
    Varint(u64),
    Bytes(&'a [u8]),
}

/// Streams `(field, payload)` pairs off a message body, skipping fixed-width
/// fields the caller does not consume.
struct FieldReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FieldReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        FieldReader { buf, pos: 0 }
    }

    fn next_field(&mut self) -> Result<Option<(u32, Payload<'a>)>, WireError> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let (field, wire_type, consumed) = decode_tag(&self.buf[self.pos..])?;
        self.pos += consumed;
        let payload = match wire_type {
            WireType::Varint => {
                let (value, n) = decode_varint(&self.buf[self.pos..])?;
                self.pos += n;
                Payload::Varint(value)
            }
            WireType::LengthDelimited => {
                let (len, n) = decode_varint(&self.buf[self.pos..])?;
                self.pos += n;
                let len = usize::try_from(len).map_err(|_| WireError::TruncatedField { field })?;
                let end = self
                    .pos
                    .checked_add(len)
                    .filter(|&e| e <= self.buf.len())
                    .ok_or(WireError::TruncatedField { field })?;
                let bytes = &self.buf[self.pos..end];
                self.pos = end;
                Payload::Bytes(bytes)
            }
            WireType::Fixed64 => {
                if self.pos + 8 > self.buf.len() {
                    return Err(WireError::TruncatedField { field });
                }
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
                self.pos += 8;
                Payload::Varint(u64::from_le_bytes(raw))
            }
            WireType::Fixed32 => {
                if self.pos + 4 > self.buf.len() {
                    return Err(WireError::TruncatedField { field });
                }
                let mut raw = [0u8; 4];
                raw.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
                self.pos += 4;
                Payload::Varint(u64::from(u32::from_le_bytes(raw)))
            }
        };
        Ok(Some((field, payload)))
    }
}

fn decode_packed_u64(buf: &[u8]) -> Result<Vec<u64>, WireError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        let (value, n) = decode_varint(&buf[pos..])?;
        pos += n;
        out.push(value);
    }
    Ok(out)
}

fn decode_value_type(buf: &[u8]) -> Result<ValueType, WireError> {
    let mut vt = ValueType::default();
    let mut fields = FieldReader::new(buf);
    while let Some((field, payload)) = fields.next_field()? {
        match (field, payload) {
            (VALUE_TYPE_TYPE, Payload::Varint(v)) => vt.kind = v,
            (VALUE_TYPE_UNIT, Payload::Varint(v)) => vt.unit = v,
            _ => {}
        }
    }
    Ok(vt)
}

fn decode_sample(buf: &[u8]) -> Result<Sample, WireError> {
    let mut sample = Sample::default();
    let mut fields = FieldReader::new(buf);
    while let Some((field, payload)) = fields.next_field()? {
        match (field, payload) {
            (SAMPLE_LOCATION_ID, Payload::Bytes(b)) => {
                sample.location_ids.extend(decode_packed_u64(b)?);
            }
            (SAMPLE_LOCATION_ID, Payload::Varint(v)) => sample.location_ids.push(v),
            (SAMPLE_VALUE, Payload::Bytes(b)) => {
                sample.values.extend(
                    decode_packed_u64(b)?
                        .into_iter()
                        // audit: allow(cast, u64 -> i64 two's complement reinterpretation is the protobuf wire rule)
                        .map(|v| v as i64),
                );
            }
            // audit: allow(cast, u64 -> i64 two's complement reinterpretation is the protobuf wire rule)
            (SAMPLE_VALUE, Payload::Varint(v)) => sample.values.push(v as i64),
            (SAMPLE_LABEL, Payload::Bytes(b)) => {
                let mut label = Label {
                    key: 0,
                    str_value: 0,
                };
                let mut lab = FieldReader::new(b);
                while let Some((f, p)) = lab.next_field()? {
                    match (f, p) {
                        (LABEL_KEY, Payload::Varint(v)) => label.key = v,
                        (LABEL_STR, Payload::Varint(v)) => label.str_value = v,
                        _ => {}
                    }
                }
                sample.labels.push(label);
            }
            _ => {}
        }
    }
    Ok(sample)
}

fn decode_location(buf: &[u8]) -> Result<Location, WireError> {
    let mut loc = Location {
        id: 0,
        function_id: 0,
    };
    let mut fields = FieldReader::new(buf);
    while let Some((field, payload)) = fields.next_field()? {
        match (field, payload) {
            (LOCATION_ID, Payload::Varint(v)) => loc.id = v,
            (LOCATION_LINE, Payload::Bytes(b)) => {
                let mut line = FieldReader::new(b);
                while let Some((f, p)) = line.next_field()? {
                    if let (LINE_FUNCTION_ID, Payload::Varint(v)) = (f, p) {
                        loc.function_id = v;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(loc)
}

fn decode_function(buf: &[u8]) -> Result<Function, WireError> {
    let mut func = Function { id: 0, name: 0 };
    let mut fields = FieldReader::new(buf);
    while let Some((field, payload)) = fields.next_field()? {
        match (field, payload) {
            (FUNCTION_ID, Payload::Varint(v)) => func.id = v,
            (FUNCTION_NAME, Payload::Varint(v)) => func.name = v,
            _ => {}
        }
    }
    Ok(func)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        Profile {
            // strings: 0:"" 1:samples 2:count 3:cpu 4:nanoseconds 5:main
            // 6:worker 7:category 8:core.read
            string_table: [
                "",
                "samples",
                "count",
                "cpu",
                "nanoseconds",
                "main",
                "worker",
                "category",
                "core.read",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
            sample_types: vec![
                ValueType { kind: 1, unit: 2 },
                ValueType { kind: 3, unit: 4 },
            ],
            functions: vec![Function { id: 1, name: 5 }, Function { id: 2, name: 6 }],
            locations: vec![
                Location {
                    id: 1,
                    function_id: 1,
                },
                Location {
                    id: 2,
                    function_id: 2,
                },
            ],
            samples: vec![Sample {
                location_ids: vec![2, 1], // leaf first: worker <- main
                values: vec![7, 14_000],
                labels: vec![Label {
                    key: 7,
                    str_value: 8,
                }],
            }],
            duration_nanos: 1_000_000,
            period_type: Some(ValueType { kind: 3, unit: 4 }),
            period: 2_000,
        }
    }

    #[test]
    fn round_trips_byte_identically_after_reencode() {
        let profile = sample_profile();
        let bytes = profile.encode();
        let decoded = Profile::decode(&bytes).expect("decodes");
        assert_eq!(decoded, profile);
        assert_eq!(decoded.encode(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn validate_accepts_consistent_profiles() {
        sample_profile().validate().expect("valid");
    }

    #[test]
    fn validate_rejects_dangling_location() {
        let mut p = sample_profile();
        p.samples[0].location_ids.push(99);
        assert!(matches!(
            p.validate(),
            Err(PprofError::DanglingReference {
                what: "location",
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_value_arity_mismatch() {
        let mut p = sample_profile();
        p.samples[0].values.pop();
        assert!(matches!(p.validate(), Err(PprofError::ValueArity { .. })));
    }

    #[test]
    fn validate_rejects_missing_empty_string() {
        let mut p = sample_profile();
        p.string_table[0] = "oops".to_owned();
        assert_eq!(p.validate(), Err(PprofError::BadStringTable));
    }

    #[test]
    fn sample_frames_resolve_leaf_first() {
        let p = sample_profile();
        assert_eq!(p.sample_frames(&p.samples[0]), vec!["worker", "main"]);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let profile = sample_profile();
        let mut bytes = profile.encode();
        // Append an unknown varint field (100) and an unknown
        // length-delimited field (101).
        encode_tag(100, WireType::Varint, &mut bytes);
        encode_varint(42, &mut bytes);
        encode_tag(101, WireType::LengthDelimited, &mut bytes);
        encode_varint(3, &mut bytes);
        bytes.extend_from_slice(b"xyz");
        let decoded = Profile::decode(&bytes).expect("unknown fields skipped");
        assert_eq!(decoded, profile);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = sample_profile().encode();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            // Truncation either errors or decodes a prefix; never panics.
            let _ = Profile::decode(&bytes[..cut]);
        }
        // A declared length past the end must error.
        let mut bad = Vec::new();
        encode_tag(PROFILE_SAMPLE, WireType::LengthDelimited, &mut bad);
        encode_varint(1000, &mut bad);
        assert!(Profile::decode(&bad).is_err());
    }

    #[test]
    fn negative_values_survive_the_wire() {
        let mut p = sample_profile();
        p.samples[0].values = vec![-5, 9];
        let decoded = Profile::decode(&p.encode()).expect("decodes");
        assert_eq!(decoded.samples[0].values, vec![-5, 9]);
    }
}
