//! Kernel round 3 differential suite: every SIMD/hardware fast path must be
//! *byte-identical* to its scalar predecessor — same outputs on valid
//! inputs, same `Ok`/`Err` verdicts on adversarial ones — over random
//! lengths (0..4 KiB), unaligned starting offsets, and structured corpora.
//!
//! The fast paths are taken from the [`hsdp_taxes::simd`] resolvers
//! directly, so the comparison is real even if the dispatched entry points
//! were pinned elsewhere. On hosts without the instruction sets (or under
//! `HSDP_FORCE_SCALAR=1`) the resolvers return `None` and each test logs a
//! skip — CI runs the suite in both modes, so the SIMD side is exercised
//! wherever the hardware allows.

use hsdp_rng::{Rng, StdRng};
use hsdp_taxes::compress::{compress_scalar, decompress_scalar};
use hsdp_taxes::crc::{crc32c_append_bytewise, crc32c_append_slicing8};
use hsdp_taxes::simd;

const MAX_LEN: usize = 4096;

/// Random-length buffer with a little headroom so tests can slice it at
/// unaligned starting offsets without changing the length distribution.
fn random_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.random_range(0..=max_len);
    (0..len + 16).map(|_| rng.random()).collect()
}

/// Corpus shapes spanning the kernels' regimes: incompressible noise,
/// log-like repetition, long self-matches, and constant runs.
fn corpus_shapes(rng: &mut StdRng) -> Vec<Vec<u8>> {
    let mut shapes = Vec::new();
    shapes.push(Vec::new());
    shapes.push(vec![0u8; rng.random_range(1..=MAX_LEN)]);
    shapes.push((0..MAX_LEN).map(|_| rng.random()).collect());
    // Log-like: few distinct short lines, repeated with variation.
    let mut log = Vec::new();
    while log.len() < MAX_LEN {
        let shard = rng.random_range(0u32..8);
        let user = rng.random_range(0u64..40);
        log.extend_from_slice(format!("shard={shard:02} user={user:04} op=read\n").as_bytes());
    }
    log.truncate(MAX_LEN);
    shapes.push(log);
    // Hot block: one 512-byte random block repeated (match-extension regime).
    let block: Vec<u8> = (0..512).map(|_| rng.random()).collect();
    let mut hot = Vec::new();
    while hot.len() < MAX_LEN {
        hot.extend_from_slice(&block);
    }
    hot.truncate(MAX_LEN);
    shapes.push(hot);
    shapes
}

// ---------------------------------------------------------------------------
// CRC32C: hardware instruction vs slicing-by-8 vs the bytewise oracle.
// ---------------------------------------------------------------------------

#[test]
fn hw_crc32c_matches_scalar_over_random_lengths_and_offsets() {
    let Some(hw) = simd::crc::crc32c_fn() else {
        eprintln!("skipping: no hardware CRC32C on this host");
        return;
    };
    let mut rng = StdRng::seed_from_u64(0xC4C1);
    for case in 0..400 {
        let buf = random_bytes(&mut rng, MAX_LEN);
        let off = rng.random_range(0..=8usize.min(buf.len()));
        let data = &buf[off..];
        let seed: u32 = rng.random();
        let want = crc32c_append_bytewise(seed, data);
        assert_eq!(
            hw(seed, data),
            want,
            "case {case} len {} off {off}",
            data.len()
        );
        assert_eq!(
            crc32c_append_slicing8(seed, data),
            want,
            "slicing8 diverged from the oracle, case {case}"
        );
    }
}

#[test]
fn hw_crc32c_streams_split_points_like_scalar() {
    let Some(hw) = simd::crc::crc32c_fn() else {
        eprintln!("skipping: no hardware CRC32C on this host");
        return;
    };
    // Appending in two chunks must equal one pass, at every split of a
    // buffer spanning the interleave block boundary.
    let mut rng = StdRng::seed_from_u64(0xC4C2);
    let buf: Vec<u8> = (0..MAX_LEN).map(|_| rng.random()).collect();
    let whole = hw(0, &buf);
    for split in (0..buf.len()).step_by(97) {
        assert_eq!(
            hw(hw(0, &buf[..split]), &buf[split..]),
            whole,
            "split {split}"
        );
    }
}

// ---------------------------------------------------------------------------
// Compression: the SIMD encoder must emit identical bytes, not just an
// equivalent stream, so SSTable block checksums are host-independent.
// ---------------------------------------------------------------------------

#[test]
fn simd_compress_bytes_match_scalar_over_random_lengths_and_offsets() {
    let Some(simd_compress) = simd::compress::compress_fn() else {
        eprintln!("skipping: no SIMD compress on this host");
        return;
    };
    let mut rng = StdRng::seed_from_u64(0x51AD);
    for case in 0..200 {
        let buf = random_bytes(&mut rng, MAX_LEN);
        let off = rng.random_range(0..=8usize.min(buf.len()));
        let data = &buf[off..];
        assert_eq!(
            simd_compress(data),
            compress_scalar(data),
            "case {case} len {} off {off}",
            data.len()
        );
    }
    for (i, shape) in corpus_shapes(&mut rng).iter().enumerate() {
        for off in 0..4usize.min(shape.len() + 1) {
            let data = &shape[off.min(shape.len())..];
            assert_eq!(
                simd_compress(data),
                compress_scalar(data),
                "shape {i} off {off}"
            );
        }
    }
}

#[test]
fn simd_decompress_matches_scalar_on_valid_streams() {
    let Some(simd_decompress) = simd::compress::decompress_fn() else {
        eprintln!("skipping: no SIMD decompress on this host");
        return;
    };
    let mut rng = StdRng::seed_from_u64(0xD1AD);
    for case in 0..200 {
        let buf = random_bytes(&mut rng, MAX_LEN);
        let off = rng.random_range(0..=8usize.min(buf.len()));
        let data = &buf[off..];
        let packed = compress_scalar(data);
        let fast = simd_decompress(&packed).expect("valid stream");
        let slow = decompress_scalar(&packed).expect("valid stream");
        assert_eq!(fast, slow, "case {case}");
        assert_eq!(fast, data, "case {case} roundtrip");
    }
    for (i, shape) in corpus_shapes(&mut rng).iter().enumerate() {
        let packed = compress_scalar(shape);
        assert_eq!(
            simd_decompress(&packed).expect("valid stream"),
            *shape,
            "shape {i}"
        );
    }
}

// ---------------------------------------------------------------------------
// Error parity: the hardened-decoder checks survive vectorization — every
// adversarial stream gets the same Ok/Err verdict from both decoders.
// ---------------------------------------------------------------------------

#[test]
fn simd_decompress_error_parity_on_adversarial_streams() {
    let Some(simd_decompress) = simd::compress::decompress_fn() else {
        eprintln!("skipping: no SIMD decompress on this host");
        return;
    };
    let mut rng = StdRng::seed_from_u64(0xE11A);
    for case in 0..24 {
        // Compressible-with-noise data so streams mix literal and copy ops.
        let pattern = random_bytes(&mut rng, 32);
        let mut data: Vec<u8> = pattern
            .iter()
            .copied()
            .cycle()
            .take(pattern.len().max(1) * 20)
            .collect();
        data.extend(random_bytes(&mut rng, 256));
        let packed = compress_scalar(&data);

        // Every truncation point.
        for cut in 0..packed.len() {
            let fast = simd_decompress(&packed[..cut]);
            let slow = decompress_scalar(&packed[..cut]);
            assert_eq!(
                fast.is_err(),
                slow.is_err(),
                "case {case} cut {cut}: verdicts diverge"
            );
        }
        // Single-byte corruption at every position (sampled past 512 to
        // bound the quadratic cost).
        let stride = 1 + packed.len() / 512;
        for pos in (0..packed.len()).step_by(stride) {
            for flip in [0x01u8, 0x80u8, 0xff] {
                let mut bad = packed.clone();
                bad[pos] ^= flip;
                match (simd_decompress(&bad), decompress_scalar(&bad)) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "case {case} pos {pos} flip {flip:#04x}")
                    }
                    (Err(_), Err(_)) => {}
                    (fast, slow) => panic!(
                        "case {case} pos {pos} flip {flip:#04x}: SIMD {fast:?} vs scalar {slow:?}"
                    ),
                }
            }
        }
    }

    // Random garbage never panics and never diverges.
    for _ in 0..200 {
        let garbage = random_bytes(&mut rng, 512);
        match (simd_decompress(&garbage), decompress_scalar(&garbage)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (fast, slow) => panic!("garbage verdicts diverge: SIMD {fast:?} vs scalar {slow:?}"),
        }
    }
}
