//! Property-based roundtrip tests for every codec in hsdp-taxes.

use std::sync::Arc;

use hsdp_taxes::compress::{compress, decompress, rle_compress, rle_decompress};
use hsdp_taxes::crc::{crc32c, Crc32c};
use hsdp_taxes::frame::{Frame, FrameKind};
use hsdp_taxes::protowire::{
    FieldDescriptor, FieldType, Message, MessageDescriptor, Value,
};
use hsdp_taxes::sha3::Sha3_256;
use hsdp_taxes::varint::{
    decode_varint, encode_varint, varint_len, zigzag_decode, zigzag_encode,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        let len = encode_varint(v, &mut buf);
        prop_assert_eq!(len, varint_len(v));
        let (decoded, consumed) = decode_varint(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(consumed, len);
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn zigzag_small_magnitude_small_encoding(v in -1000i64..1000) {
        // ZigZag's purpose: small magnitudes encode small.
        prop_assert!(zigzag_encode(v) <= 2000);
    }

    #[test]
    fn compress_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn compress_roundtrip_repetitive(
        pattern in proptest::collection::vec(any::<u8>(), 1..32),
        repeats in 1usize..200,
    ) {
        let data: Vec<u8> = pattern.iter().copied().cycle().take(pattern.len() * repeats).collect();
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&data);
    }

    #[test]
    fn rle_roundtrip(data in proptest::collection::vec(0u8..4, 0..2048)) {
        let packed = rle_compress(&data);
        prop_assert_eq!(rle_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn crc_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        split in 0usize..1024,
    ) {
        let split = split.min(data.len());
        let mut h = Crc32c::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), crc32c(&data));
    }

    #[test]
    fn sha3_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split.min(data.len());
        let mut h = Sha3_256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha3_256::digest(&data));
    }

    #[test]
    fn frame_roundtrip(
        method in any::<u16>(),
        request_id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame { kind: FrameKind::Request, method, request_id, payload };
        let bytes = frame.encode_to_vec();
        let (decoded, consumed) = Frame::decode(&bytes, 1024).unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn frame_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&data, 1 << 20);
    }

    #[test]
    fn message_roundtrip(
        id in any::<u64>(),
        name in "[a-zA-Z0-9 ]{0,64}",
        score in any::<f64>(),
        tags in proptest::collection::vec(any::<i64>(), 0..16),
        blob in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let desc = Arc::new(MessageDescriptor::new(
            "P",
            vec![
                FieldDescriptor::optional(1, "id", FieldType::Uint64),
                FieldDescriptor::optional(2, "name", FieldType::String),
                FieldDescriptor::optional(3, "score", FieldType::Double),
                FieldDescriptor::repeated(4, "tags", FieldType::Sint64),
                FieldDescriptor::optional(5, "blob", FieldType::Bytes),
            ],
        ).unwrap());
        let mut msg = Message::new(Arc::clone(&desc));
        msg.set(1, Value::Uint64(id)).unwrap();
        msg.set(2, Value::Str(name)).unwrap();
        msg.set(3, Value::Double(score)).unwrap();
        for t in tags {
            msg.push(4, Value::Sint64(t)).unwrap();
        }
        msg.set(5, Value::Bytes(blob)).unwrap();

        let bytes = msg.encode_to_vec();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        let decoded = Message::decode(desc, &bytes).unwrap();
        // NaN != NaN breaks full equality; compare encodings instead, which
        // must be byte-identical.
        prop_assert_eq!(decoded.encode_to_vec(), bytes);
    }

    #[test]
    fn message_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let desc = Arc::new(MessageDescriptor::new(
            "F",
            vec![
                FieldDescriptor::optional(1, "a", FieldType::Uint64),
                FieldDescriptor::optional(2, "b", FieldType::String),
                FieldDescriptor::optional(3, "c", FieldType::Fixed64),
            ],
        ).unwrap());
        let _ = Message::decode(desc, &data);
    }

    #[test]
    fn sha3_distinct_for_distinct_inputs(
        a in proptest::collection::vec(any::<u8>(), 0..256),
        b in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(Sha3_256::digest(&a), Sha3_256::digest(&b));
    }
}
