//! Randomized roundtrip tests for every codec in hsdp-taxes.
//!
//! Formerly `proptest` strategies; now driven by the in-repo deterministic
//! PRNG so the workspace stays dependency-free. Each property runs over
//! `CASES` independently sampled inputs with a fixed seed.

use std::sync::Arc;

use hsdp_rng::{Rng, StdRng};
use hsdp_taxes::compress::{compress, decompress, rle_compress, rle_decompress};
use hsdp_taxes::crc::{crc32c, Crc32c};
use hsdp_taxes::frame::{Frame, FrameKind};
use hsdp_taxes::protowire::{FieldDescriptor, FieldType, Message, MessageDescriptor, Value};
use hsdp_taxes::sha3::Sha3_256;
use hsdp_taxes::varint::{decode_varint, encode_varint, varint_len, zigzag_decode, zigzag_encode};

const CASES: usize = 256;

fn bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.random_range(0..=max_len);
    (0..len).map(|_| rng.random()).collect()
}

#[test]
fn varint_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x7A41);
    for i in 0..CASES {
        // Mix full-range values with small ones so every length class is hit.
        let v: u64 = if i % 2 == 0 {
            rng.random()
        } else {
            rng.random::<u64>() >> rng.random_range(0..64u32)
        };
        let mut buf = Vec::new();
        let len = encode_varint(v, &mut buf);
        assert_eq!(len, varint_len(v));
        let (decoded, consumed) = decode_varint(&buf).expect("roundtrip decode");
        assert_eq!(decoded, v);
        assert_eq!(consumed, len);
    }
}

#[test]
fn zigzag_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x2162);
    for _ in 0..CASES {
        let v: i64 = rng.random();
        assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }
    for v in [i64::MIN, -1, 0, 1, i64::MAX] {
        assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }
}

#[test]
fn zigzag_small_magnitude_small_encoding() {
    let mut rng = StdRng::seed_from_u64(0x2163);
    for _ in 0..CASES {
        // ZigZag's purpose: small magnitudes encode small.
        let v = rng.random_range(-1000i64..1000);
        assert!(zigzag_encode(v) <= 2000, "zigzag({v}) too large");
    }
}

#[test]
fn compress_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xC04E55);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 4096);
        let packed = compress(&data);
        assert_eq!(decompress(&packed).expect("roundtrip"), data);
    }
}

#[test]
fn compress_roundtrip_repetitive() {
    let mut rng = StdRng::seed_from_u64(0xC04E56);
    for _ in 0..CASES {
        let pattern_len = rng.random_range(1..32usize);
        let pattern: Vec<u8> = (0..pattern_len).map(|_| rng.random()).collect();
        let repeats = rng.random_range(1..200usize);
        let data: Vec<u8> = pattern
            .iter()
            .copied()
            .cycle()
            .take(pattern.len() * repeats)
            .collect();
        let packed = compress(&data);
        assert_eq!(decompress(&packed).expect("roundtrip"), data);
    }
}

#[test]
fn decompress_never_panics_on_garbage() {
    let mut rng = StdRng::seed_from_u64(0xDEAD1);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 512);
        let _ = decompress(&data);
    }
}

#[test]
fn rle_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x41E);
    for _ in 0..CASES {
        let len = rng.random_range(0..2048usize);
        let data: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..4)).collect();
        let packed = rle_compress(&data);
        assert_eq!(rle_decompress(&packed).expect("roundtrip"), data);
    }
}

#[test]
fn crc_streaming_equals_oneshot() {
    let mut rng = StdRng::seed_from_u64(0xC4C);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 1024);
        let split = rng.random_range(0..1024usize).min(data.len());
        let mut h = Crc32c::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), crc32c(&data));
    }
}

#[test]
fn sha3_incremental_equals_oneshot() {
    let mut rng = StdRng::seed_from_u64(0x54A3);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 2048);
        let split = rng.random_range(0..2048usize).min(data.len());
        let mut h = Sha3_256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), Sha3_256::digest(&data));
    }
}

#[test]
fn frame_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xF4A4E);
    for _ in 0..CASES {
        let frame = Frame {
            kind: FrameKind::Request,
            method: rng.random(),
            request_id: rng.random(),
            payload: bytes(&mut rng, 512),
        };
        let bytes = frame.encode_to_vec();
        let (decoded, consumed) = Frame::decode(&bytes, 1024).expect("roundtrip");
        assert_eq!(decoded, frame);
        assert_eq!(consumed, bytes.len());
    }
}

#[test]
fn frame_decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF4A4F);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 256);
        let _ = Frame::decode(&data, 1 << 20);
    }
}

#[test]
fn message_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x4E55A6E);
    const NAME_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    for _ in 0..CASES {
        let desc = Arc::new(
            MessageDescriptor::new(
                "P",
                vec![
                    FieldDescriptor::optional(1, "id", FieldType::Uint64),
                    FieldDescriptor::optional(2, "name", FieldType::String),
                    FieldDescriptor::optional(3, "score", FieldType::Double),
                    FieldDescriptor::repeated(4, "tags", FieldType::Sint64),
                    FieldDescriptor::optional(5, "blob", FieldType::Bytes),
                ],
            )
            .expect("valid descriptor"),
        );
        let name: String = (0..rng.random_range(0..=64usize))
            .map(|_| char::from(NAME_ALPHABET[rng.random_range(0..NAME_ALPHABET.len())]))
            .collect();
        // Bit-pattern doubles exercise NaN/Inf encodings too.
        let score = f64::from_bits(rng.random());
        let mut msg = Message::new(Arc::clone(&desc));
        msg.set(1, Value::Uint64(rng.random()))
            .expect("schema field");
        msg.set(2, Value::Str(name)).expect("schema field");
        msg.set(3, Value::Double(score)).expect("schema field");
        for _ in 0..rng.random_range(0..16usize) {
            msg.push(4, Value::Sint64(rng.random()))
                .expect("schema field");
        }
        msg.set(5, Value::Bytes(bytes(&mut rng, 128)))
            .expect("schema field");

        let encoded = msg.encode_to_vec();
        assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = Message::decode(desc, &encoded).expect("roundtrip");
        // NaN != NaN breaks full equality; compare encodings instead, which
        // must be byte-identical.
        assert_eq!(decoded.encode_to_vec(), encoded);
    }
}

#[test]
fn message_decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x4E55A6F);
    let desc = Arc::new(
        MessageDescriptor::new(
            "F",
            vec![
                FieldDescriptor::optional(1, "a", FieldType::Uint64),
                FieldDescriptor::optional(2, "b", FieldType::String),
                FieldDescriptor::optional(3, "c", FieldType::Fixed64),
            ],
        )
        .expect("valid descriptor"),
    );
    for _ in 0..CASES {
        let data = bytes(&mut rng, 256);
        let _ = Message::decode(Arc::clone(&desc), &data);
    }
}

#[test]
fn sha3_distinct_for_distinct_inputs() {
    let mut rng = StdRng::seed_from_u64(0xD157);
    for _ in 0..CASES {
        let a = bytes(&mut rng, 256);
        let b = bytes(&mut rng, 256);
        if a == b {
            continue;
        }
        assert_ne!(Sha3_256::digest(&a), Sha3_256::digest(&b));
    }
}
