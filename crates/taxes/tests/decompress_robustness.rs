//! Robustness suite for the block-compression decoder (the hot path
//! introduced alongside the retained reference codec).
//!
//! Two families of properties:
//!
//! 1. **Adversarial inputs** — truncated streams, corrupted tags,
//!    back-references past the start of the output, and length-overflow
//!    streams must return a `CompressError`, never panic and never
//!    allocate on the say-so of an untrusted header.
//! 2. **Round-trip equivalence** — random and pathological buffers must
//!    round-trip through every encoder x decoder pairing of the fast and
//!    reference implementations (the streams share one format).

use hsdp_rng::{Rng, StdRng};
use hsdp_taxes::compress::{compress, compress_reference, decompress, decompress_reference};
use hsdp_taxes::error::CompressError;
use hsdp_taxes::varint::encode_varint;

const CASES: usize = 128;

fn random_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.random_range(0..=max_len);
    (0..len).map(|_| rng.random()).collect()
}

/// Builds a syntactically valid header declaring `uncompressed_len`.
fn header(uncompressed_len: u64) -> Vec<u8> {
    let mut out = b"HZ\x01".to_vec();
    encode_varint(uncompressed_len, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Adversarial inputs.
// ---------------------------------------------------------------------------

#[test]
fn every_truncation_of_a_valid_stream_errors() {
    let mut rng = StdRng::seed_from_u64(0x7121);
    for _ in 0..16 {
        // Compressible data so the stream mixes literal and copy ops.
        let pattern = random_bytes(&mut rng, 24);
        let mut data: Vec<u8> = pattern
            .iter()
            .copied()
            .cycle()
            .take(pattern.len().max(1) * 40)
            .collect();
        data.extend(random_bytes(&mut rng, 200));
        let packed = compress(&data);
        for cut in 0..packed.len() {
            assert!(
                decompress(&packed[..cut]).is_err(),
                "prefix of len {cut} must fail"
            );
        }
    }
}

#[test]
fn corrupted_streams_never_panic_and_keep_the_length_contract() {
    // Flip bytes anywhere in a valid stream: the decoder may legitimately
    // still succeed (e.g. a mutated literal byte), but it must not panic,
    // and any Ok output must honor the declared length.
    let mut rng = StdRng::seed_from_u64(0x7122);
    let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog "
        .repeat(20)
        .to_vec();
    let packed = compress(&data);
    for _ in 0..2_000 {
        let mut bad = packed.clone();
        let at = rng.random_range(0..bad.len());
        bad[at] ^= rng.random_range(1u8..=255);
        if let Ok(out) = decompress(&bad) {
            assert_eq!(out.len(), data.len(), "corrupt Ok must match the header");
        }
        // The reference decoder must be equally robust.
        if let Ok(out) = decompress_reference(&bad) {
            assert_eq!(out.len(), data.len());
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x7123);
    for _ in 0..CASES {
        let garbage = random_bytes(&mut rng, 512);
        let _ = decompress(&garbage);
        let _ = decompress_reference(&garbage);
        // Garbage behind a valid header, too.
        let mut framed = header(rng.random_range(0..10_000));
        framed.extend(random_bytes(&mut rng, 256));
        let _ = decompress(&framed);
        let _ = decompress_reference(&framed);
    }
}

#[test]
fn copy_tag_with_offset_past_start_is_rejected() {
    // First op is a copy: there is no output yet, so any offset is invalid.
    let mut bad = header(8);
    bad.push(1); // copy tag, short len = MIN_MATCH
    encode_varint(3, &mut bad); // offset 3 > output len 0
    assert!(matches!(
        decompress(&bad),
        Err(CompressError::InvalidBackref { .. })
    ));

    // A copy whose offset outruns the bytes produced so far.
    let mut bad = header(16);
    bad.push(3 << 1); // literal run of 4
    bad.extend_from_slice(b"abcd");
    bad.push(1); // copy, len 4
    encode_varint(5, &mut bad); // offset 5 > output len 4
    assert!(matches!(
        decompress(&bad),
        Err(CompressError::InvalidBackref { .. })
    ));

    // Offset zero is never valid.
    let mut bad = header(16);
    bad.push(3 << 1);
    bad.extend_from_slice(b"abcd");
    bad.push(1);
    encode_varint(0, &mut bad);
    assert!(matches!(
        decompress(&bad),
        Err(CompressError::InvalidBackref { .. })
    ));
}

#[test]
fn ops_overflowing_the_declared_length_fail_before_producing() {
    // A literal run longer than the declared output.
    let mut bad = header(2);
    bad.push(3 << 1); // literal run of 4
    bad.extend_from_slice(b"abcd");
    assert!(matches!(
        decompress(&bad),
        Err(CompressError::LengthMismatch { expected: 2, .. })
    ));

    // A copy that would overflow the declared output: 4 literals then a
    // long-form copy of 1000 into a 6-byte budget.
    let mut bad = header(6);
    bad.push(3 << 1);
    bad.extend_from_slice(b"abcd");
    bad.push((0x7f << 1) | 1); // copy, long-form length
    encode_varint(1000, &mut bad);
    encode_varint(2, &mut bad); // valid offset
    assert!(matches!(
        decompress(&bad),
        Err(CompressError::LengthMismatch { expected: 6, .. })
    ));
}

#[test]
fn huge_declared_length_does_not_preallocate() {
    // The header claims an enormous output; the stream holds 4 bytes. The
    // decoder must fail with a small, cheap error — a `with_capacity` on
    // the declared length would abort the process long before the
    // assertion. (Both decoders share the capped-reservation guard.)
    for declared in [1u64 << 40, 1 << 50, u64::MAX] {
        let mut bad = header(declared);
        bad.push(3 << 1);
        bad.extend_from_slice(b"abcd");
        assert!(matches!(
            decompress(&bad),
            Err(CompressError::LengthMismatch { .. })
        ));
        assert!(matches!(
            decompress_reference(&bad),
            Err(CompressError::LengthMismatch { .. })
        ));
    }
}

#[test]
fn overlap_copy_bomb_is_bounded_by_the_declared_length() {
    // Classic decompression bomb: tiny input, overlapping copy with a huge
    // long-form length. The output budget check must stop it at the
    // declared length, not at the copy's say-so.
    let mut bad = header(32);
    bad.push(0); // literal run of 1
    bad.push(b'x');
    bad.push((0x7f << 1) | 1); // copy, long-form length
    encode_varint(1 << 40, &mut bad); // 1 TiB claimed
    encode_varint(1, &mut bad); // overlapping offset
    assert!(matches!(
        decompress(&bad),
        Err(CompressError::LengthMismatch { expected: 32, .. })
    ));
}

// ---------------------------------------------------------------------------
// Round-trip equivalence against the reference codec.
// ---------------------------------------------------------------------------

/// Round-trips `data` through all four encoder x decoder pairings.
fn assert_all_pairings(data: &[u8]) {
    let fast = compress(data);
    let reference = compress_reference(data);
    assert_eq!(decompress(&fast).expect("fast/fast"), data);
    assert_eq!(decompress_reference(&fast).expect("fast/ref"), data);
    assert_eq!(decompress(&reference).expect("ref/fast"), data);
    assert_eq!(decompress_reference(&reference).expect("ref/ref"), data);
}

#[test]
fn random_buffers_roundtrip_all_pairings() {
    let mut rng = StdRng::seed_from_u64(0x7124);
    for _ in 0..CASES {
        let data = random_bytes(&mut rng, 4096);
        assert_all_pairings(&data);
    }
}

#[test]
fn pathological_buffers_roundtrip_all_pairings() {
    // All-zero (maximum overlap-copy pressure) at sizes straddling the
    // short/long op boundary and the decoder's chunked-copy doubling.
    for len in [0usize, 1, 3, 4, 5, 127, 128, 130, 131, 4096, 100_000] {
        assert_all_pairings(&vec![0u8; len]);
    }
    // Incompressible: no 4-byte match anywhere, including across the skip
    // acceleration's growing stride.
    let mut state = 0xBADC_0FFEu64;
    let incompressible: Vec<u8> = (0..64 * 1024)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 56) as u8
        })
        .collect();
    assert_all_pairings(&incompressible);
    // Long repeats with a tail shorter than a word, exercising the
    // word-at-a-time extension's sub-8-byte mop-up.
    let mut repeats: Vec<u8> = b"0123456789abcdef".repeat(1000);
    repeats.extend_from_slice(b"xyz");
    assert_all_pairings(&repeats);
}

#[test]
fn structured_overlapping_runs_roundtrip() {
    // Zipf-ish key-value shaped data, close to what SSTable blocks hold.
    let mut rng = StdRng::seed_from_u64(0x7125);
    for _ in 0..32 {
        let mut data = Vec::new();
        for _ in 0..rng.random_range(1..400usize) {
            let key = rng.random_range(0u32..50);
            data.extend_from_slice(format!("key-{key:06}").as_bytes());
            data.extend_from_slice(format!("value-{key}-{}", "x".repeat(40)).as_bytes());
        }
        assert_all_pairings(&data);
    }
}
