//! Emits a canonical JSON profile of one fleet run, for determinism checks:
//!
//! ```sh
//! cargo run --release -p hsdp-bench --bin fleet_profile -- \
//!     --parallelism 2 --seed 12648430 --out /tmp/fleet_p2.json
//! diff /tmp/fleet_p1.json /tmp/fleet_p2.json   # must be empty
//! ```
//!
//! Everything in the output is integer-exact (simulated nanoseconds and a
//! CRC32C digest over the full merged record stream), so two runs are
//! byte-identical if and only if their merged `QueryExecution` streams are.
//!
//! `--folded PATH` additionally writes a Brendan Gregg collapsed-stack
//! profile (load with `flamegraph.pl` or speedscope), and `--pprof PATH`
//! writes the same stack tree as a raw `profile.proto` (load with
//! `pprof -http=: PATH`). Both are rendered from one deterministic GWP
//! pass over the canonical record stream, so they are byte-identical at
//! any `--parallelism`.
//!
//! `--snapshot PATH` appends this run's profile-history snapshot (shared
//! builder with `profile_history append`) to the store at PATH, stamped
//! with `--commit` / `--seq` when given. The snapshot content is likewise
//! parallelism-invariant: it forces the instrumented (telemetry) fleet
//! path and derives everything from canonical merged state.

use hsdp_bench::exhibits::fleet_stack_profile;
use hsdp_bench::snapshot::snapshot_from_parts;
use hsdp_bench::tail::{tail_from_parts, tail_summary};
use hsdp_bench::telemetry_out::build_artifacts;
use hsdp_platforms::runner::{
    default_parallelism, fold_fleet, merge_fleet_metrics, run_fleet, run_fleet_telemetry,
    FleetConfig,
};
use hsdp_platforms::QueryExecution;
use hsdp_profiling::history::{HistoryStore, SnapshotMeta};
use hsdp_simcore::pool::Perturbation;
use hsdp_simcore::time::SimDuration;
use hsdp_taxes::crc::Crc32c;
use hsdp_taxes::pprof::Profile;

/// GWP sample period for the stack-profile exports (matches the period
/// baked into [`fleet_stack_profile`]).
fn stack_sample_period() -> SimDuration {
    SimDuration::from_micros(2)
}

fn main() {
    let mut config = FleetConfig {
        db_queries: 120,
        analytics_queries: 16,
        fact_rows: 1_500,
        ..FleetConfig::default()
    };
    let mut out_path: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut folded_path: Option<String> = None;
    let mut pprof_path: Option<String> = None;
    let mut snapshot_path: Option<String> = None;
    let mut commit = String::new();
    let mut sequence = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--parallelism" => {
                config.parallelism = parse::<usize>(&take("--parallelism"), "--parallelism").max(1);
            }
            "--shards" => config.shards = parse::<usize>(&take("--shards"), "--shards").max(1),
            "--seed" => config.seed = parse(&take("--seed"), "--seed"),
            // Schedule-perturbation knob: permutes shard dispatch/consumption
            // order under the given seed. Must never change any artifact.
            "--perturb" => {
                config.perturb = Some(Perturbation::new(parse(&take("--perturb"), "--perturb")));
            }
            "--db-queries" => config.db_queries = parse(&take("--db-queries"), "--db-queries"),
            "--out" => out_path = Some(take("--out")),
            "--telemetry" => telemetry_dir = Some(take("--telemetry")),
            "--folded" => folded_path = Some(take("--folded")),
            "--pprof" => pprof_path = Some(take("--pprof")),
            "--snapshot" => snapshot_path = Some(take("--snapshot")),
            "--commit" => commit = take("--commit"),
            "--seq" => sequence = parse(&take("--seq"), "--seq"),
            other => {
                eprintln!(
                    "unknown option `{other}` (supported: --parallelism --shards --seed \
                     --perturb --db-queries --out --telemetry --folded --pprof \
                     --snapshot --commit --seq)"
                );
                std::process::exit(2);
            }
        }
    }

    // With `--telemetry <dir>` the fleet runs instrumented and the three
    // telemetry artifacts land in <dir>; `--snapshot` also forces the
    // instrumented path (the snapshot wants histogram quantiles). The
    // profile JSON is rendered from the same records either way.
    let (fleet, metrics, tail) = if telemetry_dir.is_some() || snapshot_path.is_some() {
        let runs = run_fleet_telemetry(config);
        if let Some(dir) = &telemetry_dir {
            let artifacts = build_artifacts(&runs);
            artifacts
                .write_to(std::path::Path::new(dir))
                .expect("write telemetry artifacts");
        }
        let metrics = merge_fleet_metrics(&runs);
        let tail = tail_summary(&tail_from_parts(&config, &runs, &metrics, ""));
        (fold_fleet(runs), Some(metrics), tail)
    } else {
        (run_fleet(config), None, std::collections::BTreeMap::new())
    };
    // Stack-profile exports: all render from one deterministic GWP pass
    // over the canonical fleet record stream, so any two runs with the same
    // workload config produce byte-identical artifacts regardless of
    // `--parallelism`.
    if folded_path.is_some() || pprof_path.is_some() || snapshot_path.is_some() {
        let stacks = fleet_stack_profile(&fleet, config.seed);
        if let Some(path) = folded_path {
            std::fs::write(&path, stacks.folded()).expect("write folded stacks");
        }
        if let Some(path) = pprof_path {
            let profile = stacks.to_pprof(stack_sample_period());
            profile.validate().expect("pprof export is consistent");
            let bytes = profile.encode();
            // Round-trip self-check: the bytes we ship must decode back to
            // the exact message we built.
            let decoded = Profile::decode(&bytes).expect("pprof round-trip decode");
            assert_eq!(decoded, profile, "pprof round-trip must be lossless");
            std::fs::write(&path, &bytes).expect("write pprof profile");
        }
        if let Some(path) = snapshot_path {
            let meta = SnapshotMeta {
                commit,
                sequence,
                // audit: allow(cast, hardware thread count fits u64)
                host_parallelism: default_parallelism() as u64,
                cpu_features: hsdp_taxes::dispatch::CpuFeatures::get().summary(),
            };
            let snapshot = snapshot_from_parts(
                meta,
                &stacks,
                metrics.as_ref().expect("snapshot path forces telemetry"),
                &std::collections::BTreeMap::new(),
                &tail,
            );
            let outcome = HistoryStore::open(&path)
                .append(&snapshot)
                .expect("append profile-history snapshot");
            eprintln!(
                "appended snapshot to {path}: {} snapshot(s){}",
                outcome.snapshots,
                if outcome.recovered {
                    " [recovered torn tail]"
                } else {
                    ""
                },
            );
        }
    }

    let json = render_profile(&config, &fleet);
    match out_path {
        Some(path) => std::fs::write(&path, &json).expect("write profile JSON"),
        None => print!("{json}"),
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: invalid value `{value}`"))
}

/// Folds one execution into the checksum: every label byte, span timing,
/// and CPU work item, in stream order.
fn digest_exec(digest: &mut Crc32c, exec: &QueryExecution) {
    digest.update(exec.label.as_bytes());
    for span in &exec.spans {
        digest.update(span.name.as_bytes());
        digest.update(&span.start.as_nanos().to_le_bytes());
        digest.update(&span.end.as_nanos().to_le_bytes());
        digest.update(&[span.kind.priority()]);
    }
    for item in &exec.cpu_work {
        digest.update(item.leaf.as_bytes());
        digest.update(&item.time.as_nanos().to_le_bytes());
    }
}

fn render_profile(
    config: &FleetConfig,
    fleet: &[(hsdp_core::category::Platform, Vec<QueryExecution>)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hsdp-fleet-profile/1\",\n");
    out.push_str(&format!("  \"seed\": {},\n", config.seed));
    out.push_str(&format!("  \"shards\": {},\n", config.shards));
    out.push_str("  \"platforms\": [\n");
    let mut digest = Crc32c::new();
    for (i, (platform, execs)) in fleet.iter().enumerate() {
        let (mut cpu, mut io, mut remote, mut e2e) = (0u64, 0u64, 0u64, 0u64);
        for exec in execs {
            let d = exec.decomposition();
            cpu += d.cpu.as_nanos();
            io += d.io.as_nanos();
            remote += d.remote.as_nanos();
            e2e += d.end_to_end.as_nanos();
            digest_exec(&mut digest, exec);
        }
        let work_items: usize = execs.iter().map(|e| e.cpu_work.len()).sum();
        out.push_str(&format!(
            "    {{\"platform\": \"{platform}\", \"queries\": {}, \"cpu_ns\": {cpu}, \
             \"io_ns\": {io}, \"remote_ns\": {remote}, \"end_to_end_ns\": {e2e}, \
             \"cpu_work_items\": {work_items}}}{}\n",
            execs.len(),
            if i + 1 < fleet.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"record_stream_crc32c\": {}\n}}\n",
        digest.finalize()
    ));
    out
}
