//! Continuous profiling over the repo's own history: append, check, and
//! report on the per-commit profile snapshot store.
//!
//! ```sh
//! # Take this commit's snapshot (runs the instrumented fleet) and append it.
//! cargo run --release -p hsdp-bench --bin profile_history -- \
//!     append --store profile_history.bin --commit $(git rev-parse HEAD) --seq 42
//!
//! # Top regressed stacks/categories since a commit.
//! cargo run --release -p hsdp-bench --bin profile_history -- \
//!     report --store profile_history.bin --since <commit> [--json]
//!
//! # Gate: nonzero exit on sustained share drift (K consecutive flagged
//! # snapshots past the robust z-threshold — a single blip passes).
//! cargo run --release -p hsdp-bench --bin profile_history -- \
//!     check --store profile_history.bin
//! ```
//!
//! The store is an append-only file of CRC32C-checked, length-prefixed
//! protowire frames (`hsdp_taxes::framed`); `append` transparently recovers
//! from a torn tail by truncating to the last intact frame. `seed-fixture`
//! writes a deterministic synthetic multi-commit history (optionally with
//! an injected sustained regression or a single-snapshot blip) so CI can
//! exercise the gate without profiling dozens of real commits.
//!
//! Exit codes: 0 healthy, 1 sustained drift (or damaged store on `check`),
//! 2 usage error.

use std::collections::BTreeMap;

use hsdp_bench::snapshot::{build_fleet_snapshot, parse_bench_entries};
use hsdp_platforms::runner::{default_parallelism, FleetConfig};
use hsdp_profiling::history::{
    detect_anomalies, regressions_since, AnomalyConfig, HistoryStore, ProfileSnapshot, SnapshotMeta,
};
use hsdp_rng::{Rng, StdRng};
use hsdp_taxes::dispatch::CpuFeatures;

fn usage() -> ! {
    eprintln!(
        "usage: profile_history <append|check|report|seed-fixture> --store PATH [options]\n\
         \n\
         append      --commit SHA --seq N [--parallelism N] [--db-queries N]\n\
        \u{20}            [--analytics-queries N] [--fact-rows N] [--shards N]\n\
        \u{20}            [--seed N] [--bench BENCH_fleet.json]\n\
         check       [--window N] [--z F] [--min-delta F] [--sustained K]\n\
         report      [--since COMMIT] [--top N] [--json]\n\
         seed-fixture [--snapshots N] [--inject sustained|blip|none] [--seed N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value `{value}`");
        std::process::exit(2);
    })
}

struct Options {
    store: Option<String>,
    commit: Option<String>,
    seq: u64,
    fleet: FleetConfig,
    bench_path: Option<String>,
    window: usize,
    z: f64,
    min_delta: f64,
    sustained: usize,
    since: Option<String>,
    top: usize,
    json: bool,
    snapshots: usize,
    inject: String,
    fixture_seed: u64,
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        store: None,
        commit: None,
        seq: 0,
        fleet: FleetConfig {
            db_queries: 40,
            analytics_queries: 6,
            fact_rows: 600,
            seed: 0xFACE,
            shards: 2,
            ..FleetConfig::default()
        },
        bench_path: None,
        window: 5,
        z: 3.5,
        min_delta: 0.01,
        sustained: 3,
        since: None,
        top: 10,
        json: false,
        snapshots: 20,
        inject: "none".to_owned(),
        fixture_seed: 0x415707,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> &String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--store" => o.store = Some(take("--store").clone()),
            "--commit" => o.commit = Some(take("--commit").clone()),
            "--seq" => o.seq = parse(take("--seq"), "--seq"),
            "--parallelism" => {
                o.fleet.parallelism = parse::<usize>(take("--parallelism"), "--parallelism").max(1);
            }
            "--db-queries" => o.fleet.db_queries = parse(take("--db-queries"), "--db-queries"),
            "--analytics-queries" => {
                o.fleet.analytics_queries =
                    parse(take("--analytics-queries"), "--analytics-queries");
            }
            "--fact-rows" => o.fleet.fact_rows = parse(take("--fact-rows"), "--fact-rows"),
            "--shards" => o.fleet.shards = parse::<usize>(take("--shards"), "--shards").max(1),
            "--seed" => {
                let v = parse(take("--seed"), "--seed");
                o.fleet.seed = v;
                o.fixture_seed = v;
            }
            "--bench" => o.bench_path = Some(take("--bench").clone()),
            "--window" => o.window = parse(take("--window"), "--window"),
            "--z" => o.z = parse(take("--z"), "--z"),
            "--min-delta" => o.min_delta = parse(take("--min-delta"), "--min-delta"),
            "--sustained" => o.sustained = parse(take("--sustained"), "--sustained"),
            "--since" => o.since = Some(take("--since").clone()),
            "--top" => o.top = parse(take("--top"), "--top"),
            "--json" => o.json = true,
            "--snapshots" => o.snapshots = parse(take("--snapshots"), "--snapshots"),
            "--inject" => o.inject = take("--inject").clone(),
            other => {
                eprintln!("unknown option `{other}`");
                usage();
            }
        }
    }
    o
}

fn store_of(o: &Options) -> HistoryStore {
    match &o.store {
        Some(path) => HistoryStore::open(path),
        None => {
            eprintln!("--store PATH is required");
            std::process::exit(2);
        }
    }
}

fn anomaly_config(o: &Options) -> AnomalyConfig {
    AnomalyConfig {
        window: o.window,
        z_threshold: o.z,
        min_abs_delta: o.min_delta,
        sustained: o.sustained,
    }
}

fn cmd_append(o: &Options) {
    let store = store_of(o);
    let commit = o.commit.clone().unwrap_or_else(|| {
        eprintln!("append: --commit SHA is required");
        std::process::exit(2);
    });
    let bench = match &o.bench_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("append: cannot read --bench {path}: {e}");
                std::process::exit(2);
            });
            parse_bench_entries(&text)
        }
        None => BTreeMap::new(),
    };
    let meta = SnapshotMeta {
        commit,
        sequence: o.seq,
        // audit: allow(cast, hardware thread count fits u64)
        host_parallelism: default_parallelism() as u64,
        cpu_features: CpuFeatures::get().summary(),
    };
    let snapshot = build_fleet_snapshot(o.fleet, meta, &bench);
    let outcome = store.append(&snapshot).unwrap_or_else(|e| {
        eprintln!("append failed: {e}");
        std::process::exit(1);
    });
    println!(
        "appended {} (seq {}) to {}: {} snapshot(s){}",
        snapshot.meta.commit,
        snapshot.meta.sequence,
        store.path().display(),
        outcome.snapshots,
        if outcome.recovered {
            " [recovered torn tail]"
        } else {
            ""
        },
    );
}

fn cmd_check(o: &Options) {
    let store = store_of(o);
    let snapshots = store.load().unwrap_or_else(|e| {
        eprintln!("check: store is damaged or unreadable: {e}");
        std::process::exit(1);
    });
    let config = anomaly_config(o);
    let drifts = detect_anomalies(&snapshots, &config);
    println!(
        "profile_history check: {} snapshot(s), window {}, z {}, sustained {}",
        snapshots.len(),
        config.window,
        config.z_threshold,
        config.sustained,
    );
    if drifts.is_empty() {
        println!("no sustained drift");
        return;
    }
    for d in &drifts {
        let commit = snapshots
            .get(d.start)
            .map_or("?", |s| s.meta.commit.as_str());
        println!(
            "SUSTAINED DRIFT {} {:+.4} over {} consecutive snapshot(s) starting at {} \
             (index {})",
            d.key, d.last_delta, d.run, commit, d.start,
        );
    }
    std::process::exit(1);
}

fn cmd_report(o: &Options) {
    let store = store_of(o);
    let snapshots = store.load().unwrap_or_else(|e| {
        eprintln!("report: store is damaged or unreadable: {e}");
        std::process::exit(1);
    });
    let Some(report) = regressions_since(&snapshots, o.since.as_deref()) else {
        eprintln!(
            "report: {}",
            match &o.since {
                Some(commit) => format!("commit `{commit}` not found in the history"),
                None => "history is empty".to_owned(),
            }
        );
        std::process::exit(1);
    };
    if o.json {
        print!("{}", report.to_json(o.top));
    } else {
        print!("{}", report.render_text(o.top));
    }
}

/// Writes a deterministic synthetic history: a protobuf-tax share hovering
/// around 25% of 1s of fleet CPU with small seeded jitter, plus an optional
/// injected +5% regression — sustained over the last 6 snapshots, or a
/// single-snapshot blip.
fn cmd_seed_fixture(o: &Options) {
    let store = store_of(o);
    if store.path().exists() {
        std::fs::remove_file(store.path()).unwrap_or_else(|e| {
            eprintln!(
                "seed-fixture: cannot replace {}: {e}",
                store.path().display()
            );
            std::process::exit(2);
        });
    }
    let n = o.snapshots.max(8);
    let mut rng = StdRng::seed_from_u64(o.fixture_seed);
    const TOTAL_NS: u64 = 1_000_000_000;
    const SHIFT_NS: u64 = 50_000_000; // +5% share
    let shifted: Box<dyn Fn(usize) -> bool> = match o.inject.as_str() {
        "sustained" => Box::new(move |i| i + 6 >= n),
        "blip" => Box::new(move |i| i + 6 == n),
        "none" => Box::new(|_| false),
        other => {
            eprintln!("--inject must be sustained|blip|none, got `{other}`");
            std::process::exit(2);
        }
    };
    for i in 0..n {
        let jitter = rng.random_range(0u64..4_000_000); // up to 0.4% share
        let mut proto_ns = TOTAL_NS / 4 + jitter;
        if shifted(i) {
            proto_ns += SHIFT_NS;
        }
        let other_ns = TOTAL_NS - proto_ns;
        let mut snapshot = ProfileSnapshot {
            meta: SnapshotMeta {
                commit: format!("fixture{i:04}"),
                // audit: allow(cast, fixture index fits u64)
                sequence: i as u64,
                host_parallelism: 1,
                cpu_features: "fixture".to_owned(),
            },
            total_exact_ns: TOTAL_NS,
            total_samples: 500_000,
            ..ProfileSnapshot::default()
        };
        snapshot
            .categories
            .insert("dc.protobuf".to_owned(), proto_ns);
        snapshot.categories.insert("core.read".to_owned(), other_ns);
        snapshot
            .stacks
            .insert("spanner.commit;rpc;proto_encode".to_owned(), proto_ns);
        snapshot
            .stacks
            .insert("spanner.commit;storage;read".to_owned(), other_ns);
        store.append(&snapshot).unwrap_or_else(|e| {
            eprintln!("seed-fixture: append failed: {e}");
            std::process::exit(1);
        });
    }
    println!(
        "seeded {} with {n} snapshot(s), inject={}",
        store.path().display(),
        o.inject,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage();
    };
    let options = parse_options(rest);
    match command.as_str() {
        "append" => cmd_append(&options),
        "check" => cmd_check(&options),
        "report" => cmd_report(&options),
        "seed-fixture" => cmd_seed_fixture(&options),
        _ => usage(),
    }
}
