//! Prints every regenerated table and figure in one run:
//! `cargo run --release -p hsdp-bench --bin figures`.

use hsdp_bench::exhibits;

fn main() {
    println!("{}", exhibits::table1());
    let runs = exhibits::run_profiled_fleet(exhibits::bench_fleet_config());
    println!("{}", exhibits::figure2_exhibit(&runs));
    println!("{}", exhibits::figure3_exhibit(&runs));
    println!("{}", exhibits::figure4_exhibit(&runs));
    println!("{}", exhibits::figure5_exhibit(&runs));
    println!("{}", exhibits::figure6_exhibit(&runs));
    println!("{}", exhibits::tables6_7());
    println!("{}", exhibits::figure9());
    println!("{}", exhibits::figure10());
    println!("{}", exhibits::figure13());
    println!("{}", exhibits::figure14());
    println!("{}", exhibits::figure15());
    println!("{}", exhibits::table8(800));
    println!("{}", exhibits::ablation_chain_penalty());
    println!("{}", exhibits::ablation_cache_policy());
    println!("{}", exhibits::ablation_attribution());
}
