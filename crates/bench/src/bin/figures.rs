//! Prints every regenerated table and figure in one run:
//! `cargo run --release -p hsdp-bench --bin figures [-- --parallelism N]`.
//!
//! `--parallelism N` sets the fleet driver's worker-thread count (default:
//! the host's available parallelism). Results are identical at every value;
//! only wall-clock changes.

use hsdp_bench::exhibits;

fn main() {
    let mut config = exhibits::bench_fleet_config();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--parallelism" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .expect("--parallelism requires a positive integer");
                config.parallelism = value.max(1);
            }
            other => {
                eprintln!("unknown option `{other}` (supported: --parallelism N)");
                std::process::exit(2);
            }
        }
    }

    println!("{}", exhibits::table1());
    let runs = exhibits::run_profiled_fleet(config);
    println!("{}", exhibits::figure2_exhibit(&runs));
    println!("{}", exhibits::figure3_exhibit(&runs));
    println!("{}", exhibits::figure4_exhibit(&runs));
    println!("{}", exhibits::figure5_exhibit(&runs));
    println!("{}", exhibits::figure6_exhibit(&runs));
    println!("{}", exhibits::tables6_7());
    println!("{}", exhibits::figure9());
    println!("{}", exhibits::figure10());
    println!("{}", exhibits::figure13());
    println!("{}", exhibits::figure14());
    println!("{}", exhibits::figure15());
    println!("{}", exhibits::table8(800));
    println!("{}", exhibits::ablation_chain_penalty());
    println!("{}", exhibits::ablation_cache_policy());
    println!("{}", exhibits::ablation_attribution());
}
