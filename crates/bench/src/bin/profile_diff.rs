//! Compares two pprof profiles and gates on share drift:
//!
//! ```sh
//! cargo run --release -p hsdp-bench --bin profile_diff -- \
//!     baseline.pb candidate.pb --threshold 0.01 [--json]
//! ```
//!
//! Both inputs are raw `profile.proto` files (as written by
//! `fleet_profile --pprof`). The tool decodes and validates each, recovers
//! per-category and per-stack CPU shares from the decoded bytes — so the
//! gate exercises the full encode → decode → compare loop — prints the
//! largest movements, and exits nonzero when any *category* share moved by
//! more than `--threshold` (absolute share, default 0.01 = one percentage
//! point). Stack-level deltas are reported for diagnosis but only gate when
//! `--stack-threshold` is given.
//!
//! The drift math (union-of-keys deltas, max movement, gate verdict) lives
//! in [`hsdp_profiling::history::DriftReport`], shared with the
//! `profile_history` subsystem; `--json` emits that report in the machine-
//! readable `xtask audit --json` convention (summary scalars, a `clean`
//! verdict, a `findings` array).

use hsdp_profiling::history::{DriftReport, DriftThresholds};
use hsdp_profiling::stacks::{pprof_category_shares, pprof_stack_shares, ShareDelta};
use hsdp_taxes::pprof::Profile;

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 0.01f64;
    let mut stack_threshold: Option<f64> = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--threshold" => {
                threshold = take("--threshold")
                    .parse()
                    .expect("--threshold: invalid number");
            }
            "--stack-threshold" => {
                stack_threshold = Some(
                    take("--stack-threshold")
                        .parse()
                        .expect("--stack-threshold: invalid number"),
                );
            }
            "--json" => json = true,
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown option `{other}` (supported: BASELINE CANDIDATE \
                     --threshold --stack-threshold --json)"
                );
                std::process::exit(2);
            }
            path => paths.push(path.to_owned()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: profile_diff BASELINE.pb CANDIDATE.pb [--threshold 0.01] [--json]");
        std::process::exit(2);
    }

    let baseline = load(&paths[0]);
    let candidate = load(&paths[1]);

    let report = DriftReport::between(
        &pprof_category_shares(&baseline),
        &pprof_category_shares(&candidate),
        &pprof_stack_shares(&baseline),
        &pprof_stack_shares(&candidate),
        DriftThresholds {
            category: threshold,
            stack: stack_threshold,
        },
    );

    if json {
        print!("{}", report.to_json());
        if !report.clean() {
            std::process::exit(1);
        }
        return;
    }

    println!("category share drift (baseline -> candidate):");
    print_deltas(&report.category_deltas, 10);
    println!("stack share drift (top movements):");
    print_deltas(&report.stack_deltas, 10);

    let category_drift = report.max_category_drift();
    let stack_drift = report.max_stack_drift();
    println!(
        "max drift: category {:.4} (threshold {threshold}), stack {:.4}{}",
        category_drift,
        stack_drift,
        stack_threshold.map_or(String::new(), |t| format!(" (threshold {t})")),
    );

    if !report.clean() {
        if category_drift > threshold {
            eprintln!(
                "FAIL: category share drift {category_drift:.4} exceeds threshold {threshold}"
            );
        }
        if let Some(t) = stack_threshold {
            if stack_drift > t {
                eprintln!("FAIL: stack share drift {stack_drift:.4} exceeds threshold {t}");
            }
        }
        std::process::exit(1);
    }
    println!("OK: drift within thresholds");
}

fn load(path: &str) -> Profile {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let profile =
        Profile::decode(&bytes).unwrap_or_else(|e| panic!("{path}: pprof decode failed: {e}"));
    profile
        .validate()
        .unwrap_or_else(|e| panic!("{path}: pprof validation failed: {e}"));
    profile
}

fn print_deltas(deltas: &[ShareDelta], limit: usize) {
    for d in deltas.iter().take(limit) {
        if d.delta() == 0.0 {
            continue;
        }
        println!(
            "  {:+.4}  {:>7.4} -> {:>7.4}  {}",
            d.delta(),
            d.before,
            d.after,
            d.name
        );
    }
}
