//! Request-centric tail-latency report: joins histogram exemplars,
//! space-saving heavy hitters, and per-request tax attribution with the
//! Dapper critical path, and emits a p50-vs-p99 tax-share comparison plus
//! a blame breakdown for the slowest requests.
//!
//! ```sh
//! cargo run --release -p hsdp-bench --bin tail_report -- \
//!     --parallelism 4 --seed 12648430 --json --out /tmp/tail_p4.json
//! diff /tmp/tail_p1.json /tmp/tail_p4.json   # must be empty
//! ```
//!
//! Everything in the output is integer-exact and derived from canonical
//! merged fleet state, so the artifact is byte-identical at any
//! `--parallelism` and under `--perturb` — the same guarantee
//! `fleet_profile` gives the record stream. Default output is a
//! human-readable table; `--json` switches to the canonical
//! `hsdp-tail-report/1` artifact (the xtask audit report convention).

use hsdp_bench::tail::{build_tail_report, render_json, render_text};
use hsdp_platforms::runner::FleetConfig;
use hsdp_simcore::pool::Perturbation;

fn main() {
    let mut config = FleetConfig {
        db_queries: 120,
        analytics_queries: 16,
        fact_rows: 1_500,
        ..FleetConfig::default()
    };
    let mut out_path: Option<String> = None;
    let mut json = false;
    let mut commit = String::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--parallelism" => {
                config.parallelism = parse::<usize>(&take("--parallelism"), "--parallelism").max(1);
            }
            "--shards" => config.shards = parse::<usize>(&take("--shards"), "--shards").max(1),
            "--seed" => config.seed = parse(&take("--seed"), "--seed"),
            // Schedule-perturbation knob: permutes shard dispatch/consumption
            // order under the given seed. Must never change the artifact.
            "--perturb" => {
                config.perturb = Some(Perturbation::new(parse(&take("--perturb"), "--perturb")));
            }
            "--db-queries" => config.db_queries = parse(&take("--db-queries"), "--db-queries"),
            "--json" => json = true,
            "--out" => out_path = Some(take("--out")),
            "--commit" => commit = take("--commit"),
            other => {
                eprintln!(
                    "unknown option `{other}` (supported: --parallelism --shards --seed \
                     --perturb --db-queries --json --out --commit)"
                );
                std::process::exit(2);
            }
        }
    }

    let report = build_tail_report(config, &commit);
    let rendered = if json {
        render_json(&report)
    } else {
        render_text(&report)
    };
    match out_path {
        Some(path) => std::fs::write(&path, &rendered).expect("write tail report"),
        None => print!("{rendered}"),
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: invalid value `{value}`"))
}
