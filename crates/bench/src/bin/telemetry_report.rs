//! Runs the fleet instrumented and emits the three telemetry artifacts:
//!
//! ```sh
//! cargo run --release -p hsdp-bench --bin telemetry_report -- --out /tmp/telemetry
//! # -> /tmp/telemetry/{metrics.json, trace.json, critical_path.json}
//! ```
//!
//! `metrics.json` is byte-identical at every `--parallelism` value (the
//! per-shard registries merge in canonical shard order), `trace.json` loads
//! in Perfetto / `chrome://tracing`, and `critical_path.json` holds the
//! per-platform critical-path attribution with its GWP-CPU agreement ratio.
//! Without `--out`, a human-readable attribution summary prints to stdout.

use hsdp_bench::telemetry_out::{build_artifacts, render_summary};
use hsdp_platforms::runner::FleetConfig;
use hsdp_telemetry::json;

fn main() {
    let mut config = FleetConfig {
        db_queries: 120,
        analytics_queries: 16,
        fact_rows: 1_500,
        ..FleetConfig::default()
    };
    let mut out_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--parallelism" => {
                config.parallelism = parse::<usize>(&take("--parallelism"), "--parallelism").max(1);
            }
            "--shards" => config.shards = parse::<usize>(&take("--shards"), "--shards").max(1),
            "--seed" => config.seed = parse(&take("--seed"), "--seed"),
            "--db-queries" => config.db_queries = parse(&take("--db-queries"), "--db-queries"),
            "--out" => out_dir = Some(take("--out")),
            other => {
                eprintln!(
                    "unknown option `{other}` (supported: --parallelism --shards --seed \
                     --db-queries --out)"
                );
                std::process::exit(2);
            }
        }
    }

    let runs = hsdp_platforms::runner::run_fleet_telemetry(config);
    let artifacts = build_artifacts(&runs);
    for (name, body) in [
        ("metrics.json", &artifacts.metrics_json),
        ("trace.json", &artifacts.trace_json),
        ("critical_path.json", &artifacts.critical_path_json),
    ] {
        if let Err(err) = json::validate(body) {
            panic!("{name} failed self-validation: {err}");
        }
    }

    match out_dir {
        Some(dir) => {
            let dir = std::path::Path::new(&dir);
            artifacts.write_to(dir).expect("write telemetry artifacts");
            println!(
                "wrote metrics.json ({} B), trace.json ({} B), critical_path.json ({} B) to {}",
                artifacts.metrics_json.len(),
                artifacts.trace_json.len(),
                artifacts.critical_path_json.len(),
                dir.display()
            );
        }
        None => print!("{}", render_summary(&runs)),
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: invalid value `{value}`"))
}
