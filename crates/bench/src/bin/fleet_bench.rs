//! Records the perf trajectory of the hot kernels and the parallel fleet
//! driver into `BENCH_fleet.json`:
//!
//! ```sh
//! cargo run --release -p hsdp-bench --bin fleet_bench [-- --out BENCH_fleet.json]
//! ```
//!
//! Entries: CRC32C byte-table baseline vs slicing-by-8, protowire
//! encode/varint kernels, and the sequential-vs-parallel fleet wall-clock
//! comparison (same seed — the outputs are byte-identical by construction,
//! only the wall-clock differs).

use hsdp_bench::harness::{time_ns, BenchRecord, BenchReport};
use hsdp_platforms::runner::{default_parallelism, run_fleet, FleetConfig};
use hsdp_rng::StdRng;
use hsdp_taxes::crc::{crc32c_append, crc32c_append_bytewise};
use hsdp_taxes::varint::encode_varint;
use hsdp_workload::proto_corpus;

const CRC_BUF_LEN: usize = 64 * 1024;
const SEED: u64 = 0x15CA23;

/// Min of `n` timing passes — the least-noise estimator on a shared box.
fn best_of(n: usize, mut pass: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| pass()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let mut out_path = String::from("BENCH_fleet.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown option `{other}` (supported: --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let mut report = BenchReport::new();

    // --- CRC32C: byte-table baseline vs the slicing-by-8 hot path. --------
    let buf: Vec<u8> = (0..CRC_BUF_LEN).map(|i| (i * 131 % 251) as u8).collect();
    let bytewise_ns = best_of(5, || time_ns(200, || crc32c_append_bytewise(0, &buf)));
    let sliced_ns = best_of(5, || time_ns(200, || crc32c_append(0, &buf)));
    assert_eq!(
        crc32c_append(0, &buf),
        crc32c_append_bytewise(0, &buf),
        "fast path must agree with the oracle"
    );
    report.push(BenchRecord {
        id: format!("crc32c/bytewise/{}KiB", CRC_BUF_LEN / 1024),
        ns_per_iter: bytewise_ns,
        bytes_per_iter: Some(CRC_BUF_LEN as u64),
        parallelism: 1,
        seed: 0,
    });
    report.push(BenchRecord {
        id: format!("crc32c/slicing8/{}KiB", CRC_BUF_LEN / 1024),
        ns_per_iter: sliced_ns,
        bytes_per_iter: Some(CRC_BUF_LEN as u64),
        parallelism: 1,
        seed: 0,
    });
    println!(
        "crc32c: bytewise {bytewise_ns:.0} ns/iter, slicing8 {sliced_ns:.0} ns/iter \
         ({:.2}x)",
        bytewise_ns / sliced_ns
    );

    // --- Protowire: fleet-representative message encoding. ----------------
    let mut rng = StdRng::seed_from_u64(SEED);
    let corpus = proto_corpus::corpus(64, &mut rng);
    let encoded_bytes: usize = corpus.iter().map(|m| m.encoded_len()).sum();
    let encode_ns = best_of(5, || {
        time_ns(200, || {
            corpus
                .iter()
                .map(|m| m.encode_to_vec().len())
                .sum::<usize>()
        })
    });
    report.push(BenchRecord {
        id: format!("protowire/encode/corpus{}", corpus.len()),
        ns_per_iter: encode_ns,
        // audit: allow(cast, lossless usize->u64 byte count for the report)
        bytes_per_iter: Some(encoded_bytes as u64),
        parallelism: 1,
        seed: SEED,
    });
    println!(
        "protowire: encode {encode_ns:.0} ns/iter over {encoded_bytes} bytes ({} msgs)",
        corpus.len()
    );

    // --- Varint: the 1-2 byte fast-path regime. ----------------------------
    let values: Vec<u64> = (0..1024u64).map(|i| (i * 37) % 20_000).collect();
    let varint_ns = best_of(5, || {
        time_ns(1_000, || {
            let mut sink = Vec::with_capacity(4 * values.len());
            let mut total = 0usize;
            for &v in &values {
                total += encode_varint(v, &mut sink);
            }
            total
        })
    });
    report.push(BenchRecord {
        id: "varint/encode/1024-small".to_owned(),
        ns_per_iter: varint_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: 0,
    });

    // --- Fleet: sequential vs parallel wall clock, identical output. ------
    let fleet_config = FleetConfig {
        seed: SEED,
        ..FleetConfig::default()
    };
    let parallel_threads = default_parallelism().max(4);
    let sequential_ns = time_ns(1, || {
        run_fleet(FleetConfig {
            parallelism: 1,
            ..fleet_config
        })
    });
    let parallel_ns = time_ns(1, || {
        run_fleet(FleetConfig {
            parallelism: parallel_threads,
            ..fleet_config
        })
    });
    report.push(BenchRecord {
        id: "fleet/wall_clock/sequential".to_owned(),
        ns_per_iter: sequential_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: SEED,
    });
    report.push(BenchRecord {
        id: "fleet/wall_clock/parallel".to_owned(),
        ns_per_iter: parallel_ns,
        bytes_per_iter: None,
        parallelism: parallel_threads,
        seed: SEED,
    });
    println!(
        "fleet: sequential {:.1} ms, parallel(x{parallel_threads}) {:.1} ms \
         ({:.2}x speedup on {} hardware thread(s))",
        sequential_ns / 1e6,
        parallel_ns / 1e6,
        sequential_ns / parallel_ns,
        default_parallelism(),
    );

    report
        .write(std::path::Path::new(&out_path))
        .expect("write BENCH_fleet.json");
    println!("wrote {out_path} ({} entries)", report.records().len());
}
