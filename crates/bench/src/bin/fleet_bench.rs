//! Records the perf trajectory of the hot kernels and the parallel fleet
//! driver into `BENCH_fleet.json`:
//!
//! ```sh
//! cargo run --release -p hsdp-bench --bin fleet_bench \
//!     [-- --out BENCH_fleet.json --git-commit SHA --seq N]
//! ```
//!
//! `--git-commit` / `--seq` stamp provenance onto every entry so bench
//! history joins the per-commit profile history (`profile_history`) on the
//! same keys; the sequence number is the CI run number, passed in rather
//! than derived from wall clock.
//!
//! Entries: CRC32C byte-table baseline vs slicing-by-8 vs the dispatched
//! hardware path, protowire encode/varint kernels, SIMD-vs-scalar pairs for
//! the compress/decompress/bloom kernels (kernel round 3), and the
//! sequential-vs-parallel fleet wall-clock comparison (same seed — the
//! outputs are byte-identical by construction, only the wall-clock differs).

use hsdp_bench::harness::{time_ns, BenchRecord, BenchReport};
use hsdp_bench::tail::{build_tail_report, render_json};
use hsdp_core::category::Platform;
use hsdp_platforms::bloom::{Bloom, ReferenceBloom};
use hsdp_platforms::merge::{merge_runs_reference, merge_sorted_runs, Entry};
use hsdp_platforms::runner::{
    default_parallelism, platform_key, platform_plan, run_bigquery, run_bigtable_tablet, run_fleet,
    run_fleet_telemetry, run_spanner, FleetConfig,
};
use hsdp_rng::{Rng, StdRng};
use hsdp_taxes::compress::{
    compress, compress_reference, compress_scalar, decompress, decompress_reference,
    decompress_scalar,
};
use hsdp_taxes::crc::{crc32c_append, crc32c_append_bytewise, crc32c_append_slicing8};
use hsdp_taxes::dispatch::CpuFeatures;
use hsdp_taxes::sha3::{keccak_f1600, keccak_f1600_reference};
use hsdp_taxes::varint::encode_varint;
use hsdp_workload::proto_corpus;

const CRC_BUF_LEN: usize = 64 * 1024;
const SEED: u64 = 0x15CA23;

/// Min of `n` timing passes — the least-noise estimator on a shared box.
fn best_of(n: usize, mut pass: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| pass()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let mut out_path = String::from("BENCH_fleet.json");
    let mut git_commit = String::new();
    let mut sequence = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--git-commit" => {
                git_commit = args.next().expect("--git-commit requires a commit id");
            }
            "--seq" => {
                sequence = args
                    .next()
                    .expect("--seq requires a number")
                    .parse()
                    .expect("--seq must be a non-negative integer");
            }
            other => {
                eprintln!(
                    "unknown option `{other}` (supported: --out PATH, \
                     --git-commit SHA, --seq N)"
                );
                std::process::exit(2);
            }
        }
    }

    let mut report = BenchReport::new();
    report.set_provenance(&git_commit, sequence);
    let features = CpuFeatures::get();
    println!(
        "host: {} hardware thread(s), cpu features: {}",
        default_parallelism(),
        report.cpu_features(),
    );

    // --- CRC32C: byte-table baseline vs slicing-by-8 vs hardware CRC32. ----
    // `crc32c_append` dispatches to the SSE4.2/ARMv8 instruction when the
    // host has it, so the slicing-by-8 entry calls that tier explicitly.
    let buf: Vec<u8> = (0..CRC_BUF_LEN).map(|i| (i * 131 % 251) as u8).collect();
    let bytewise_ns = best_of(5, || time_ns(200, || crc32c_append_bytewise(0, &buf)));
    let sliced_ns = best_of(5, || time_ns(200, || crc32c_append_slicing8(0, &buf)));
    let hw_ns = best_of(5, || time_ns(200, || crc32c_append(0, &buf)));
    assert_eq!(
        crc32c_append(0, &buf),
        crc32c_append_bytewise(0, &buf),
        "fast path must agree with the oracle"
    );
    report.push(BenchRecord {
        id: format!("crc32c/bytewise/{}KiB", CRC_BUF_LEN / 1024),
        ns_per_iter: bytewise_ns,
        bytes_per_iter: Some(CRC_BUF_LEN as u64),
        parallelism: 1,
        seed: 0,
    });
    report.push(BenchRecord {
        id: format!("crc32c/slicing8/{}KiB", CRC_BUF_LEN / 1024),
        ns_per_iter: sliced_ns,
        bytes_per_iter: Some(CRC_BUF_LEN as u64),
        parallelism: 1,
        seed: 0,
    });
    report.push(BenchRecord {
        id: format!("crc32c/hw/{}KiB", CRC_BUF_LEN / 1024),
        ns_per_iter: hw_ns,
        bytes_per_iter: Some(CRC_BUF_LEN as u64),
        parallelism: 1,
        seed: 0,
    });
    println!(
        "crc32c: bytewise {bytewise_ns:.0} ns/iter, slicing8 {sliced_ns:.0} ns/iter \
         ({:.2}x), hw {hw_ns:.0} ns/iter ({:.2}x over slicing8)",
        bytewise_ns / sliced_ns,
        sliced_ns / hw_ns,
    );
    if features.sse42 || features.aarch64_crc {
        assert!(
            sliced_ns / hw_ns >= 2.0,
            "hardware CRC32C must be >= 2x over slicing-by-8 on the 64 KiB buffer \
             (got {:.2}x)",
            sliced_ns / hw_ns,
        );
    } else {
        eprintln!(
            "crc32c hw gate: SKIPPED (no CRC32 instruction dispatched; features: {})",
            features.summary(),
        );
    }

    // --- Protowire: fleet-representative message encoding. ----------------
    let mut rng = StdRng::seed_from_u64(SEED);
    let corpus = proto_corpus::corpus(64, &mut rng);
    let encoded_bytes: usize = corpus.iter().map(|m| m.encoded_len()).sum();
    let encode_ns = best_of(5, || {
        time_ns(200, || {
            corpus
                .iter()
                .map(|m| m.encode_to_vec().len())
                .sum::<usize>()
        })
    });
    report.push(BenchRecord {
        id: format!("protowire/encode/corpus{}", corpus.len()),
        ns_per_iter: encode_ns,
        // audit: allow(cast, lossless usize->u64 byte count for the report)
        bytes_per_iter: Some(encoded_bytes as u64),
        parallelism: 1,
        seed: SEED,
    });
    println!(
        "protowire: encode {encode_ns:.0} ns/iter over {encoded_bytes} bytes ({} msgs)",
        corpus.len()
    );

    // --- Varint: the 1-2 byte fast-path regime. ----------------------------
    let values: Vec<u64> = (0..1024u64).map(|i| (i * 37) % 20_000).collect();
    let varint_ns = best_of(5, || {
        time_ns(1_000, || {
            let mut sink = Vec::with_capacity(4 * values.len());
            let mut total = 0usize;
            for &v in &values {
                total += encode_varint(v, &mut sink);
            }
            total
        })
    });
    report.push(BenchRecord {
        id: "varint/encode/1024-small".to_owned(),
        ns_per_iter: varint_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: 0,
    });

    // --- Compression: byte-at-a-time reference vs word-at-a-time codec. ---
    // A 64 KiB log-like corpus of hot-key row traffic: a few thousand
    // distinct timestamps and a couple hundred users, so lines repeat with
    // small variations — the compressibility regime SSTable blocks live in.
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut corpus = Vec::with_capacity(CRC_BUF_LEN + 128);
    while corpus.len() < CRC_BUF_LEN {
        let ts = rng.random_range(0u32..2_000);
        let shard = rng.random_range(0u32..64);
        let user = rng.random_range(0u64..200);
        corpus.extend_from_slice(
            format!("ts=1681{ts:06} shard={shard:02} user={user:06} op=read status=OK\n")
                .as_bytes(),
        );
    }
    corpus.truncate(CRC_BUF_LEN);
    // The encoders may pick different matches; all streams must decode to
    // the corpus under *both* decoders (one shared format). `compress` /
    // `decompress` dispatch to the AVX2 tier when the host has it; the
    // word-at-a-time/chunked-copy entries call the scalar tier explicitly.
    let packed = compress(&corpus);
    let packed_ref = compress_reference(&corpus);
    assert_eq!(
        packed,
        compress_scalar(&corpus),
        "SIMD and scalar compress must emit identical bytes"
    );
    assert_eq!(decompress(&packed).expect("fast/fast"), corpus);
    assert_eq!(decompress_scalar(&packed).expect("fast/scalar"), corpus);
    assert_eq!(decompress_reference(&packed).expect("fast/ref"), corpus);
    assert_eq!(decompress(&packed_ref).expect("ref/fast"), corpus);
    let ref_compress_ns = best_of(5, || time_ns(50, || compress_reference(&corpus).len()));
    let scalar_compress_ns = best_of(5, || time_ns(50, || compress_scalar(&corpus).len()));
    let simd_compress_ns = best_of(5, || time_ns(50, || compress(&corpus).len()));
    let ref_decompress_ns = best_of(5, || {
        time_ns(50, || decompress_reference(&packed).map(|v| v.len()))
    });
    let scalar_decompress_ns = best_of(5, || {
        time_ns(50, || decompress_scalar(&packed).map(|v| v.len()))
    });
    let simd_decompress_ns = best_of(5, || time_ns(50, || decompress(&packed).map(|v| v.len())));
    for (id, ns) in [
        ("compress/reference/64KiB", ref_compress_ns),
        ("compress/word-at-a-time/64KiB", scalar_compress_ns),
        ("compress/simd/64KiB", simd_compress_ns),
        ("decompress/reference/64KiB", ref_decompress_ns),
        ("decompress/chunked-copy/64KiB", scalar_decompress_ns),
        ("decompress/simd/64KiB", simd_decompress_ns),
    ] {
        report.push(BenchRecord {
            id: id.to_owned(),
            ns_per_iter: ns,
            bytes_per_iter: Some(CRC_BUF_LEN as u64),
            parallelism: 1,
            seed: SEED,
        });
    }
    println!(
        "compress: reference {ref_compress_ns:.0} ns/iter, word-at-a-time \
         {scalar_compress_ns:.0} ns/iter ({:.2}x), simd {simd_compress_ns:.0} ns/iter \
         ({:.2}x over scalar); decompress: reference {ref_decompress_ns:.0} ns/iter, \
         chunked-copy {scalar_decompress_ns:.0} ns/iter ({:.2}x), simd \
         {simd_decompress_ns:.0} ns/iter ({:.2}x over scalar)",
        ref_compress_ns / scalar_compress_ns,
        scalar_compress_ns / simd_compress_ns,
        ref_decompress_ns / scalar_decompress_ns,
        scalar_decompress_ns / simd_decompress_ns,
    );
    assert!(
        ref_compress_ns / scalar_compress_ns >= 2.0,
        "compress must be >= 2x over the reference on the 64 KiB corpus"
    );

    // --- Compression, match-extension regime: the SIMD compress gate. ------
    // The fleet-log corpus above averages ~16-byte matches, so each match
    // costs one serial hash->probe->compare dependence chain that no vector
    // width can shorten — SIMD lands ~1x there and the pair is recorded
    // ungated. Long matches are where the vector prefix comparator pays:
    // this corpus repeats a 2 KiB hot block (SSTable hot-tablet readback),
    // so compression time is dominated by 32-bytes-per-cycle match
    // extension, and the AVX2 tier must clear 2x over the scalar tier.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xB10C);
    let hot_block: Vec<u8> = (0..2048)
        .map(|_| {
            let b = rng.random_range(0u32..255);
            // audit: allow(cast, bench corpus byte from a bounded range)
            b as u8
        })
        .collect();
    let mut hot_corpus = Vec::with_capacity(CRC_BUF_LEN);
    while hot_corpus.len() < CRC_BUF_LEN {
        hot_corpus.extend_from_slice(&hot_block);
    }
    hot_corpus.truncate(CRC_BUF_LEN);
    assert_eq!(
        compress(&hot_corpus),
        compress_scalar(&hot_corpus),
        "SIMD and scalar compress must emit identical bytes (hot-block corpus)"
    );
    let scalar_hot_ns = best_of(5, || time_ns(50, || compress_scalar(&hot_corpus).len()));
    let simd_hot_ns = best_of(5, || time_ns(50, || compress(&hot_corpus).len()));
    for (id, ns) in [
        ("compress/scalar/hot-block-64KiB", scalar_hot_ns),
        ("compress/simd/hot-block-64KiB", simd_hot_ns),
    ] {
        report.push(BenchRecord {
            id: id.to_owned(),
            ns_per_iter: ns,
            bytes_per_iter: Some(CRC_BUF_LEN as u64),
            parallelism: 1,
            seed: SEED ^ 0xB10C,
        });
    }
    println!(
        "compress hot-block: scalar {scalar_hot_ns:.0} ns/iter, simd {simd_hot_ns:.0} \
         ns/iter ({:.2}x)",
        scalar_hot_ns / simd_hot_ns,
    );
    if features.avx2 {
        assert!(
            scalar_hot_ns / simd_hot_ns >= 2.0,
            "SIMD compress must be >= 2x over scalar on the match-extension corpus \
             (got {:.2}x)",
            scalar_hot_ns / simd_hot_ns,
        );
    } else {
        eprintln!(
            "simd compress gate: SKIPPED (no AVX2 tier dispatched; features: {})",
            features.summary(),
        );
    }

    // --- Bloom: modulo-probed reference vs cache-line-blocked filter. ------
    let keys: Vec<Vec<u8>> = (0..10_000u64)
        .map(|i| format!("row-key-{i:08}").into_bytes())
        .collect();
    let mut blocked = Bloom::new(keys.len());
    let mut reference = ReferenceBloom::new(keys.len());
    for key in &keys {
        blocked.insert(key);
        reference.insert(key);
    }
    let ref_bloom_ns = best_of(5, || {
        time_ns(50, || {
            keys.iter().filter(|k| reference.may_contain(k)).count()
        })
    });
    let blocked_bloom_ns = best_of(5, || {
        time_ns(50, || {
            keys.iter().filter(|k| blocked.may_contain(k)).count()
        })
    });
    assert_eq!(
        keys.iter().filter(|k| blocked.may_contain(k)).count(),
        keys.len(),
        "blocked filter must report every inserted key"
    );
    report.push(BenchRecord {
        id: "bloom/reference-probe/10k-keys".to_owned(),
        ns_per_iter: ref_bloom_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: 0,
    });
    report.push(BenchRecord {
        id: "bloom/blocked-probe/10k-keys".to_owned(),
        ns_per_iter: blocked_bloom_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: 0,
    });
    println!(
        "bloom: reference {ref_bloom_ns:.0} ns/iter, blocked {blocked_bloom_ns:.0} ns/iter \
         ({:.2}x) over {} probes",
        ref_bloom_ns / blocked_bloom_ns,
        keys.len()
    );
    assert!(
        ref_bloom_ns / blocked_bloom_ns >= 2.0,
        "blocked bloom probes must be >= 2x over the reference"
    );

    // --- Bloom block probe: scalar early-exit loop vs AVX2 whole-block. ----
    // Isolates the 64-byte block test (`may_contain` dispatches it): 4096
    // mixed-density blocks probed per iteration, identical verdicts required.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xB100);
    let probe_blocks: Vec<([u64; 8], u64)> = (0..4096)
        .map(|i| {
            let mut block = [0u64; 8];
            for word in &mut block {
                *word = match i % 3 {
                    0 => rng.random(),
                    1 => rng.random::<u64>() | rng.random::<u64>(),
                    _ => u64::MAX,
                };
            }
            (block, rng.random())
        })
        .collect();
    let scalar_probe_ns = best_of(5, || {
        time_ns(200, || {
            probe_blocks
                .iter()
                .filter(|(block, h2)| Bloom::block_probe_scalar(block, *h2))
                .count()
        })
    });
    report.push(BenchRecord {
        id: "bloom/block-probe/scalar/4096-blocks".to_owned(),
        ns_per_iter: scalar_probe_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: SEED ^ 0xB100,
    });
    if let Some(simd_probe) = hsdp_platforms::simd::block_probe_fn() {
        for (block, h2) in &probe_blocks {
            assert_eq!(
                simd_probe(block, *h2),
                Bloom::block_probe_scalar(block, *h2),
                "SIMD and scalar block probes must agree"
            );
        }
        let simd_probe_ns = best_of(5, || {
            time_ns(200, || {
                probe_blocks
                    .iter()
                    .filter(|(block, h2)| simd_probe(block, *h2))
                    .count()
            })
        });
        report.push(BenchRecord {
            id: "bloom/block-probe/simd/4096-blocks".to_owned(),
            ns_per_iter: simd_probe_ns,
            bytes_per_iter: None,
            parallelism: 1,
            seed: SEED ^ 0xB100,
        });
        println!(
            "bloom block probe: scalar {scalar_probe_ns:.0} ns/iter, simd \
             {simd_probe_ns:.0} ns/iter ({:.2}x) over {} blocks",
            scalar_probe_ns / simd_probe_ns,
            probe_blocks.len(),
        );
    } else {
        eprintln!(
            "bloom simd probe pair: SKIPPED (no AVX2 tier dispatched; features: {})",
            features.summary(),
        );
    }

    // --- Compaction merge: BTreeMap reference vs loser tree. ---------------
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xFEED);
    let runs: Vec<Vec<Entry>> = (0..8usize)
        .map(|r| {
            let mut run: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
            for _ in 0..2_000 {
                let key_id = rng.random_range(0u32..6_000);
                run.insert(
                    format!("row-{key_id:06}").into_bytes(),
                    format!("run-{r}-payload-{key_id}").into_bytes(),
                );
            }
            run.into_iter().collect()
        })
        .collect();
    assert_eq!(
        merge_sorted_runs(runs.clone()),
        merge_runs_reference(runs.clone()),
        "loser tree must match the BTreeMap merge"
    );
    let merged_len = merge_sorted_runs(runs.clone()).len();
    let ref_merge_ns = best_of(5, || {
        time_ns(20, || merge_runs_reference(runs.clone()).len())
    });
    let tree_merge_ns = best_of(5, || time_ns(20, || merge_sorted_runs(runs.clone()).len()));
    report.push(BenchRecord {
        id: "compaction/merge-btreemap/8x2000".to_owned(),
        ns_per_iter: ref_merge_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: SEED ^ 0xFEED,
    });
    report.push(BenchRecord {
        id: "compaction/merge-loser-tree/8x2000".to_owned(),
        ns_per_iter: tree_merge_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: SEED ^ 0xFEED,
    });
    println!(
        "compaction merge: btreemap {:.1} us/iter, loser tree {:.1} us/iter \
         ({:.2}x) -> {merged_len} entries",
        ref_merge_ns / 1e3,
        tree_merge_ns / 1e3,
        ref_merge_ns / tree_merge_ns,
    );

    // --- SHA3: 5x5-array reference vs flat unrolled Keccak-f[1600]. --------
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5A3);
    let mut state = [0u64; 25];
    for lane in &mut state {
        *lane = rng.random();
    }
    let mut check_fast = state;
    let mut check_ref = state;
    keccak_f1600(&mut check_fast);
    keccak_f1600_reference(&mut check_ref);
    assert_eq!(
        check_fast, check_ref,
        "flat permutation must match the oracle"
    );
    let ref_keccak_ns = best_of(5, || {
        time_ns(2_000, || {
            let mut s = state;
            keccak_f1600_reference(&mut s);
            s[0]
        })
    });
    let flat_keccak_ns = best_of(5, || {
        time_ns(2_000, || {
            let mut s = state;
            keccak_f1600(&mut s);
            s[0]
        })
    });
    report.push(BenchRecord {
        id: "sha3/keccak-f1600-reference".to_owned(),
        ns_per_iter: ref_keccak_ns,
        bytes_per_iter: Some(200),
        parallelism: 1,
        seed: SEED ^ 0x5A3,
    });
    report.push(BenchRecord {
        id: "sha3/keccak-f1600-flat".to_owned(),
        ns_per_iter: flat_keccak_ns,
        bytes_per_iter: Some(200),
        parallelism: 1,
        seed: SEED ^ 0x5A3,
    });
    println!(
        "sha3: keccak-f1600 reference {ref_keccak_ns:.0} ns/perm, flat \
         {flat_keccak_ns:.0} ns/perm ({:.2}x)",
        ref_keccak_ns / flat_keccak_ns
    );

    // --- Fleet: sequential vs parallel wall clock, identical output. ------
    let fleet_config = FleetConfig {
        seed: SEED,
        ..FleetConfig::default()
    };
    let parallel_threads = default_parallelism().max(4);
    let sequential_ns = time_ns(1, || {
        run_fleet(FleetConfig {
            parallelism: 1,
            ..fleet_config
        })
    });
    let parallel_ns = time_ns(1, || {
        run_fleet(FleetConfig {
            parallelism: parallel_threads,
            ..fleet_config
        })
    });
    report.push(BenchRecord {
        id: "fleet/wall_clock/sequential".to_owned(),
        ns_per_iter: sequential_ns,
        bytes_per_iter: None,
        parallelism: 1,
        seed: SEED,
    });
    report.push(BenchRecord {
        id: "fleet/wall_clock/parallel".to_owned(),
        ns_per_iter: parallel_ns,
        bytes_per_iter: None,
        parallelism: parallel_threads,
        seed: SEED,
    });
    println!(
        "fleet: sequential {:.1} ms, parallel(x{parallel_threads}) {:.1} ms \
         ({:.2}x speedup on {} hardware thread(s))",
        sequential_ns / 1e6,
        parallel_ns / 1e6,
        sequential_ns / parallel_ns,
        default_parallelism(),
    );

    // --- Fleet: parallelism matched to the hardware. -----------------------
    // The forced-x4 entry above is kept comparable across machines; this one
    // runs at the host's actual thread count, so the two together expose
    // oversubscription (on a 1-thread host, x4 pays pure scheduling overhead
    // over this entry).
    let hw_threads = default_parallelism();
    let parallel_hw_ns = time_ns(1, || {
        run_fleet(FleetConfig {
            parallelism: hw_threads,
            ..fleet_config
        })
    });
    report.push(BenchRecord {
        id: "fleet/wall_clock/parallel_hw".to_owned(),
        ns_per_iter: parallel_hw_ns,
        bytes_per_iter: None,
        parallelism: hw_threads,
        seed: SEED,
    });
    println!(
        "fleet: parallel(hw x{hw_threads}) {:.1} ms ({:.2}x vs sequential)",
        parallel_hw_ns / 1e6,
        sequential_ns / parallel_hw_ns,
    );

    // Parallel-speedup gate, laddered to the host. A 1-thread runner cannot
    // overlap shard jobs at all, so the gate skips with a note — the
    // `host_parallelism` field stamped on every BENCH_fleet.json entry
    // records that this run could not measure speedup. Small 2-3 thread
    // runners must show modest overlap; 4+ threads must reach the 2x target
    // now that the BigTable straggler is split into per-tablet jobs.
    let hw_speedup = sequential_ns / parallel_hw_ns;
    if hw_threads == 1 {
        println!(
            "fleet speedup gate: SKIPPED (1 hardware thread; shard jobs \
             cannot overlap, see host_parallelism in the report)"
        );
    } else {
        let floor = if hw_threads >= 4 { 2.0 } else { 1.2 };
        assert!(
            hw_speedup >= floor,
            "parallel fleet speedup {hw_speedup:.2}x is below the {floor:.1}x \
             floor on {hw_threads} hardware threads"
        );
        println!(
            "fleet speedup gate: {hw_speedup:.2}x >= {floor:.1}x on \
             {hw_threads} hardware threads"
        );
    }

    // --- Fleet: per-unit shard wall-clocks (straggler gate). ---------------
    // Times every *schedulable unit* of the fleet in isolation — Spanner and
    // BigQuery shards run whole, BigTable shards run as one job per tablet,
    // exactly the granularity the dispatcher queues. The heaviest unit over
    // the summed unit time bounds parallel speedup (N workers can never beat
    // 1/max_fraction), so the bench fails when any single unit exceeds 40%
    // of the total: that is the straggler regression this PR removes.
    const STRAGGLER_CEILING: f64 = 0.40;
    let mut units: Vec<(String, f64)> = Vec::new();
    for &platform in &Platform::ALL {
        let plan = platform_plan(&fleet_config, platform);
        let mut total_ns = 0.0f64;
        for (shard_idx, shard) in plan.shards().iter().enumerate() {
            match platform {
                Platform::Spanner => {
                    let unit_ns = time_ns(1, || run_spanner(shard.items, shard.seed).len());
                    total_ns += unit_ns;
                    units.push((format!("spanner/s{shard_idx}"), unit_ns));
                }
                Platform::BigTable => {
                    let tablets = fleet_config.tablets.max(1);
                    for tablet in 0..tablets {
                        let unit_ns = time_ns(1, || {
                            run_bigtable_tablet(
                                shard.items,
                                shard.seed,
                                shard_idx,
                                tablet,
                                tablets,
                                false,
                                None,
                            )
                        });
                        total_ns += unit_ns;
                        report.push(BenchRecord {
                            id: format!(
                                "fleet/shard_wall_clock/bigtable_tablet/s{shard_idx}_t{tablet}"
                            ),
                            ns_per_iter: unit_ns,
                            bytes_per_iter: None,
                            parallelism: 1,
                            seed: SEED,
                        });
                        units.push((format!("bigtable/s{shard_idx}_t{tablet}"), unit_ns));
                    }
                }
                Platform::BigQuery => {
                    let unit_ns = time_ns(1, || {
                        run_bigquery(shard.items, fleet_config.fact_rows, shard.seed).len()
                    });
                    total_ns += unit_ns;
                    units.push((format!("bigquery/s{shard_idx}"), unit_ns));
                }
            }
        }
        report.push(BenchRecord {
            id: format!("fleet/shard_wall_clock/{}", platform_key(platform)),
            ns_per_iter: total_ns,
            bytes_per_iter: None,
            parallelism: 1,
            seed: SEED,
        });
        println!(
            "fleet shards: {} total {:.1} ms over {} shard(s)",
            platform_key(platform),
            total_ns / 1e6,
            plan.shards().len(),
        );
    }
    let units_total_ns: f64 = units.iter().map(|(_, ns)| ns).sum();
    let (worst_unit, worst_ns) = units.iter().fold(("", 0.0f64), |acc, (id, ns)| {
        if *ns > acc.1 {
            (id.as_str(), *ns)
        } else {
            acc
        }
    });
    let straggler_fraction = worst_ns / units_total_ns.max(1.0);
    println!(
        "fleet straggler gate: heaviest unit {worst_unit} {:.1} ms = {:.0}% of \
         {:.1} ms total over {} units (ceiling {:.0}%)",
        worst_ns / 1e6,
        100.0 * straggler_fraction,
        units_total_ns / 1e6,
        units.len(),
        100.0 * STRAGGLER_CEILING,
    );
    assert!(
        straggler_fraction <= STRAGGLER_CEILING,
        "straggler unit {worst_unit} holds {:.0}% of fleet shard time \
         (ceiling {:.0}%): the schedule cannot parallelize past it",
        100.0 * straggler_fraction,
        100.0 * STRAGGLER_CEILING,
    );

    // --- Telemetry overhead: instrumented vs uninstrumented fleet run. -----
    // Same seed, same parallelism; the only difference is live per-shard
    // metrics registries and the artifact-ready telemetry plumbing. The
    // counters ride alongside work the simulator already does, so the
    // instrumented run must stay within 10% of the baseline.
    let probe_config = FleetConfig {
        parallelism: parallel_threads,
        ..fleet_config
    };
    let baseline_ns = best_of(5, || time_ns(1, || run_fleet(probe_config)));
    let instrumented_ns = best_of(5, || time_ns(1, || run_fleet_telemetry(probe_config)));
    report.push(BenchRecord {
        id: "fleet/telemetry/uninstrumented".to_owned(),
        ns_per_iter: baseline_ns,
        bytes_per_iter: None,
        parallelism: parallel_threads,
        seed: SEED,
    });
    report.push(BenchRecord {
        id: "fleet/telemetry/instrumented".to_owned(),
        ns_per_iter: instrumented_ns,
        bytes_per_iter: None,
        parallelism: parallel_threads,
        seed: SEED,
    });
    println!(
        "fleet telemetry: uninstrumented {:.1} ms, instrumented {:.1} ms \
         ({:.1}% overhead)",
        baseline_ns / 1e6,
        instrumented_ns / 1e6,
        (instrumented_ns / baseline_ns - 1.0) * 100.0,
    );
    assert!(
        instrumented_ns <= baseline_ns * 1.10,
        "telemetry overhead above 10%: instrumented {instrumented_ns:.0} ns vs \
         uninstrumented {baseline_ns:.0} ns"
    );

    // --- Tail-attribution overhead: report build on top of the fleet. -----
    // Attribution off is the instrumented fleet run alone; attribution on
    // adds everything `tail_report` does — request-id exemplar joins,
    // per-shard space-saving sketches merged in canonical order, cohort
    // splits, and blame rendering. The attribution pass is pure folding
    // over already-produced records, so it must stay within 10% of the
    // fleet run it decorates.
    let attribution_off_ns = best_of(5, || time_ns(1, || run_fleet_telemetry(probe_config)));
    let attribution_on_ns = best_of(5, || {
        time_ns(1, || {
            render_json(&build_tail_report(probe_config, "")).len()
        })
    });
    report.push(BenchRecord {
        id: "fleet/tail_attribution/off".to_owned(),
        ns_per_iter: attribution_off_ns,
        bytes_per_iter: None,
        parallelism: parallel_threads,
        seed: SEED,
    });
    report.push(BenchRecord {
        id: "fleet/tail_attribution/on".to_owned(),
        ns_per_iter: attribution_on_ns,
        bytes_per_iter: None,
        parallelism: parallel_threads,
        seed: SEED,
    });
    println!(
        "fleet tail attribution: off {:.1} ms, on {:.1} ms ({:.1}% overhead)",
        attribution_off_ns / 1e6,
        attribution_on_ns / 1e6,
        (attribution_on_ns / attribution_off_ns - 1.0) * 100.0,
    );
    assert!(
        attribution_on_ns <= attribution_off_ns * 1.10,
        "tail attribution overhead above 10%: on {attribution_on_ns:.0} ns vs \
         off {attribution_off_ns:.0} ns"
    );

    report
        .write(std::path::Path::new(&out_path))
        .expect("write BENCH_fleet.json");
    println!("wrote {out_path} ({} entries)", report.records().len());
}
