//! A minimal, dependency-free stand-in for the Criterion benchmark API.
//!
//! The figure/table benches only need "run this closure repeatedly and
//! report wall-clock stats", so this module implements exactly the subset
//! of the `criterion` surface those benches use — [`Criterion::default`],
//! the `sample_size`/`measurement_time`/`warm_up_time` builders,
//! [`Criterion::bench_function`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — without pulling the real crate (the
//! workspace builds with no external dependencies).
//!
//! Timing methodology: after a warm-up period, the routine's per-iteration
//! cost is estimated, the measurement window is split into `sample_size`
//! samples of that many iterations each, and min/mean/max per-iteration
//! times are reported on stdout.

use std::time::{Duration, Instant};

/// Benchmark driver configured like `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark (min 2).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for measurement samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up period before any sample is recorded.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `routine` under the configured schedule and prints a summary.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Split the measurement budget into samples.
        let budget = self.measurement_time.as_secs_f64();
        let per_sample = budget / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples_ns.push(b.elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let (mut lo, mut hi, mut sum) = (f64::INFINITY, 0.0f64, 0.0f64);
        for &s in &samples_ns {
            lo = lo.min(s);
            hi = hi.max(s);
            sum += s;
        }
        let mean = sum / samples_ns.len() as f64;
        println!(
            "{id:<44} time: [{} {} {}]  ({} samples x {iters_per_sample} iters)",
            fmt_ns(lo),
            fmt_ns(mean),
            fmt_ns(hi),
            samples_ns.len(),
        );
        self
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks, mirroring
    /// `criterion::Criterion::benchmark_group`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing a throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    /// Runs `routine` as `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        if let Some(t) = self.throughput {
            let label = match t {
                Throughput::Bytes(n) => format!("{n} bytes/iter"),
                Throughput::Elements(n) => format!("{n} elems/iter"),
            };
            println!("{full}: throughput basis {label}");
        }
        self.criterion.bench_function(&full, routine);
        self
    }

    /// Ends the group (retained for API parity; reporting is immediate).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

// ---------------------------------------------------------------------------
// Machine-readable results (BENCH_fleet.json).
// ---------------------------------------------------------------------------

/// One machine-readable benchmark result destined for `BENCH_fleet.json`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark id, e.g. `"crc32c/slicing8/64KiB"`.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Bytes processed per iteration, when throughput is meaningful.
    pub bytes_per_iter: Option<u64>,
    /// Worker threads in play (1 for single-threaded kernels).
    pub parallelism: usize,
    /// The seed the workload ran with (0 when seedless).
    pub seed: u64,
}

impl BenchRecord {
    /// Derived throughput in MiB/s, when `bytes_per_iter` is known.
    #[must_use]
    pub fn mib_per_sec(&self) -> Option<f64> {
        // audit: allow(cast, reporting-only conversion of a byte count to float)
        self.bytes_per_iter
            .map(|b| b as f64 / (1 << 20) as f64 / (self.ns_per_iter / 1e9))
    }
}

/// Accumulates [`BenchRecord`]s and serializes them as JSON, so the perf
/// trajectory of the hot kernels and the fleet driver is recorded
/// run-over-run instead of scrolling away on stdout.
///
/// Every entry is stamped with the *host's* hardware parallelism, so a
/// reader of `BENCH_fleet.json` can tell a genuine parallel-speedup
/// regression from a run that simply landed on a smaller machine (a 1-CPU
/// runner cannot show fleet speedup at all — the speedup gate skips there).
/// Since kernel round 3 each entry also carries the dispatched CPU feature
/// summary (e.g. `"sse4.2+pclmul+avx2"` or `"scalar(forced)"`), so a
/// SIMD-vs-scalar ratio recorded on one host is never compared against a
/// run where the fast paths silently failed to dispatch.
/// Every entry also carries provenance — the `git_commit` it measured and a
/// monotonic `sequence` number (CI run number, passed in via CLI rather
/// than derived from wall clock) — so bench history joins the per-commit
/// profile history on the same keys.
#[derive(Debug, Clone)]
pub struct BenchReport {
    records: Vec<BenchRecord>,
    host_parallelism: usize,
    cpu_features: String,
    git_commit: String,
    sequence: u64,
}

impl Default for BenchReport {
    fn default() -> Self {
        Self::new()
    }
}

impl BenchReport {
    /// An empty report stamped with this host's hardware parallelism.
    #[must_use]
    pub fn new() -> Self {
        BenchReport {
            records: Vec::new(),
            host_parallelism: hsdp_platforms::runner::default_parallelism(),
            cpu_features: hsdp_taxes::dispatch::CpuFeatures::get().summary(),
            git_commit: String::new(),
            sequence: 0,
        }
    }

    /// Stamps provenance onto every entry: the commit under measurement
    /// and a monotonic sequence number (e.g. the CI run number). Both come
    /// from the caller — never from the wall clock — so reruns of the same
    /// commit are identical.
    pub fn set_provenance(&mut self, git_commit: &str, sequence: u64) {
        self.git_commit = git_commit.to_owned();
        self.sequence = sequence;
    }

    /// The commit id stamped on every entry (empty when not provided).
    #[must_use]
    pub fn git_commit(&self) -> &str {
        &self.git_commit
    }

    /// The monotonic sequence number stamped on every entry.
    #[must_use]
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// The host hardware parallelism stamped on every entry.
    #[must_use]
    pub fn host_parallelism(&self) -> usize {
        self.host_parallelism
    }

    /// The dispatched CPU feature summary stamped on every entry.
    #[must_use]
    pub fn cpu_features(&self) -> &str {
        &self.cpu_features
    }

    /// Appends one result.
    pub fn push(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// The records collected so far.
    #[must_use]
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Renders the report as a JSON document (hand-rolled: the workspace
    /// carries no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"hsdp-bench-fleet/1\",\n  \"entries\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"id\": \"{}\"", json_escape(&r.id)));
            out.push_str(&format!(", \"ns_per_iter\": {}", json_f64(r.ns_per_iter)));
            if let Some(bytes) = r.bytes_per_iter {
                out.push_str(&format!(", \"bytes_per_iter\": {bytes}"));
            }
            if let Some(mib) = r.mib_per_sec() {
                out.push_str(&format!(", \"throughput_mib_s\": {}", json_f64(mib)));
            }
            out.push_str(&format!(", \"parallelism\": {}", r.parallelism));
            out.push_str(&format!(
                ", \"host_parallelism\": {}",
                self.host_parallelism
            ));
            out.push_str(&format!(
                ", \"cpu_features\": \"{}\"",
                json_escape(&self.cpu_features)
            ));
            out.push_str(&format!(
                ", \"git_commit\": \"{}\"",
                json_escape(&self.git_commit)
            ));
            out.push_str(&format!(", \"sequence\": {}", self.sequence));
            out.push_str(&format!(", \"seed\": {}", r.seed));
            out.push('}');
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a finite JSON number (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

/// Times `routine` over `iters` iterations, returning mean ns/iter.
///
/// A deliberately simple companion to [`Criterion`] for benches that feed
/// [`BenchReport`]: one timed block, no sampling schedule, suitable for
/// kernels whose cost is stable (checksums, codecs, fleet runs).
pub fn time_ns<O>(iters: u64, mut routine: impl FnMut() -> O) -> f64 {
    let iters = iters.max(1);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(routine());
    }
    // audit: allow(cast, reporting-only conversion of an iteration count)
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// Per-sample iteration driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        c.bench_function("harness/self_test", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0, "routine never ran");
    }

    #[test]
    fn bench_report_renders_valid_shape() {
        let mut report = BenchReport::new();
        report.push(BenchRecord {
            id: "crc32c/slicing8/64KiB".to_owned(),
            ns_per_iter: 1234.5,
            bytes_per_iter: Some(65_536),
            parallelism: 1,
            seed: 7,
        });
        report.push(BenchRecord {
            id: "fleet/wall_clock \"p=4\"".to_owned(),
            ns_per_iter: 5e6,
            bytes_per_iter: None,
            parallelism: 4,
            seed: 0xC0FFEE,
        });
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"hsdp-bench-fleet/1\""));
        assert!(json.contains("\"ns_per_iter\": 1234.500"));
        assert!(json.contains("\"throughput_mib_s\""));
        assert!(
            json.contains("\\\"p=4\\\""),
            "quotes must be escaped: {json}"
        );
        assert!(json.contains("\"parallelism\": 4"));
        assert!(
            json.contains(&format!(
                "\"host_parallelism\": {}",
                report.host_parallelism()
            )),
            "entries must carry the host's hardware parallelism: {json}"
        );
        assert!(report.host_parallelism() >= 1);
        assert!(
            json.contains(&format!("\"cpu_features\": \"{}\"", report.cpu_features())),
            "entries must carry the dispatched feature summary: {json}"
        );
        assert!(!report.cpu_features().is_empty());
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn bench_report_stamps_provenance() {
        let mut report = BenchReport::new();
        report.push(BenchRecord {
            id: "a".to_owned(),
            ns_per_iter: 1.0,
            bytes_per_iter: None,
            parallelism: 1,
            seed: 0,
        });
        report.push(BenchRecord {
            id: "b".to_owned(),
            ns_per_iter: 2.0,
            bytes_per_iter: None,
            parallelism: 1,
            seed: 0,
        });
        let unstamped = report.to_json();
        assert_eq!(
            unstamped.matches("\"git_commit\": \"\"").count(),
            2,
            "every entry carries the (empty) commit stamp: {unstamped}"
        );
        report.set_provenance("deadbeef", 42);
        let json = report.to_json();
        assert_eq!(
            json.matches("\"git_commit\": \"deadbeef\"").count(),
            2,
            "every entry carries the commit stamp: {json}"
        );
        assert_eq!(json.matches("\"sequence\": 42").count(), 2);
        assert_eq!(report.git_commit(), "deadbeef");
        assert_eq!(report.sequence(), 42);
    }

    #[test]
    fn time_ns_reports_positive_cost() {
        let ns = time_ns(100, || std::hint::black_box(3u64).wrapping_mul(7));
        assert!(ns > 0.0);
        assert!(ns.is_finite());
    }

    #[test]
    fn group_macro_compiles_both_forms() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1u8));
        }
        fn quick() -> Criterion {
            Criterion::default()
                .sample_size(2)
                .measurement_time(Duration::from_millis(5))
                .warm_up_time(Duration::from_millis(1))
        }
        criterion_group!(name = configured; config = quick(); targets = target);
        configured();
    }
}
