//! # hsdp-bench
//!
//! The experiment harness: every table and figure of the paper's evaluation
//! has a regeneration function here, consumed by the Criterion benches
//! (`benches/`) and the `figures` binary. Each function returns the
//! rendered exhibit as text so benches can both print and time it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exhibits;
pub mod harness;
pub mod snapshot;
pub mod tail;
pub mod telemetry_out;

pub use exhibits::*;
