//! Regeneration functions for every table and figure in the paper's
//! evaluation, each returning the rendered exhibit as text.

use hsdp_core::accel::Speedup;
use hsdp_core::category::{BroadCategory, Platform};
use hsdp_core::paper;
use hsdp_core::study;
use hsdp_platforms::runner::FleetConfig;
use hsdp_profiling::e2e::figure2;
use hsdp_profiling::gwp::{CycleProfile, GwpConfig, GwpProfiler, LeafWork};
use hsdp_profiling::microarch::regenerate_tables;
use hsdp_profiling::report;
use hsdp_profiling::stacks::StackProfile;
use hsdp_storage::provision::{paper_spec, provision, PlatformClass};

/// The fleet configuration the exhibit benches run (kept modest so a full
/// `cargo bench` stays in minutes).
#[must_use]
pub fn bench_fleet_config() -> FleetConfig {
    FleetConfig {
        db_queries: 200,
        analytics_queries: 30,
        fact_rows: 4_000,
        seed: 0x15CA23,
        ..FleetConfig::default()
    }
}

/// One profiled platform (re-exported shape from the facade glue, rebuilt
/// here so the bench crate does not depend on the root package).
#[derive(Debug)]
pub struct PlatformRun {
    /// The platform.
    pub platform: Platform,
    /// Figure 2 aggregation.
    pub figure2: hsdp_profiling::e2e::Figure2,
    /// GWP profile.
    pub profile: CycleProfile,
}

/// Runs and profiles the whole simulated fleet.
#[must_use]
pub fn run_profiled_fleet(config: FleetConfig) -> Vec<PlatformRun> {
    hsdp_platforms::runner::run_fleet(config)
        .into_iter()
        .map(|(platform, executions)| {
            let mut profiler = GwpProfiler::new(GwpConfig {
                sample_period: hsdp_simcore::time::SimDuration::from_micros(2),
                seed: config.seed ^ platform as u64,
            });
            for exec in &executions {
                for w in &exec.cpu_work {
                    profiler.observe(&LeafWork {
                        category: w.category,
                        leaf: w.leaf,
                        time: w.time,
                        stack: w.stack.clone(),
                    });
                }
            }
            let decomposed: Vec<_> = executions
                .iter()
                .map(hsdp_platforms::exec::QueryExecution::decomposition)
                .collect();
            PlatformRun {
                platform,
                figure2: figure2(&decomposed),
                profile: profiler.into_profile(),
            }
        })
        .collect()
}

/// Builds the fleet-wide stack-tree profile from already-run fleet records.
///
/// One GWP profiler consumes every platform's work stream in canonical
/// fleet order, so the result — and therefore the folded text and the
/// pprof bytes rendered from it — is a pure function of the fleet records
/// and `seed`. Frame roots already carry the platform name
/// (`spanner.commit`, `bigtable.put`, …), so no extra prefixing is needed.
#[must_use]
pub fn fleet_stack_profile(
    fleet: &[(Platform, Vec<hsdp_platforms::QueryExecution>)],
    seed: u64,
) -> StackProfile {
    let mut profiler = GwpProfiler::new(GwpConfig {
        sample_period: hsdp_simcore::time::SimDuration::from_micros(2),
        seed: seed ^ 0x57AC,
    });
    for (_, executions) in fleet {
        for exec in executions {
            for w in &exec.cpu_work {
                profiler.observe(&LeafWork {
                    category: w.category,
                    leaf: w.leaf,
                    time: w.time,
                    stack: w.stack.clone(),
                });
            }
        }
    }
    profiler.into_parts().1
}

// ---------------------------------------------------------------------------
// Table 1.
// ---------------------------------------------------------------------------

/// Table 1: paper ratios vs ratios derived from the provisioning model.
#[must_use]
pub fn table1() -> String {
    let mut out = String::from(
        "Table 1 — storage-to-storage ratios (RAM : SSD : HDD)\n\
         platform    paper          derived (zipf hit-rate provisioning)\n",
    );
    for (class, platform) in [
        (PlatformClass::Spanner, Platform::Spanner),
        (PlatformClass::BigTable, Platform::BigTable),
        (PlatformClass::BigQuery, Platform::BigQuery),
    ] {
        let r = paper::storage_ratio(platform);
        let p = provision(&paper_spec(class));
        let (_, ssd, hdd) = p.ratio();
        out.push_str(&format!(
            "{platform:<10}  1:{:>3.0}:{:>4.0}     1:{ssd:>5.1}:{hdd:>6.1}\n",
            r.ssd, r.hdd
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 2–6 (measured from the simulated fleet).
// ---------------------------------------------------------------------------

/// Figure 2: end-to-end breakdown per platform.
#[must_use]
pub fn figure2_exhibit(runs: &[PlatformRun]) -> String {
    let mut out = String::from("Figure 2 — end-to-end execution time breakdown\n");
    for run in runs {
        out.push_str(&report::render_figure2(run.platform, &run.figure2));
    }
    out.push_str(
        "paper anchors: databases >60% CPU-heavy queries; BigQuery 10%;\n\
         fleet-wide 48% / 22% / 30% CPU / remote / IO\n",
    );
    out
}

/// Figure 3: broad cycle shares, measured vs paper.
#[must_use]
pub fn figure3_exhibit(runs: &[PlatformRun]) -> String {
    let mut out = String::from("Figure 3 — application-level cycle breakdown (measured | paper)\n");
    for run in runs {
        let [cc, dct, st] = paper::broad_shares(run.platform);
        out.push_str(&format!(
            "{:<9} core {:>5.1}%|{:>4.0}%  dc-tax {:>5.1}%|{:>4.0}%  sys-tax {:>5.1}%|{:>4.0}%\n",
            run.platform.to_string(),
            run.profile.broad_share(BroadCategory::CoreCompute) * 100.0,
            cc * 100.0,
            run.profile.broad_share(BroadCategory::DatacenterTax) * 100.0,
            dct * 100.0,
            run.profile.broad_share(BroadCategory::SystemTax) * 100.0,
            st * 100.0,
        ));
    }
    out
}

/// Figure 4: core-compute fine breakdown, measured vs paper.
#[must_use]
pub fn figure4_exhibit(runs: &[PlatformRun]) -> String {
    let mut out = String::from("Figure 4 — core compute execution breakdown (measured | paper)\n");
    for run in runs {
        out.push_str(&format!("{}:\n", run.platform));
        let paper_rows = paper::core_compute_shares(run.platform);
        for (op, measured) in run.profile.core_compute_rows(run.platform) {
            let paper_share = paper_rows
                .iter()
                .find(|(p, _)| *p == op)
                .map_or(0.0, |(_, s)| *s);
            out.push_str(&format!(
                "  {:<18} {:>6.1}% | {:>5.1}%\n",
                op.to_string(),
                measured * 100.0,
                paper_share * 100.0
            ));
        }
    }
    out
}

/// Figure 5: datacenter-tax fine breakdown, measured vs paper.
#[must_use]
pub fn figure5_exhibit(runs: &[PlatformRun]) -> String {
    let mut out =
        String::from("Figure 5 — datacenter tax execution breakdown (measured | paper)\n");
    for run in runs {
        out.push_str(&format!("{}:\n", run.platform));
        let paper_rows = paper::datacenter_tax_shares(run.platform);
        for (tax, measured) in run.profile.datacenter_tax_rows() {
            let paper_share = paper_rows
                .iter()
                .find(|(p, _)| *p == tax)
                .map_or(0.0, |(_, s)| *s);
            out.push_str(&format!(
                "  {:<18} {:>6.1}% | {:>5.1}%\n",
                tax.to_string(),
                measured * 100.0,
                paper_share * 100.0
            ));
        }
    }
    out
}

/// Figure 6: system-tax fine breakdown, measured vs paper.
#[must_use]
pub fn figure6_exhibit(runs: &[PlatformRun]) -> String {
    let mut out = String::from("Figure 6 — system tax execution breakdown (measured | paper)\n");
    for run in runs {
        out.push_str(&format!("{}:\n", run.platform));
        let paper_rows = paper::system_tax_shares(run.platform);
        for (tax, measured) in run.profile.system_tax_rows() {
            let paper_share = paper_rows
                .iter()
                .find(|(p, _)| *p == tax)
                .map_or(0.0, |(_, s)| *s);
            out.push_str(&format!(
                "  {:<18} {:>6.1}% | {:>5.1}%\n",
                tax.to_string(),
                measured * 100.0,
                paper_share * 100.0
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tables 6–7 (CPI-stack model).
// ---------------------------------------------------------------------------

/// Tables 6 and 7: paper-observed IPC vs the fitted CPI-stack prediction.
#[must_use]
pub fn tables6_7() -> String {
    let (model, rows) = regenerate_tables();
    let mut out = format!(
        "Tables 6–7 — IPC from the fitted CPI stack\n\
         fitted: base CPI {:.3}; penalties (cycles) BR {:.1}, L1I {:.1}, L2I {:.1}, \
         LLC {:.1}, ITLB {:.1}, DTLB {:.1}\n\
         platform  category        observed  predicted\n",
        model.base_cpi,
        model.penalties[0],
        model.penalties[1],
        model.penalties[2],
        model.penalties[3],
        model.penalties[4],
        model.penalties[5],
    );
    for r in rows {
        let category = r
            .row
            .category
            .map_or_else(|| "(overall)".to_owned(), |c| c.to_string());
        out.push_str(&format!(
            "{:<9} {:<15} {:>7.2} {:>9.2}\n",
            r.row.platform.to_string(),
            category,
            r.row.stats.ipc,
            r.predicted_ipc
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 9–10 (speedup sweeps).
// ---------------------------------------------------------------------------

/// Figure 9: the synchronous on-chip upper-bound sweep.
#[must_use]
pub fn figure9() -> String {
    let mut out = String::from(
        "Figure 9 — synchronous on-chip upper bound (aggregate / peak)\n\
         paper peaks w/o deps: 9.1x / 3,223.6x / 8.5x; with deps: 2.0x / 2.2x / 1.4x\n",
    );
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        let categories = paper::accelerated_categories(platform);
        out.push_str(&format!("{platform}:\n"));
        for pt in study::speedup_sweep(&population, &categories, &study::default_speedup_grid()) {
            out.push_str(&format!(
                "  s={:>4.0}x  with deps {:>6.2}x | w/o deps {:>8.2}x | peak {:>10.1}x\n",
                pt.accel_speedup, pt.with_deps, pt.without_deps, pt.peak_without_deps
            ));
        }
    }
    out
}

/// Figure 10: the per-query-group co-design sweep.
#[must_use]
pub fn figure10() -> String {
    let mut out =
        String::from("Figure 10 — grouped synchronous on-chip upper bounds (deps removed)\n");
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        let categories = paper::accelerated_categories(platform);
        out.push_str(&format!("{platform}:\n"));
        for gs in study::grouped_sweep(&population, &categories, &[1.0, 8.0, 25.0, 50.0]) {
            out.push_str(&format!("  {:<18}", gs.group.to_string()));
            for (s, speedup) in &gs.points {
                out.push_str(&format!(" s={s:>2.0}: {speedup:>8.2}x |"));
            }
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 13–15 (accelerator system features).
// ---------------------------------------------------------------------------

/// Figure 13: incremental accelerators × the four system configurations.
#[must_use]
pub fn figure13() -> String {
    let mut out = String::from(
        "Figure 13 — accelerator feature upper bounds (8x per accelerator, deps retained)\n",
    );
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        out.push_str(&format!("{platform}:\n"));
        for step in study::feature_study(platform, &population) {
            out.push_str(&format!("  +{:<18}", step.added.to_string()));
            for (name, speedup) in &step.speedups {
                out.push_str(&format!(" {name}: {speedup:>5.2}x |"));
            }
            out.push('\n');
        }
    }
    out.push_str(
        "paper anchors: on-chip ~1.04x over off-chip for the databases; async up to\n\
         1.3x over sync; chained within 1% of async; BigQuery off-chip collapses\n",
    );
    out
}

/// Figure 14: the setup-time sweep.
#[must_use]
pub fn figure14() -> String {
    let mut out = String::from("Figure 14 — setup time sweep (8x per accelerator)\n");
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        out.push_str(&format!("{platform}:\n"));
        for pt in study::setup_sweep(platform, &population, &study::default_setup_grid()) {
            out.push_str(&format!("  setup {:>8}", pt.setup.to_string()));
            for (name, speedup) in &pt.speedups {
                out.push_str(&format!(" {name}: {speedup:>5.2}x |"));
            }
            out.push('\n');
        }
    }
    out
}

/// Figure 15: published prior accelerators, individually and combined.
#[must_use]
pub fn figure15() -> String {
    let mut out = String::from(
        "Figure 15 — prior accelerator comparison (sync vs chained, on-chip)\n\
         paper anchor: holistic synchronous acceleration yields 1.5x–1.7x; chaining\n\
         adds little because the memory-allocation stage bottlenecks the pipeline\n",
    );
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        out.push_str(&format!("{platform}:\n"));
        for pt in study::prior_accelerator_study(platform, &population) {
            out.push_str(&format!(
                "  {:<16} sync {:>5.2}x | chained {:>5.2}x\n",
                pt.name, pt.sync_speedup, pt.chained_speedup
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Table 8 (model validation).
// ---------------------------------------------------------------------------

/// Table 8: the chained-model validation — paper replay plus the software
/// pipeline measurement.
#[must_use]
pub fn table8(messages: usize) -> String {
    let replay = hsdp_accelsim::validate::paper_replay();
    let v = hsdp_accelsim::validate::software_validation(messages, 0x7ab1e);
    format!(
        "Table 8 — chained-model validation\n\
         paper replay: modeled {:.1}us (paper printed {:.1}us), measured {:.1}us, \
         difference {:.1}% (paper: 6.1%)\n\
         software pipeline over {} messages:\n\
         \x20 serialize t_sub {:>10.1}us\n\
         \x20 sha3 t_sub      {:>10.1}us\n\
         \x20 sequential      {:>10.1}us\n\
         \x20 chained meas.   {:>10.1}us\n\
         \x20 chained model   {:>10.1}us\n\
         \x20 difference      {:>9.1}%\n",
        replay.recomputed_modeled_us,
        replay.inputs.modeled_chained_us,
        replay.inputs.measured_chained_us,
        replay.model_vs_measured * 100.0,
        v.messages,
        v.serialize_us,
        v.sha3_us,
        v.sequential_us,
        v.chained_measured_us,
        v.chained_modeled_us,
        v.model_vs_measured * 100.0,
    )
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md design-choice studies).
// ---------------------------------------------------------------------------

/// Ablation: the chained-penalty bound (Eq. 11 max) vs summed penalties.
#[must_use]
pub fn ablation_chain_penalty() -> String {
    use hsdp_core::accel::AcceleratorSpec;
    use hsdp_core::category::{CpuCategory, DatacenterTax};
    use hsdp_core::chained::{chain_estimate, chain_estimate_summed_penalties, ChainStage};
    use hsdp_core::units::Seconds;

    let t8 = paper::TABLE8;
    let stages = [
        ChainStage {
            category: CpuCategory::Datacenter(DatacenterTax::Protobuf),
            original: Seconds::from_micros(t8.proto_tsub_us),
            // audit: allow(panic, Table 8 publishes speedups >= 1 by construction)
            spec: AcceleratorSpec::builder(Speedup::new(t8.proto_speedup).expect("valid"))
                .setup(Seconds::from_micros(t8.proto_setup_us))
                .build(),
        },
        ChainStage {
            category: CpuCategory::Datacenter(DatacenterTax::Cryptography),
            original: Seconds::from_micros(t8.sha3_tsub_us),
            // audit: allow(panic, Table 8 publishes speedups >= 1 by construction)
            spec: AcceleratorSpec::builder(Speedup::new(t8.sha3_speedup).expect("valid"))
                .setup(Seconds::from_micros(t8.sha3_setup_us))
                .build(),
        },
    ];
    // audit: allow(panic, the stages array above is statically non-empty)
    let max_bound = chain_estimate(&stages).expect("two stages");
    // audit: allow(panic, the stages array above is statically non-empty)
    let sum_bound = chain_estimate_summed_penalties(&stages).expect("two stages");
    let measured = t8.measured_chained_us - t8.nacc_cpu_us;
    format!(
        "Ablation — chained penalty bound (Table 8 stages)\n\
         Eq. 11 (max penalties): {:.1}us | summed penalties: {:.1}us | \
         RTL-measured chain: {:.1}us\n\
         the max-penalty bound tracks the measurement better\n",
        max_bound.chained_time.as_micros(),
        sum_bound.chained_time.as_micros(),
        measured,
    )
}

/// Ablation: cache policy effect on the measured IO-heavy share.
#[must_use]
pub fn ablation_cache_policy() -> String {
    use hsdp_platforms::bigtable::{BigTable, BigTableConfig};
    use hsdp_storage::cache::PolicyKind;

    let mut out = String::from("Ablation — cache policy vs BigTable IO-heavy share\n");
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::TwoQ,
        PolicyKind::Predictive,
    ] {
        let mut bt = BigTable::new(
            BigTableConfig {
                memtable_flush_bytes: 8 * 1024,
                // Small caches so policy differences show.
                tier_bytes: (24 * 1024, 96 * 1024, 1 << 40),
                policy,
                ..BigTableConfig::default()
            },
            99,
        );
        let keys = hsdp_workload::keys::KeyGen::new("ab", 4_000, 0.99);
        let values = hsdp_workload::keys::ValueGen::new(300);
        let mut rng = hsdp_simcore::dist::seeded_rng(7);
        for rank in 0..1_000 {
            bt.put(keys.key_for_rank(rank), values.sample(&mut rng));
        }
        let mut io_heavy = 0usize;
        let total = 400;
        for _ in 0..total {
            let key = keys.sample(&mut rng);
            let exec = bt.get(&key);
            let d = exec.decomposition();
            if d.io_share() > 0.30 {
                io_heavy += 1;
            }
        }
        out.push_str(&format!(
            "  {policy:?}: {:.1}% of gets IO-heavy\n",
            io_heavy as f64 / total as f64 * 100.0
        ));
    }
    out
}

/// Ablation: overlap-attribution rule (priority vs proportional).
#[must_use]
pub fn ablation_attribution() -> String {
    use hsdp_rpc::decompose::{decompose, decompose_proportional};
    let config = FleetConfig {
        db_queries: 100,
        analytics_queries: 10,
        fact_rows: 2_000,
        seed: 5,
        ..FleetConfig::default()
    };
    let mut out =
        String::from("Ablation — trace attribution: priority (remote>io>cpu) vs proportional\n");
    for (platform, executions) in hsdp_platforms::runner::run_fleet(config) {
        let (mut p_cpu, mut p_tot) = (0.0, 0.0);
        let (mut q_cpu, mut q_tot) = (0.0, 0.0);
        for exec in &executions {
            let a = decompose(&exec.spans);
            let b = decompose_proportional(&exec.spans);
            p_cpu += a.cpu.as_secs_f64();
            p_tot += a.end_to_end.as_secs_f64();
            q_cpu += b.cpu.as_secs_f64();
            q_tot += b.end_to_end.as_secs_f64();
        }
        out.push_str(&format!(
            "  {platform:<9} cpu share: priority {:>5.1}% | proportional {:>5.1}%\n",
            p_cpu / p_tot * 100.0,
            q_cpu / q_tot * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_exhibits_render() {
        for text in [table1(), tables6_7(), figure9(), figure13(), figure15()] {
            assert!(text.len() > 100, "exhibit should be substantive:\n{text}");
        }
        assert!(table1().contains("777"));
        assert!(figure9().contains("Spanner"));
    }

    #[test]
    fn fleet_exhibits_render() {
        let runs = run_profiled_fleet(FleetConfig {
            db_queries: 60,
            analytics_queries: 8,
            fact_rows: 1_000,
            seed: 1,
            ..FleetConfig::default()
        });
        assert_eq!(runs.len(), 3);
        for text in [
            figure2_exhibit(&runs),
            figure3_exhibit(&runs),
            figure4_exhibit(&runs),
            figure5_exhibit(&runs),
            figure6_exhibit(&runs),
        ] {
            assert!(text.contains("BigQuery"), "{text}");
        }
    }

    #[test]
    fn ablations_render() {
        assert!(ablation_chain_penalty().contains("Eq. 11"));
        assert!(ablation_attribution().contains("priority"));
    }
}
