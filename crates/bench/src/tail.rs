//! Request-centric tail-latency attribution: the `tail_report` builder.
//!
//! The paper's fleet profiles answer *where cycles go on average*; this
//! module answers the tail question — *which requests are slow, and what
//! are they paying for?* It joins three deterministic signals over one
//! instrumented fleet run:
//!
//! 1. **Latency cohorts** — every traffic request carries a
//!    [`RequestId`], so the per-platform latency distribution can be split
//!    into cohorts (the fastest half for "p50", the slowest 1% for "p99")
//!    and each cohort's tax share computed from exact metered nanoseconds.
//! 2. **Heavy hitters** — per-shard space-saving sketches
//!    ([`hsdp_profiling::heavy`]) attribute exact-ns CPU and tax time to
//!    requests, merged across shards in canonical `(platform, shard)`
//!    order.
//! 3. **Exemplars + blame** — histogram bucket exemplars from
//!    `hsdp-telemetry` name a concrete request per latency bucket, and the
//!    slowest requests get a full blame breakdown: Section 4 end-to-end
//!    decomposition, Dapper critical path, and broad tax split.
//!
//! Everything is integer-exact and derived from canonical merged state, so
//! the rendered report is byte-identical at any `parallelism` and under
//! `pool::Perturbation` — the property the determinism suite pins.

use std::collections::BTreeMap;

use hsdp_core::category::{BroadCategory, Platform};
use hsdp_core::request::RequestId;
use hsdp_platforms::runner::{
    merge_fleet_metrics, platform_key, run_fleet_telemetry, FleetConfig, ShardRun,
};
use hsdp_platforms::QueryExecution;
use hsdp_profiling::heavy::SpaceSaving;
use hsdp_telemetry::critical_path::{critical_path, PathCategory};
use hsdp_telemetry::registry::{bucket_lower_bound, key_path};
use hsdp_telemetry::MetricsRegistry;

/// Counter budget of each per-platform heavy-hitter sketch. Far above the
/// slowest-request shortlist so top ranks are exact in practice, far below
/// the request universe so the sketch stays a sketch.
pub const HITTER_CAPACITY: usize = 64;

/// Heavy hitters itemized per platform in the report.
pub const HITTERS_REPORTED: usize = 5;

/// Slowest requests given a blame breakdown per platform.
pub const BLAME_REPORTED: usize = 5;

/// Exact CPU totals of one cohort of requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CohortStat {
    /// Requests in the cohort.
    pub requests: u64,
    /// Exact metered CPU nanoseconds across the cohort.
    pub cpu_ns: u64,
    /// Exact tax (datacenter + system) nanoseconds across the cohort.
    pub tax_ns: u64,
    /// `tax_ns / cpu_ns` in parts-per-million (integer-exact).
    pub tax_share_ppm: u64,
    /// Slowest end-to-end latency in the cohort (ns).
    pub max_e2e_ns: u64,
}

/// One attributed heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitterRow {
    /// The request.
    pub request: RequestId,
    /// Estimated nanoseconds (`true <= count`).
    pub count: u64,
    /// Maximum overestimate (`count - err <= true`).
    pub err: u64,
}

/// One histogram-bucket exemplar, joined with its bucket bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemplarRow {
    /// Canonical metric path (`spanner/query_latency_ns/commit`).
    pub metric: String,
    /// Histogram bucket index.
    pub bucket: u16,
    /// Inclusive lower bound of the bucket (ns).
    pub ge_ns: u64,
    /// The representative request.
    pub request: RequestId,
    /// The exemplar's observed latency (ns).
    pub value_ns: u64,
}

/// Blame breakdown for one slow request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameRow {
    /// The request.
    pub request: RequestId,
    /// Operation label of its execution.
    pub label: &'static str,
    /// End-to-end latency (ns).
    pub e2e_ns: u64,
    /// Section 4 decomposition: wall-clock CPU on the trace.
    pub cpu_ns: u64,
    /// Section 4 decomposition: distributed-storage IO.
    pub io_ns: u64,
    /// Section 4 decomposition: remote work.
    pub remote_ns: u64,
    /// Dapper critical-path nanoseconds per [`PathCategory::ALL`] slot.
    pub path_ns: [u64; 5],
    /// Exact metered core-compute nanoseconds.
    pub core_ns: u64,
    /// Exact metered datacenter-tax nanoseconds.
    pub datacenter_ns: u64,
    /// Exact metered system-tax nanoseconds.
    pub system_ns: u64,
}

/// One platform's tail section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformTail {
    /// The platform.
    pub platform: Platform,
    /// Totals over every traffic request.
    pub all: CohortStat,
    /// The fastest half of requests (the "typical" cohort).
    pub p50: CohortStat,
    /// The slowest 1% of requests (the tail cohort).
    pub p99: CohortStat,
    /// Top CPU spenders from the merged space-saving sketch.
    pub hitters_cpu: Vec<HitterRow>,
    /// Top tax spenders from the merged space-saving sketch.
    pub hitters_tax: Vec<HitterRow>,
    /// Latency-histogram bucket exemplars for this platform.
    pub exemplars: Vec<ExemplarRow>,
    /// Blame breakdowns for the slowest requests.
    pub blame: Vec<BlameRow>,
}

/// The full tail report: cohorts, heavy hitters, exemplars, and blame for
/// each platform, plus the workload identity it was derived from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailReport {
    /// Workload seed.
    pub seed: u64,
    /// Shards per platform.
    pub shards: usize,
    /// Commit stamp (empty when not supplied).
    pub commit: String,
    /// Per-platform sections in [`Platform::ALL`] order.
    pub platforms: Vec<PlatformTail>,
}

/// Splits one execution's metered work into `(cpu_total, tax)` exact ns.
fn work_split(exec: &QueryExecution) -> (u64, u64) {
    let mut cpu = 0u64;
    let mut tax = 0u64;
    for item in &exec.cpu_work {
        let ns = item.time.as_nanos();
        cpu += ns;
        if item.category.broad() != BroadCategory::CoreCompute {
            tax += ns;
        }
    }
    (cpu, tax)
}

/// `tax / cpu` in integer parts-per-million.
fn ppm(tax_ns: u64, cpu_ns: u64) -> u64 {
    if cpu_ns == 0 {
        return 0;
    }
    (u128::from(tax_ns) * 1_000_000 / u128::from(cpu_ns)) as u64
}

/// Folds a cohort (a slice of indices into `execs`) into its stat row.
fn cohort_stat(execs: &[&QueryExecution], members: &[usize]) -> CohortStat {
    let mut stat = CohortStat {
        requests: members.len() as u64,
        ..CohortStat::default()
    };
    for &i in members {
        let exec = execs[i];
        let (cpu, tax) = work_split(exec);
        stat.cpu_ns += cpu;
        stat.tax_ns += tax;
        stat.max_e2e_ns = stat
            .max_e2e_ns
            .max(exec.decomposition().end_to_end.as_nanos());
    }
    stat.tax_share_ppm = ppm(stat.tax_ns, stat.cpu_ns);
    stat
}

/// Builds the tail report from an already-executed instrumented fleet run.
/// `runs` must be in canonical `(platform, shard)` order — exactly what
/// [`run_fleet_telemetry`] returns — so shard sketches merge canonically.
#[must_use]
pub fn tail_from_parts(
    config: &FleetConfig,
    runs: &[ShardRun],
    metrics: &MetricsRegistry,
    commit: &str,
) -> TailReport {
    // Per-shard sketches, merged per platform in canonical shard order.
    let mut cpu_sketches: BTreeMap<usize, SpaceSaving> = BTreeMap::new();
    let mut tax_sketches: BTreeMap<usize, SpaceSaving> = BTreeMap::new();
    for run in runs {
        let mut shard_cpu = SpaceSaving::new(HITTER_CAPACITY);
        let mut shard_tax = SpaceSaving::new(HITTER_CAPACITY);
        for exec in &run.executions {
            if !exec.request.is_tagged() {
                continue;
            }
            let (cpu, tax) = work_split(exec);
            shard_cpu.observe(exec.request.0, cpu);
            shard_tax.observe(exec.request.0, tax);
        }
        let slot = run.platform as usize;
        cpu_sketches
            .entry(slot)
            .or_insert_with(|| SpaceSaving::new(HITTER_CAPACITY))
            .merge(&shard_cpu);
        tax_sketches
            .entry(slot)
            .or_insert_with(|| SpaceSaving::new(HITTER_CAPACITY))
            .merge(&shard_tax);
    }

    let mut platforms = Vec::with_capacity(Platform::ALL.len());
    for &platform in &Platform::ALL {
        let execs: Vec<&QueryExecution> = runs
            .iter()
            .filter(|run| run.platform == platform)
            .flat_map(|run| run.executions.iter())
            .collect();

        // Canonical latency order: (end-to-end, request) ascending.
        let mut by_latency: Vec<(u64, u64, usize)> = execs
            .iter()
            .enumerate()
            .map(|(i, exec)| {
                (
                    exec.decomposition().end_to_end.as_nanos(),
                    exec.request.0,
                    i,
                )
            })
            .collect();
        by_latency.sort_unstable();

        let n = by_latency.len();
        let all_members: Vec<usize> = by_latency.iter().map(|&(_, _, i)| i).collect();
        let p50_members: Vec<usize> = all_members[..n.div_ceil(2).min(n)].to_vec();
        let p99_members: Vec<usize> = all_members[n - n.div_ceil(100).min(n)..].to_vec();

        let hitters = |sketch: Option<&SpaceSaving>| -> Vec<HitterRow> {
            sketch
                .map(|s| {
                    s.entries()
                        .into_iter()
                        .take(HITTERS_REPORTED)
                        .map(|e| HitterRow {
                            request: RequestId(e.key),
                            count: e.count,
                            err: e.err,
                        })
                        .collect()
                })
                .unwrap_or_default()
        };

        let mut exemplars = Vec::new();
        for (key, hist) in metrics.histograms() {
            if key.0 != platform_key(platform) || key.1 != "query_latency_ns" {
                continue;
            }
            for (bucket, ex) in hist.exemplars() {
                exemplars.push(ExemplarRow {
                    metric: key_path(key),
                    bucket,
                    ge_ns: bucket_lower_bound(bucket),
                    request: ex.request,
                    value_ns: ex.value,
                });
            }
        }

        // Blame the slowest requests: walk the latency order from the top.
        let blame: Vec<BlameRow> = by_latency
            .iter()
            .rev()
            .take(BLAME_REPORTED)
            .map(|&(e2e_ns, _, i)| {
                let exec = execs[i];
                let d = exec.decomposition();
                let path = critical_path(&exec.spans);
                let mut path_ns = [0u64; 5];
                for (slot, &category) in PathCategory::ALL.iter().enumerate() {
                    path_ns[slot] = path.ns(category);
                }
                let (mut core, mut dc, mut sys) = (0u64, 0u64, 0u64);
                for item in &exec.cpu_work {
                    let ns = item.time.as_nanos();
                    match item.category.broad() {
                        BroadCategory::CoreCompute => core += ns,
                        BroadCategory::DatacenterTax => dc += ns,
                        BroadCategory::SystemTax => sys += ns,
                    }
                }
                BlameRow {
                    request: exec.request,
                    label: exec.label,
                    e2e_ns,
                    cpu_ns: d.cpu.as_nanos(),
                    io_ns: d.io.as_nanos(),
                    remote_ns: d.remote.as_nanos(),
                    path_ns,
                    core_ns: core,
                    datacenter_ns: dc,
                    system_ns: sys,
                }
            })
            .collect();

        platforms.push(PlatformTail {
            platform,
            all: cohort_stat(&execs, &all_members),
            p50: cohort_stat(&execs, &p50_members),
            p99: cohort_stat(&execs, &p99_members),
            hitters_cpu: hitters(cpu_sketches.get(&(platform as usize))),
            hitters_tax: hitters(tax_sketches.get(&(platform as usize))),
            exemplars,
            blame,
        });
    }

    TailReport {
        seed: config.seed,
        shards: config.shards,
        commit: commit.to_owned(),
        platforms,
    }
}

/// Runs the fleet instrumented and builds the tail report. Deterministic:
/// the result is identical at any `config.parallelism` and under
/// `config.perturb`.
#[must_use]
pub fn build_tail_report(config: FleetConfig, commit: &str) -> TailReport {
    let runs = run_fleet_telemetry(config);
    let metrics = merge_fleet_metrics(&runs);
    tail_from_parts(&config, &runs, &metrics, commit)
}

/// Flattens the report into `key -> u64` rows for the profile-history
/// snapshot (`ProfileSnapshot::tail`): per-platform cohort tax shares and
/// exemplar/hitter summaries, every value integer-exact.
#[must_use]
pub fn tail_summary(report: &TailReport) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for section in &report.platforms {
        let key = platform_key(section.platform);
        out.insert(format!("{key}/requests"), section.all.requests);
        out.insert(format!("{key}/cpu_ns"), section.all.cpu_ns);
        out.insert(format!("{key}/tax_ns"), section.all.tax_ns);
        out.insert(
            format!("{key}/p50_tax_share_ppm"),
            section.p50.tax_share_ppm,
        );
        out.insert(
            format!("{key}/p99_tax_share_ppm"),
            section.p99.tax_share_ppm,
        );
        out.insert(format!("{key}/p99_max_e2e_ns"), section.p99.max_e2e_ns);
        out.insert(format!("{key}/exemplars"), section.exemplars.len() as u64);
        if let Some(top) = section.hitters_cpu.first() {
            out.insert(format!("{key}/top_request"), top.request.0);
            out.insert(format!("{key}/top_request_cpu_ns"), top.count);
        }
    }
    out
}

/// Renders the canonical JSON artifact (`hsdp-tail-report/1`). Pure
/// function of the report — the byte-identity surface the determinism
/// suite and the CI smoke step diff.
#[must_use]
pub fn render_json(report: &TailReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hsdp-tail-report/1\",\n");
    out.push_str(&format!(
        "  \"commit\": \"{}\",\n",
        report.commit.replace('\\', "\\\\").replace('"', "\\\"")
    ));
    out.push_str(&format!("  \"seed\": {},\n", report.seed));
    out.push_str(&format!("  \"shards\": {},\n", report.shards));
    out.push_str("  \"platforms\": [\n");
    for (pi, section) in report.platforms.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"platform\": \"{}\",\n",
            platform_key(section.platform)
        ));
        for (name, stat) in [
            ("all", &section.all),
            ("p50", &section.p50),
            ("p99", &section.p99),
        ] {
            out.push_str(&format!(
                "      \"{name}\": {{\"requests\": {}, \"cpu_ns\": {}, \"tax_ns\": {}, \
                 \"tax_share_ppm\": {}, \"max_e2e_ns\": {}}},\n",
                stat.requests, stat.cpu_ns, stat.tax_ns, stat.tax_share_ppm, stat.max_e2e_ns,
            ));
        }
        for (name, rows) in [
            ("heavy_hitters_cpu", &section.hitters_cpu),
            ("heavy_hitters_tax", &section.hitters_tax),
        ] {
            out.push_str(&format!("      \"{name}\": [\n"));
            for (i, row) in rows.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"request\": \"{}\", \"ns\": {}, \"err_ns\": {}}}{}\n",
                    row.request,
                    row.count,
                    row.err,
                    if i + 1 < rows.len() { "," } else { "" },
                ));
            }
            out.push_str("      ],\n");
        }
        out.push_str("      \"exemplars\": [\n");
        for (i, row) in section.exemplars.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"metric\": \"{}\", \"bucket\": {}, \"ge_ns\": {}, \
                 \"request\": \"{}\", \"value_ns\": {}}}{}\n",
                row.metric,
                row.bucket,
                row.ge_ns,
                row.request,
                row.value_ns,
                if i + 1 < section.exemplars.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("      ],\n");
        out.push_str("      \"blame\": [\n");
        for (i, row) in section.blame.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"request\": \"{}\", \"label\": \"{}\", \"e2e_ns\": {}, \
                 \"cpu_ns\": {}, \"io_ns\": {}, \"remote_ns\": {}, \"path\": {{",
                row.request, row.label, row.e2e_ns, row.cpu_ns, row.io_ns, row.remote_ns,
            ));
            for (slot, &category) in PathCategory::ALL.iter().enumerate() {
                out.push_str(&format!(
                    "\"{}\": {}{}",
                    category.name(),
                    row.path_ns[slot],
                    if slot + 1 < PathCategory::ALL.len() {
                        ", "
                    } else {
                        ""
                    },
                ));
            }
            out.push_str(&format!(
                "}}, \"core_ns\": {}, \"datacenter_tax_ns\": {}, \"system_tax_ns\": {}}}{}\n",
                row.core_ns,
                row.datacenter_ns,
                row.system_ns,
                if i + 1 < section.blame.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < report.platforms.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable table (the default `tail_report` output).
#[must_use]
pub fn render_text(report: &TailReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "tail report  seed={} shards={}\n",
        report.seed, report.shards
    ));
    for section in &report.platforms {
        let key = platform_key(section.platform);
        out.push_str(&format!(
            "\n== {key}: {} requests, tax share p50-cohort {:.2}% vs p99-cohort {:.2}% ==\n",
            section.all.requests,
            section.p50.tax_share_ppm as f64 / 10_000.0,
            section.p99.tax_share_ppm as f64 / 10_000.0,
        ));
        out.push_str("  heaviest requests (cpu):\n");
        for row in &section.hitters_cpu {
            out.push_str(&format!(
                "    {:<22} {:>12} ns (+/- {} ns)\n",
                row.request.to_string(),
                row.count,
                row.err
            ));
        }
        out.push_str("  slowest requests (blame):\n");
        for row in &section.blame {
            out.push_str(&format!(
                "    {:<22} {:<16} e2e {:>12} ns  cpu {:>10} io {:>10} remote {:>10}  \
                 tax {:>10}/{:>10}\n",
                row.request.to_string(),
                row.label,
                row.e2e_ns,
                row.cpu_ns,
                row.io_ns,
                row.remote_ns,
                row.datacenter_ns,
                row.system_ns,
            ));
        }
        out.push_str(&format!(
            "  exemplars: {} buckets with representatives\n",
            section.exemplars.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_simcore::pool::Perturbation;
    use hsdp_telemetry::json::validate;

    fn small_config(parallelism: usize, perturb: Option<Perturbation>) -> FleetConfig {
        FleetConfig {
            db_queries: 48,
            analytics_queries: 8,
            fact_rows: 400,
            shards: 2,
            seed: 0xBEEF,
            parallelism,
            perturb,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn report_is_parallelism_invariant() {
        let p1 = render_json(&build_tail_report(small_config(1, None), "t"));
        let p4 = render_json(&build_tail_report(small_config(4, None), "t"));
        assert_eq!(p1, p4, "tail report must be byte-identical at p1 vs p4");
        validate(&p1).expect("report is well-formed JSON");
    }

    #[test]
    fn report_is_perturbation_invariant() {
        let base = render_json(&build_tail_report(small_config(3, None), "t"));
        for perturb_seed in 0..8 {
            let perturbed = render_json(&build_tail_report(
                small_config(3, Some(Perturbation::new(perturb_seed))),
                "t",
            ));
            assert_eq!(
                base, perturbed,
                "tail report must survive schedule perturbation {perturb_seed}"
            );
        }
    }

    #[test]
    fn every_platform_has_tail_content() {
        let report = build_tail_report(small_config(2, None), "");
        assert_eq!(report.platforms.len(), 3);
        for section in &report.platforms {
            assert!(section.all.requests > 0);
            assert!(section.all.cpu_ns > 0);
            assert!(!section.hitters_cpu.is_empty());
            assert!(!section.exemplars.is_empty());
            assert!(!section.blame.is_empty());
            // Every blamed request must be tagged traffic, in slowest-first
            // order, with some metered work attributed.
            for pair in section.blame.windows(2) {
                assert!(pair[0].e2e_ns >= pair[1].e2e_ns);
            }
            for row in &section.blame {
                assert!(row.request.is_tagged());
                assert_eq!(row.request.platform(), Some(section.platform));
                assert!(row.core_ns + row.datacenter_ns + row.system_ns > 0);
            }
            // Cohort invariants: p99 is a subset of all; shares are ppm.
            assert!(section.p99.requests <= section.all.requests);
            assert!(section.p50.tax_share_ppm <= 1_000_000);
            assert!(section.p99.tax_share_ppm <= 1_000_000);
            assert!(section.p99.max_e2e_ns == section.all.max_e2e_ns);
        }
    }

    #[test]
    fn summary_rows_are_stable_and_exact() {
        let report = build_tail_report(small_config(2, None), "");
        let summary = tail_summary(&report);
        for section in &report.platforms {
            let key = platform_key(section.platform);
            assert_eq!(summary[&format!("{key}/requests")], section.all.requests);
            assert_eq!(
                summary[&format!("{key}/p99_tax_share_ppm")],
                section.p99.tax_share_ppm
            );
        }
    }
}
