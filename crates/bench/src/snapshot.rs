//! The shared profile-history snapshot builder.
//!
//! Both `fleet_profile --snapshot` and `profile_history append` build their
//! per-commit [`ProfileSnapshot`] here, so the two bins can never drift
//! apart on what a snapshot contains: per-category and per-stack exact CPU
//! nanoseconds from the deterministic GWP stack profile, telemetry
//! histogram quantiles from the merged fleet registry, and (optionally)
//! bench entries lifted out of a `BENCH_fleet.json`.
//!
//! Everything except the bench entries is a pure function of the workload
//! config — byte-identical at any `parallelism` — which is what makes the
//! store's cross-host byte-identity checks possible. Bench entries carry
//! wall-clock, so they are only folded in when explicitly supplied.

use std::collections::BTreeMap;

use hsdp_platforms::runner::{fold_fleet, merge_fleet_metrics, run_fleet_telemetry, FleetConfig};
use hsdp_profiling::history::{ProfileSnapshot, QuantileRow, SnapshotMeta};
use hsdp_profiling::stacks::StackProfile;
use hsdp_telemetry::MetricsRegistry;

use crate::exhibits::fleet_stack_profile;
use crate::tail::{tail_from_parts, tail_summary};

/// Assembles a snapshot from already-computed parts. `tail` carries the
/// tail-report summary rows (`tail::tail_summary`) — pass an empty map for
/// snapshots built without a tail pass.
#[must_use]
pub fn snapshot_from_parts(
    meta: SnapshotMeta,
    stacks: &StackProfile,
    metrics: &MetricsRegistry,
    bench: &BTreeMap<String, f64>,
    tail: &BTreeMap<String, u64>,
) -> ProfileSnapshot {
    let mut snapshot = ProfileSnapshot {
        meta,
        total_exact_ns: stacks.total_exact().as_nanos(),
        total_samples: stacks.total_samples(),
        categories: stacks.category_exact_ns(),
        stacks: stacks.stack_exact_ns(),
        ..ProfileSnapshot::default()
    };
    for (path, summary) in metrics.histogram_summaries() {
        snapshot.quantiles.insert(
            path,
            QuantileRow {
                count: summary.count,
                p50: summary.p50,
                p95: summary.p95,
                p99: summary.p99,
            },
        );
    }
    snapshot.bench = bench.clone();
    snapshot.tail = tail.clone();
    snapshot
}

/// Runs the fleet instrumented and builds the full snapshot: telemetry
/// registries merge in canonical shard order, the fleet records fold back
/// into canonical order, and one deterministic GWP pass derives the stack
/// profile — so the result is byte-identical at any `config.parallelism`.
#[must_use]
pub fn build_fleet_snapshot(
    config: FleetConfig,
    meta: SnapshotMeta,
    bench: &BTreeMap<String, f64>,
) -> ProfileSnapshot {
    let runs = run_fleet_telemetry(config);
    let metrics = merge_fleet_metrics(&runs);
    let tail = tail_summary(&tail_from_parts(&config, &runs, &metrics, ""));
    let fleet = fold_fleet(runs);
    let stacks = fleet_stack_profile(&fleet, config.seed);
    snapshot_from_parts(meta, &stacks, &metrics, bench, &tail)
}

/// Lifts `(id, ns_per_iter)` bench entries out of a `BENCH_fleet.json`
/// document (`hsdp-bench-fleet/1` schema). The harness writes one entry
/// object per line, so a line-oriented scan is exact for documents we
/// produce; unparseable lines are skipped rather than failing the append.
#[must_use]
pub fn parse_bench_entries(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in json.lines() {
        let Some(id) = extract_str(line, "\"id\": \"") else {
            continue;
        };
        let Some(ns) = extract_f64(line, "\"ns_per_iter\": ") else {
            continue;
        };
        out.insert(unescape(id), ns);
    }
    out
}

/// The raw (still-escaped) value of a `"key": "value"` field in `line`.
fn extract_str<'a>(line: &'a str, marker: &str) -> Option<&'a str> {
    let start = line.find(marker)? + marker.len();
    let rest = &line[start..];
    // Walk to the closing quote, honouring backslash escapes.
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Some(&rest[..i]);
        }
    }
    None
}

/// The numeric value of a `"key": 123.4` field in `line`.
fn extract_f64(line: &str, marker: &str) -> Option<f64> {
    let start = line.find(marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Undoes the harness's JSON string escaping.
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{BenchRecord, BenchReport};

    #[test]
    fn bench_entries_roundtrip_through_report_json() {
        let mut report = BenchReport::new();
        report.set_provenance("cafe12", 3);
        report.push(BenchRecord {
            id: "crc32c/hw/64KiB".to_owned(),
            ns_per_iter: 321.125,
            bytes_per_iter: Some(65_536),
            parallelism: 1,
            seed: 0,
        });
        report.push(BenchRecord {
            id: "fleet/wall_clock \"p=4\"".to_owned(),
            ns_per_iter: 5e6,
            bytes_per_iter: None,
            parallelism: 4,
            seed: 7,
        });
        let entries = parse_bench_entries(&report.to_json());
        assert_eq!(entries.len(), 2);
        assert!((entries["crc32c/hw/64KiB"] - 321.125).abs() < 1e-9);
        assert!((entries["fleet/wall_clock \"p=4\""] - 5e6).abs() < 1e-3);
    }

    #[test]
    fn parse_skips_non_entry_lines() {
        let entries = parse_bench_entries(
            "{\n  \"schema\": \"hsdp-bench-fleet/1\",\n  \"entries\": [\n  ]\n}\n",
        );
        assert!(entries.is_empty());
    }

    #[test]
    fn fleet_snapshot_is_parallelism_invariant() {
        let config = FleetConfig {
            db_queries: 12,
            analytics_queries: 2,
            fact_rows: 200,
            seed: 0xFACE,
            shards: 2,
            ..FleetConfig::default()
        };
        let meta = SnapshotMeta {
            commit: "test".to_owned(),
            sequence: 1,
            host_parallelism: 1,
            cpu_features: "test".to_owned(),
        };
        let empty = BTreeMap::new();
        let p1 = build_fleet_snapshot(
            FleetConfig {
                parallelism: 1,
                ..config
            },
            meta.clone(),
            &empty,
        );
        let p4 = build_fleet_snapshot(
            FleetConfig {
                parallelism: 4,
                ..config
            },
            meta,
            &empty,
        );
        assert_eq!(p1, p4, "snapshot content is parallelism-invariant");
        assert_eq!(p1.encode(), p4.encode(), "and so are the bytes");
        assert!(p1.total_exact_ns > 0);
        assert!(!p1.categories.is_empty());
        assert!(!p1.quantiles.is_empty());
        assert!(
            p1.tail.keys().any(|k| k.ends_with("/p99_tax_share_ppm")),
            "snapshot carries tail-report summaries"
        );
    }
}
