//! Builds the three fleet telemetry artifacts — `metrics.json`,
//! `trace.json`, `critical_path.json` — from an instrumented fleet run.
//!
//! The artifact set is the paper's observability stack made exportable:
//! merged performance counters (registry), Dapper-style spans in Chrome
//! trace-event form (one Perfetto process per platform, one thread lane per
//! shard), and per-platform critical-path attributions next to the interval
//! decomposition they must cohere with. `metrics.json` is byte-identical
//! across `parallelism` settings; the other two are deterministic for a
//! given workload configuration.

use std::io;
use std::path::Path;

use hsdp_core::category::Platform;
use hsdp_platforms::runner::{merge_fleet_metrics, platform_key, ShardRun};
use hsdp_profiling::crosscheck;
use hsdp_simcore::time::SimDuration;
use hsdp_telemetry::critical_path::PathCategory;
use hsdp_telemetry::export::{chrome_trace_json, TraceGroup};

/// The three rendered artifacts of one instrumented fleet run.
#[derive(Debug, Clone)]
pub struct TelemetryArtifacts {
    /// Canonical merged-registry JSON (byte-identical at any parallelism).
    pub metrics_json: String,
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing` loadable).
    pub trace_json: String,
    /// Per-platform critical-path attribution JSON.
    pub critical_path_json: String,
}

impl TelemetryArtifacts {
    /// Writes the artifacts as `metrics.json`, `trace.json`, and
    /// `critical_path.json` under `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or writes.
    pub fn write_to(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("metrics.json"), &self.metrics_json)?;
        std::fs::write(dir.join("trace.json"), &self.trace_json)?;
        std::fs::write(dir.join("critical_path.json"), &self.critical_path_json)?;
        Ok(())
    }
}

/// Renders all three artifacts from per-shard fleet output.
#[must_use]
pub fn build_artifacts(runs: &[ShardRun]) -> TelemetryArtifacts {
    TelemetryArtifacts {
        metrics_json: merge_fleet_metrics(runs).to_json(),
        trace_json: chrome_trace_json(&trace_groups(runs)),
        critical_path_json: critical_path_json(runs),
    }
}

/// One Perfetto lane per shard: the platform is the "process", the shard
/// its "thread", so the fleet's concurrent replicas land side by side.
#[must_use]
pub fn trace_groups(runs: &[ShardRun]) -> Vec<TraceGroup> {
    runs.iter()
        .map(|run| TraceGroup {
            process_name: platform_key(run.platform).to_string(),
            // Platform discriminants are stable; pid 0 is reserved by some
            // viewers, so lanes start at 1.
            pid: run.platform as u32 + 1,
            // audit: allow(cast, shard indices are small (fleet shard counts), far below u32::MAX)
            tid: run.shard as u32,
            thread_name: format!("shard {}", run.shard),
            spans: run
                .executions
                .iter()
                .flat_map(|e| e.spans.iter().cloned())
                .collect(),
        })
        .collect()
}

/// Renders `critical_path.json`: for every platform, the merged
/// critical-path attribution across all its queries, its category
/// fractions (summing to 1.0 ± 1e-9 by construction), and the agreement
/// ratio against the metered CPU that GWP samples from.
#[must_use]
pub fn critical_path_json(runs: &[ShardRun]) -> String {
    let mut out = String::from("{\n  \"schema\": \"hsdp-telemetry-critical-path/1\",\n");
    out.push_str("  \"platforms\": {\n");
    for (i, &platform) in Platform::ALL.iter().enumerate() {
        let report = platform_agreement(runs, platform);
        out.push_str(&format!("    \"{}\": {{\n", platform_key(platform)));
        out.push_str(&format!(
            "      \"total_ns\": {},\n      \"metered_cpu_ns\": {},\n",
            report.path.total_ns(),
            report.metered_cpu.as_nanos()
        ));
        out.push_str(&format!(
            "      \"path_cpu_over_metered_cpu\": {:.9},\n",
            report.path_cpu_over_metered()
        ));
        out.push_str("      \"categories\": {");
        for (j, (category, ns, fraction)) in report.path.rows().into_iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        \"{}\": {{\"ns\": {ns}, \"fraction\": {fraction:.9}}}",
                category.name()
            ));
        }
        out.push_str("\n      }\n    }");
        out.push_str(if i + 1 < Platform::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}

/// The three-view agreement report for one platform's executions.
#[must_use]
pub fn platform_agreement(runs: &[ShardRun], platform: Platform) -> crosscheck::PathAgreement {
    crosscheck::agree(
        runs.iter()
            .filter(|run| run.platform == platform)
            .flat_map(|run| run.executions.iter())
            .map(|exec| {
                let metered: SimDuration = exec.cpu_work.iter().map(|item| item.time).sum();
                (exec.spans.as_slice(), metered)
            }),
    )
}

/// A short human-readable summary of the critical-path attribution, for
/// report binaries.
#[must_use]
pub fn render_summary(runs: &[ShardRun]) -> String {
    let mut out = String::from("critical-path attribution (fraction of wall-clock)\n");
    out.push_str("platform   cpu      io       remote   orch     idle\n");
    for &platform in &Platform::ALL {
        let report = platform_agreement(runs, platform);
        out.push_str(&format!("{:<10}", platform_key(platform)));
        for category in PathCategory::ALL {
            out.push_str(&format!(" {:.4}  ", report.path.fraction(category)));
        }
        out.push('\n');
    }
    out
}
