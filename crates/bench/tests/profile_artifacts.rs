//! End-to-end checks on the stack-profile artifacts: folded-stack format,
//! pprof round-trip, parallelism-independence, and the `profile_diff`
//! regression gate (including its nonzero exit on an injected share shift).

use std::process::Command;

use hsdp_bench::exhibits::fleet_stack_profile;
use hsdp_core::category::CpuCategory;
use hsdp_core::category::SystemTax;
use hsdp_platforms::runner::{run_fleet, FleetConfig};
use hsdp_profiling::stacks::{max_abs_delta, pprof_category_shares, share_deltas, StackProfile};
use hsdp_simcore::time::SimDuration;
use hsdp_taxes::pprof::Profile;

fn small_config(parallelism: usize) -> FleetConfig {
    FleetConfig {
        db_queries: 40,
        analytics_queries: 6,
        fact_rows: 600,
        seed: 0xFACE,
        parallelism,
        shards: 2,
        tablets: 3,
        perturb: None,
    }
}

fn small_stack_profile(parallelism: usize) -> StackProfile {
    let config = small_config(parallelism);
    let fleet = run_fleet(config);
    fleet_stack_profile(&fleet, config.seed)
}

#[test]
fn folded_output_is_flamegraph_ready() {
    let folded = small_stack_profile(1).folded();
    assert!(!folded.is_empty());
    let mut roots = std::collections::BTreeSet::new();
    for line in folded.lines() {
        // Every line: `frame;frame;leaf <count>` with a positive integer
        // weight and at least one semicolon (root frame + leaf).
        let (path, weight) = line.rsplit_once(' ').expect("weight separator");
        assert!(
            path.contains(';'),
            "stacked path has a root frame and a leaf: {line}"
        );
        assert!(!path.contains(' '), "no spaces inside the path: {line}");
        let w: u64 = weight.parse().expect("integer weight");
        assert!(w > 0, "zero-weight lines are dropped: {line}");
        roots.insert(path.split(';').next().expect("root").to_owned());
    }
    // All three platforms contribute roots.
    for prefix in ["spanner.", "bigtable.", "bigquery."] {
        assert!(
            roots.iter().any(|r| r.starts_with(prefix)),
            "missing {prefix} root in {roots:?}"
        );
    }
    // 2PC nests consensus under prepare/commit: deep stacks exist.
    assert!(
        folded.lines().any(|l| l.split(';').count() >= 4),
        "expected at least one >=4-deep stack"
    );
}

#[test]
fn artifacts_are_parallelism_invariant() {
    let p1 = small_stack_profile(1);
    let p4 = small_stack_profile(4);
    assert_eq!(p1, p4, "stack profile is a pure function of the workload");
    assert_eq!(p1.folded(), p4.folded());
    let period = SimDuration::from_micros(2);
    assert_eq!(
        p1.to_pprof(period).encode(),
        p4.to_pprof(period).encode(),
        "pprof bytes byte-identical across parallelism"
    );
}

#[test]
fn pprof_artifact_round_trips() {
    let stacks = small_stack_profile(1);
    let profile = stacks.to_pprof(SimDuration::from_micros(2));
    profile.validate().expect("valid export");
    let bytes = profile.encode();
    let decoded = Profile::decode(&bytes).expect("decodes");
    assert_eq!(decoded, profile, "lossless round-trip");
    // The decoded view reconstructs the same total CPU nanoseconds.
    let cpu_idx = decoded
        .sample_types
        .iter()
        .position(|vt| decoded.string(vt.kind) == "cpu")
        .expect("cpu dimension");
    let total_ns: i64 = decoded.samples.iter().map(|s| s.values[cpu_idx]).sum();
    assert_eq!(
        u64::try_from(total_ns).expect("non-negative"),
        stacks.total_exact().as_nanos()
    );
}

#[test]
fn profile_diff_gate_passes_identical_and_fails_shifted() {
    let stacks = small_stack_profile(1);
    let period = SimDuration::from_micros(2);
    let baseline = stacks.to_pprof(period).encode();

    // Inject a ~6%-of-total share shift into a copy: a new stack under a
    // category that dominates nothing else in the profile.
    let mut shifted = stacks.clone();
    let total = stacks.total_exact().as_nanos();
    shifted.record(
        &["injected.root"],
        "injected_leaf",
        CpuCategory::System(SystemTax::MiscSystem),
        SimDuration::from_nanos(total / 15),
        0,
    );
    let candidate = shifted.to_pprof(period).encode();

    // Library-level check first: the injected drift clears 5%.
    let deltas = share_deltas(
        &pprof_category_shares(&Profile::decode(&baseline).expect("baseline decodes")),
        &pprof_category_shares(&Profile::decode(&candidate).expect("candidate decodes")),
    );
    assert!(
        max_abs_delta(&deltas) > 0.05,
        "injected shift is above 5%: {}",
        max_abs_delta(&deltas)
    );

    // Bin-level: identical profiles pass, shifted profiles fail.
    let dir = std::env::temp_dir().join(format!("hsdp-profile-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let base_path = dir.join("baseline.pb");
    let cand_path = dir.join("candidate.pb");
    std::fs::write(&base_path, &baseline).expect("write baseline");
    std::fs::write(&cand_path, &candidate).expect("write candidate");

    let ok = Command::new(env!("CARGO_BIN_EXE_profile_diff"))
        .args([&base_path, &base_path])
        .arg("--threshold")
        .arg("0.01")
        .status()
        .expect("run profile_diff");
    assert!(ok.success(), "identical profiles must pass the gate");

    let fail = Command::new(env!("CARGO_BIN_EXE_profile_diff"))
        .args([&base_path, &cand_path])
        .arg("--threshold")
        .arg("0.01")
        .status()
        .expect("run profile_diff");
    assert!(
        !fail.success(),
        "a >5% category shift must trip the 1% gate"
    );

    // --json mode: same verdicts, machine-readable report in the
    // `xtask audit --json` convention.
    let ok_json = Command::new(env!("CARGO_BIN_EXE_profile_diff"))
        .args([&base_path, &base_path])
        .args(["--threshold", "0.01", "--json"])
        .output()
        .expect("run profile_diff --json");
    assert!(ok_json.status.success());
    let stdout = String::from_utf8(ok_json.stdout).expect("utf-8 report");
    assert!(
        stdout.contains("\"schema\": \"hsdp-profile-diff/1\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"clean\": true"), "{stdout}");
    assert!(stdout.contains("\"findings\": []"), "{stdout}");

    let fail_json = Command::new(env!("CARGO_BIN_EXE_profile_diff"))
        .args([&base_path, &cand_path])
        .args(["--threshold", "0.01", "--json"])
        .output()
        .expect("run profile_diff --json");
    assert!(!fail_json.status.success());
    let stdout = String::from_utf8(fail_json.stdout).expect("utf-8 report");
    assert!(stdout.contains("\"clean\": false"), "{stdout}");
    assert!(stdout.contains("\"kind\": \"category\""), "{stdout}");
    assert_eq!(stdout.matches('{').count(), stdout.matches('}').count());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_store_bytes_are_parallelism_invariant() {
    // `fleet_profile --snapshot` must append byte-identical history frames
    // at any --parallelism: two fresh stores, one run each at p=1 and p=4,
    // same commit stamp — the store files must be byte-identical.
    let dir = std::env::temp_dir().join(format!("hsdp-snapshot-inv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut stores = Vec::new();
    for parallelism in ["1", "4"] {
        let store = dir.join(format!("history_p{parallelism}.bin"));
        std::fs::remove_file(&store).ok();
        let out = Command::new(env!("CARGO_BIN_EXE_fleet_profile"))
            .args(["--parallelism", parallelism, "--db-queries", "40"])
            .args(["--seed", "64206"])
            .arg("--snapshot")
            .arg(&store)
            .args(["--commit", "testcommit", "--seq", "7"])
            .arg("--out")
            .arg(dir.join(format!("profile_p{parallelism}.json")))
            .output()
            .expect("run fleet_profile --snapshot");
        assert!(
            out.status.success(),
            "{:?}",
            String::from_utf8_lossy(&out.stderr)
        );
        stores.push(std::fs::read(&store).expect("read store"));
    }
    assert!(!stores[0].is_empty());
    assert_eq!(
        stores[0], stores[1],
        "snapshot store bytes differ between parallelism 1 and 4"
    );
    std::fs::remove_dir_all(&dir).ok();
}
