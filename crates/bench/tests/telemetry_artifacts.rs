//! End-to-end checks on the telemetry artifacts: the three JSONs are
//! syntactically valid, the critical-path fractions partition each
//! platform's wall-clock, and the critical-path CPU view agrees with the
//! metered CPU universe that the GWP profiler samples from.

use hsdp_bench::telemetry_out::{build_artifacts, platform_agreement};
use hsdp_core::category::Platform;
use hsdp_platforms::runner::{run_fleet_telemetry, FleetConfig, ShardRun};
use hsdp_profiling::{GwpConfig, GwpProfiler, LeafWork};
use hsdp_telemetry::critical_path::PathCategory;
use hsdp_telemetry::json;

fn instrumented_runs() -> Vec<ShardRun> {
    run_fleet_telemetry(FleetConfig {
        db_queries: 60,
        analytics_queries: 9,
        fact_rows: 600,
        seed: 0x00DE_7EC7,
        parallelism: 2,
        shards: 4,
        tablets: 2,
        perturb: None,
    })
}

#[test]
fn artifacts_are_valid_json() {
    let artifacts = build_artifacts(&instrumented_runs());
    for (name, body) in [
        ("metrics.json", &artifacts.metrics_json),
        ("trace.json", &artifacts.trace_json),
        ("critical_path.json", &artifacts.critical_path_json),
    ] {
        json::validate(body).unwrap_or_else(|err| panic!("{name}: {err}"));
        assert!(!body.is_empty(), "{name} is empty");
    }
    assert!(artifacts.trace_json.contains("\"ph\": \"X\""));
    assert!(artifacts.metrics_json.contains("spanner/queries"));
    assert!(artifacts
        .critical_path_json
        .contains("path_cpu_over_metered_cpu"));
}

#[test]
fn critical_path_fractions_partition_each_platform() {
    let runs = instrumented_runs();
    for platform in Platform::ALL {
        let report = platform_agreement(&runs, platform);
        assert!(
            (report.fraction_sum() - 1.0).abs() < 1e-9,
            "{platform}: fractions sum to {}",
            report.fraction_sum()
        );
        // The integer nanoseconds partition exactly, not just the floats.
        let ns_sum: u64 = PathCategory::ALL.iter().map(|&c| report.path.ns(c)).sum();
        assert_eq!(ns_sum, report.path.total_ns(), "{platform}: ns partition");
        // Both wall-clock attributions cover the same window.
        assert_eq!(
            report.path.total_ns(),
            report.decomposition.end_to_end.as_nanos(),
            "{platform}: critical path and decomposition windows differ"
        );
    }
}

#[test]
fn critical_path_cpu_agrees_with_gwp_universe() {
    let runs = instrumented_runs();
    for platform in Platform::ALL {
        let report = platform_agreement(&runs, platform);

        // The registry's CPU counters were recorded per served request by
        // the meter. The execution records are a subset of that: BigTable's
        // read-modify-write discards the read half's record (only the put
        // survives in the stream), so the registry may see strictly more
        // CPU, and the surplus is exactly the discarded reads.
        let registry_cpu: u64 = runs
            .iter()
            .filter(|r| r.platform == platform)
            .map(|r| r.telemetry.counter_subsystem_sum("cpu"))
            .sum();
        match platform {
            Platform::Spanner | Platform::BigQuery => assert_eq!(
                registry_cpu,
                report.metered_cpu.as_nanos(),
                "{platform}: registry CPU counters != metered CPU"
            ),
            Platform::BigTable => assert!(
                registry_cpu >= report.metered_cpu.as_nanos(),
                "{platform}: registry CPU {registry_cpu} lost work vs records {}",
                report.metered_cpu.as_nanos()
            ),
        }

        // Single-server platforms lay spans out sequentially, so the CPU on
        // the critical path is *exactly* the metered CPU (ratio 1.0). The
        // fan-out platform (BigQuery) pipelines IO under CPU and stripes
        // work across workers, so its path CPU is a strict subset.
        match platform {
            Platform::Spanner | Platform::BigTable => {
                assert!(
                    (report.path_cpu_over_metered() - 1.0).abs() < 1e-12,
                    "{platform}: path/metered CPU ratio {}",
                    report.path_cpu_over_metered()
                );
            }
            Platform::BigQuery => {
                assert!(
                    report.path.ns(PathCategory::Cpu) < report.metered_cpu.as_nanos(),
                    "{platform}: fan-out path CPU should undercut fleet CPU"
                );
            }
        }

        // GWP samples cycles from the same metered universe: the sample
        // count must reconstruct the metered CPU within sampling noise.
        let mut profiler = GwpProfiler::new(GwpConfig::default());
        for run in runs.iter().filter(|r| r.platform == platform) {
            for exec in &run.executions {
                for item in &exec.cpu_work {
                    profiler.observe(&LeafWork {
                        category: item.category,
                        leaf: item.leaf,
                        time: item.time,
                        stack: item.stack.clone(),
                    });
                }
            }
        }
        let period = profiler.sample_period().as_nanos();
        let reconstructed = profiler.profile().total_samples() * period;
        let metered = report.metered_cpu.as_nanos();
        // audit: allow(cast, nanosecond totals to f64 for a tolerance ratio)
        let relative = (reconstructed as f64 - metered as f64).abs() / metered as f64;
        assert!(
            relative < 0.10,
            "{platform}: GWP reconstructs {reconstructed} ns from {metered} ns \
             metered ({:.1}% off)",
            relative * 100.0
        );
    }
}
