//! Bin-level tests of the `profile_history` gate: the seeded fixture
//! histories drive the acceptance semantics (sustained drift exits
//! nonzero, a single-snapshot blip exits zero), and `append` → `report`
//! round-trips byte-identically at any parallelism.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_profile_history"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsdp-history-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn seed_fixture(store: &PathBuf, inject: &str) {
    let out = bin()
        .arg("seed-fixture")
        .arg("--store")
        .arg(store)
        .args(["--inject", inject])
        .output()
        .expect("run seed-fixture");
    assert!(
        out.status.success(),
        "seed-fixture {inject}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn check(store: &PathBuf) -> std::process::Output {
    bin()
        .arg("check")
        .arg("--store")
        .arg(store)
        .output()
        .expect("run check")
}

#[test]
fn sustained_regression_trips_check_but_blip_passes() {
    let dir = temp_dir("gate");
    let store = dir.join("fixture.bin");

    seed_fixture(&store, "sustained");
    let out = check(&store);
    assert!(
        !out.status.success(),
        "an injected sustained share regression must exit nonzero: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("SUSTAINED DRIFT"), "{stdout}");
    assert!(stdout.contains("dc.protobuf"), "{stdout}");

    seed_fixture(&store, "blip");
    let out = check(&store);
    assert!(
        out.status.success(),
        "a single-snapshot blip must not page: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    seed_fixture(&store, "none");
    let out = check(&store);
    assert!(out.status.success(), "a clean history must pass");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_names_the_regressed_keys_since_commit() {
    let dir = temp_dir("report");
    let store = dir.join("fixture.bin");
    seed_fixture(&store, "sustained");

    let out = bin()
        .arg("report")
        .arg("--store")
        .arg(&store)
        .args(["--since", "fixture0000"])
        .output()
        .expect("run report");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("fixture0000"), "{stdout}");
    assert!(
        stdout.contains("dc.protobuf"),
        "the injected regression leads the report: {stdout}"
    );
    assert!(
        stdout.contains("spanner.commit;rpc;proto_encode"),
        "{stdout}"
    );

    let out = bin()
        .arg("report")
        .arg("--store")
        .arg(&store)
        .args(["--since", "fixture0000", "--json"])
        .output()
        .expect("run report --json");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        stdout.contains("\"schema\": \"hsdp-profile-history-report/1\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"baseline_commit\": \"fixture0000\""),
        "{stdout}"
    );
    assert_eq!(stdout.matches('{').count(), stdout.matches('}').count());

    // An unknown baseline commit is an error, not an empty report.
    let out = bin()
        .arg("report")
        .arg("--store")
        .arg(&store)
        .args(["--since", "nosuchcommit"])
        .output()
        .expect("run report");
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn append_then_report_is_parallelism_invariant() {
    // The acceptance loop: `append` a real (small) fleet snapshot at
    // parallelism 1 and at parallelism 4 into separate stores, then
    // `report` both — store bytes and report output must be identical.
    let dir = temp_dir("append");
    let mut stores = Vec::new();
    let mut reports = Vec::new();
    for parallelism in ["1", "4"] {
        let store = dir.join(format!("real_p{parallelism}.bin"));
        for (commit, seq, seed) in [("commit-a", "1", "64206"), ("commit-b", "2", "48879")] {
            let out = bin()
                .arg("append")
                .arg("--store")
                .arg(&store)
                .args(["--commit", commit, "--seq", seq, "--seed", seed])
                .args(["--parallelism", parallelism])
                .output()
                .expect("run append");
            assert!(
                out.status.success(),
                "append p={parallelism}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        stores.push(std::fs::read(&store).expect("read store"));
        let out = bin()
            .arg("report")
            .arg("--store")
            .arg(&store)
            .args(["--since", "commit-a"])
            .output()
            .expect("run report");
        assert!(out.status.success());
        reports.push(String::from_utf8(out.stdout).expect("utf-8"));
    }
    assert_eq!(
        stores[0], stores[1],
        "store bytes differ across parallelism"
    );
    assert_eq!(
        reports[0], reports[1],
        "report output differs across parallelism"
    );
    assert!(
        reports[0].contains("commit-a -> commit-b"),
        "{}",
        reports[0]
    );

    std::fs::remove_dir_all(&dir).ok();
}
