//! The schedule-perturbation checker: the dynamic counterpart of the
//! `determinism` audit rule.
//!
//! One fleet workload runs unperturbed at parallelism 1 to produce baseline
//! artifacts, then re-runs at parallelism 4 under eight different
//! perturbation seeds — each permuting job dispatch order, injecting
//! derived start jitter, and permuting completion-consumption order. The
//! fleet schedule includes the sub-shard jobs: every BigTable shard runs as
//! `tablets` independent tablet jobs (assembled after the pool drains), and
//! the perturbation seed also flows into each tablet's in-flight LSM
//! batches, so per-tablet flush and level-merge jobs are being reshuffled
//! while the artifacts are produced. Every artifact the fleet pipeline
//! ships (telemetry metrics/trace/critical-path JSON, collapsed stacks,
//! pprof protobuf) must come back byte-identical: the byte-equality here is
//! what lets profile diffs across runs and commits be read as real
//! regressions rather than schedule noise.

use hsdp_bench::exhibits::fleet_stack_profile;
use hsdp_bench::telemetry_out::build_artifacts;
use hsdp_platforms::runner::{fold_fleet, run_fleet_telemetry, FleetConfig};
use hsdp_simcore::pool::Perturbation;
use hsdp_simcore::time::SimDuration;

/// Perturbed schedules swept by the checker (≥ 8 by design).
const PERTURBATION_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 0xD15_0ACE];

/// Every byte-exact artifact of one fleet run.
struct Artifacts {
    metrics_json: String,
    trace_json: String,
    critical_path_json: String,
    folded: String,
    pprof: Vec<u8>,
}

fn run_artifacts(parallelism: usize, perturb: Option<Perturbation>) -> Artifacts {
    let config = FleetConfig {
        db_queries: 24,
        analytics_queries: 4,
        fact_rows: 300,
        seed: 0x5EED_CAFE,
        parallelism,
        shards: 4,
        tablets: 3,
        perturb,
    };
    let runs = run_fleet_telemetry(config);
    let telemetry = build_artifacts(&runs);
    let fleet = fold_fleet(runs);
    let stacks = fleet_stack_profile(&fleet, config.seed);
    Artifacts {
        metrics_json: telemetry.metrics_json,
        trace_json: telemetry.trace_json,
        critical_path_json: telemetry.critical_path_json,
        folded: stacks.folded(),
        pprof: stacks.to_pprof(SimDuration::from_micros(2)).encode(),
    }
}

#[test]
fn artifacts_are_byte_identical_across_perturbed_schedules() {
    let baseline = run_artifacts(1, None);
    assert!(!baseline.metrics_json.is_empty());
    assert!(!baseline.folded.is_empty());
    assert!(!baseline.pprof.is_empty());

    for seed in PERTURBATION_SEEDS {
        let perturbed = run_artifacts(4, Some(Perturbation::new(seed)));
        assert_eq!(
            perturbed.metrics_json, baseline.metrics_json,
            "metrics.json moved under perturbation seed {seed}"
        );
        assert_eq!(
            perturbed.trace_json, baseline.trace_json,
            "trace.json moved under perturbation seed {seed}"
        );
        assert_eq!(
            perturbed.critical_path_json, baseline.critical_path_json,
            "critical_path.json moved under perturbation seed {seed}"
        );
        assert_eq!(
            perturbed.folded, baseline.folded,
            "collapsed stacks moved under perturbation seed {seed}"
        );
        assert_eq!(
            perturbed.pprof, baseline.pprof,
            "pprof bytes moved under perturbation seed {seed}"
        );
    }
}
