//! Regenerates Figure 2 (end-to-end breakdown) from the simulated fleet and benchmarks the
//! aggregation stage.

use hsdp_bench::exhibits;
use hsdp_bench::harness::Criterion;
use hsdp_bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn bench(c: &mut Criterion) {
    let runs = exhibits::run_profiled_fleet(exhibits::bench_fleet_config());
    println!("\n{}", exhibits::figure2_exhibit(&runs));
    c.bench_function("fig2_e2e_breakdown/render", |b| {
        b.iter(|| black_box(exhibits::figure2_exhibit(black_box(&runs))))
    });
}

criterion_group!(name = benches; config = quick(); targets = bench);
criterion_main!(benches);
