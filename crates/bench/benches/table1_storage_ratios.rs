//! Regenerates Table 1 (storage-to-storage ratios) and benchmarks the
//! provisioning model.

use hsdp_bench::exhibits;
use hsdp_bench::harness::Criterion;
use hsdp_bench::{criterion_group, criterion_main};
use hsdp_storage::provision::{paper_spec, provision, PlatformClass};
use std::hint::black_box;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn bench(c: &mut Criterion) {
    println!("\n{}", exhibits::table1());
    c.bench_function("table1/provision_all_platforms", |b| {
        b.iter(|| {
            for class in [
                PlatformClass::Spanner,
                PlatformClass::BigTable,
                PlatformClass::BigQuery,
            ] {
                black_box(provision(&paper_spec(class)));
            }
        })
    });
}

criterion_group!(name = benches; config = quick(); targets = bench);
criterion_main!(benches);
