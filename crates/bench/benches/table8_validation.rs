//! Regenerates Table 8 (chained-model validation): replays the paper's RTL
//! numbers through the model, measures the real software pipeline, and
//! benchmarks the model-side arithmetic.

use hsdp_accelsim::modeled::{analytic_chained, simulate_chained, StageSpec};
use hsdp_accelsim::validate::paper_replay;
use hsdp_bench::exhibits;
use hsdp_bench::harness::Criterion;
use hsdp_bench::{criterion_group, criterion_main};
use hsdp_simcore::time::SimDuration;
use std::hint::black_box;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn bench(c: &mut Criterion) {
    println!("\n{}", exhibits::table8(800));
    c.bench_function("table8/paper_replay", |b| {
        b.iter(|| black_box(paper_replay()))
    });
    let stages = [
        StageSpec {
            per_item: SimDuration::from_micros(17),
            setup: SimDuration::from_micros(1489),
        },
        StageSpec {
            per_item: SimDuration::from_micros(22),
            setup: SimDuration::from_micros(4),
        },
    ];
    c.bench_function("table8/simulate_chained_1k_items", |b| {
        b.iter(|| black_box(simulate_chained(black_box(&stages), 1000)))
    });
    c.bench_function("table8/analytic_chained", |b| {
        b.iter(|| black_box(analytic_chained(black_box(&stages), 1000)))
    });
}

criterion_group!(name = benches; config = quick(); targets = bench);
criterion_main!(benches);
