//! Regenerates Figure 9 (synchronous on-chip upper bound) and benchmarks the model evaluation behind it.

use hsdp_bench::exhibits;
use hsdp_bench::harness::Criterion;
use hsdp_bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn bench(c: &mut Criterion) {
    println!("\n{}", exhibits::figure9());
    c.bench_function("fig9_sync_onchip_bound/regenerate", |b| {
        b.iter(|| black_box(exhibits::figure9()))
    });
}

criterion_group!(name = benches; config = quick(); targets = bench);
criterion_main!(benches);
