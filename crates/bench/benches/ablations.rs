//! The DESIGN.md ablation studies: chained-penalty bound, cache policy,
//! and trace-attribution rule.

use hsdp_bench::exhibits;
use hsdp_bench::harness::Criterion;
use hsdp_bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn bench(c: &mut Criterion) {
    println!("\n{}", exhibits::ablation_chain_penalty());
    println!("{}", exhibits::ablation_cache_policy());
    println!("{}", exhibits::ablation_attribution());
    c.bench_function("ablations/chain_penalty", |b| {
        b.iter(|| black_box(exhibits::ablation_chain_penalty()))
    });
}

criterion_group!(name = benches; config = quick(); targets = bench);
criterion_main!(benches);
