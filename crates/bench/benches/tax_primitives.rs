//! Microbenchmarks of the datacenter-tax primitives the platforms execute:
//! the per-byte costs behind the Figure 5 categories.

use hsdp_bench::harness::{Criterion, Throughput};
use hsdp_bench::{criterion_group, criterion_main};
use hsdp_taxes::compress::{compress, decompress};
use hsdp_taxes::crc::crc32c;
use hsdp_taxes::sha3::Sha3_256;
use hsdp_workload::proto_corpus;
use std::hint::black_box;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn bench(c: &mut Criterion) {
    let mut rng = hsdp_simcore::dist::seeded_rng(42);
    let messages = proto_corpus::corpus(64, &mut rng);
    let encoded: Vec<Vec<u8>> = messages.iter().map(|m| m.encode_to_vec()).collect();
    let blob: Vec<u8> = encoded.concat();
    let packed = compress(&blob);

    let mut group = c.benchmark_group("tax_primitives");
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("protobuf_encode_corpus", |b| {
        b.iter(|| {
            for m in &messages {
                black_box(m.encode_to_vec());
            }
        })
    });
    group.bench_function("sha3_256", |b| {
        b.iter(|| black_box(Sha3_256::digest(&blob)))
    });
    group.bench_function("crc32c", |b| b.iter(|| black_box(crc32c(&blob))));
    group.bench_function("compress", |b| b.iter(|| black_box(compress(&blob))));
    group.bench_function("decompress", |b| {
        b.iter(|| black_box(decompress(&packed).expect("valid block")))
    });
    group.finish();
}

criterion_group!(name = benches; config = quick(); targets = bench);
criterion_main!(benches);
