//! Randomized oracle tests for the tablet-partitioned LSM: a random
//! put/get/scan stream must read back identically from a multi-tablet
//! instance, a single-tablet instance, and a plain `BTreeMap` model — and
//! the pipelined compaction must produce the same execution records
//! run-for-run as a sequential one, at any worker count and under schedule
//! perturbation.

use std::collections::BTreeMap;

use hsdp_platforms::bigtable::{route_key, BigTable, BigTableConfig};
use hsdp_platforms::QueryExecution;
use hsdp_rng::{Rng, StdRng};
use hsdp_simcore::pool::Perturbation;

/// One step of the randomized workload, pre-generated so every instance
/// under test replays the identical stream.
#[derive(Debug, Clone)]
enum Op {
    Put { key: Vec<u8>, value: Vec<u8> },
    Get { key: Vec<u8> },
    Scan { start: Vec<u8>, limit: usize },
}

fn row_key(id: u64) -> Vec<u8> {
    format!("row-{id:06}").into_bytes()
}

/// A random stream over a hot key space: plenty of overwrites (so
/// compaction has versions to supersede), misses, and range scans whose
/// windows straddle tablet boundaries (routing is by key hash, so any
/// contiguous key range interleaves all tablets).
fn random_ops(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(len);
    for op in 0..len {
        let roll = rng.random_range(0u32..100);
        if roll < 60 {
            let id = rng.random_range(0u64..400);
            let pad = rng.random_range(0u64..40);
            ops.push(Op::Put {
                key: row_key(id),
                value: format!("v{op:04}-{id:06}-{:0>width$}", "", width = pad as usize)
                    .into_bytes(),
            });
        } else if roll < 85 {
            // Beyond the put range, so some gets miss.
            ops.push(Op::Get {
                key: row_key(rng.random_range(0u64..500)),
            });
        } else {
            ops.push(Op::Scan {
                start: row_key(rng.random_range(0u64..450)),
                limit: rng.random_range(1u64..30) as usize,
            });
        }
    }
    ops
}

/// Small memtable and fanin so a few hundred puts drive real flushes and
/// multi-level merges in every tablet.
fn small_config(tablets: usize) -> BigTableConfig {
    BigTableConfig {
        memtable_flush_bytes: 4 * 1024,
        compaction_fanin: 3,
        tablets,
        ..BigTableConfig::default()
    }
}

fn assert_exec_eq(a: &QueryExecution, b: &QueryExecution, context: &str) {
    assert_eq!(a.platform, b.platform, "{context}: platform");
    assert_eq!(a.label, b.label, "{context}: label");
    assert_eq!(a.spans, b.spans, "{context}: spans");
    assert_eq!(a.cpu_work, b.cpu_work, "{context}: cpu work");
}

#[test]
fn randomized_stream_reads_identically_across_tablet_counts() {
    for seed in [1u64, 2, 3] {
        let ops = random_ops(seed, 900);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut sharded = BigTable::new(small_config(4), seed);
        let mut oracle = BigTable::new(small_config(1), seed);
        for op in &ops {
            match op {
                Op::Put { key, value } => {
                    model.insert(key.clone(), value.clone());
                    sharded.put(key.clone(), value.clone());
                    oracle.put(key.clone(), value.clone());
                }
                Op::Get { key } => {
                    // Result-identity on every read, including misses, and
                    // compaction-preserves-newest: the model always holds
                    // the latest version of each key.
                    assert_eq!(
                        sharded.lookup(key),
                        model.get(key).cloned(),
                        "seed {seed}: sharded lookup diverged from model"
                    );
                    assert_eq!(
                        oracle.lookup(key),
                        model.get(key).cloned(),
                        "seed {seed}: single-tablet lookup diverged from model"
                    );
                    sharded.get(key);
                    oracle.get(key);
                }
                Op::Scan { start, limit } => {
                    let expected: Vec<(Vec<u8>, usize)> = model
                        .range(start.clone()..)
                        .take(*limit)
                        .map(|(k, v)| (k.clone(), v.len()))
                        .collect();
                    assert_eq!(
                        sharded.scan_model(start, *limit),
                        expected,
                        "seed {seed}: cross-tablet scan diverged from model"
                    );
                    assert_eq!(
                        oracle.scan_model(start, *limit),
                        expected,
                        "seed {seed}: single-tablet scan diverged from model"
                    );
                    sharded.scan(start, *limit);
                    oracle.scan(start, *limit);
                }
            }
        }
        // The workload actually exercised the machinery it claims to: keys
        // landed on every tablet (so the scans above were cross-tablet) and
        // both instances flushed and compacted.
        let touched: std::collections::BTreeSet<usize> =
            model.keys().map(|k| route_key(k, 4)).collect();
        assert_eq!(touched.len(), 4, "seed {seed}: a tablet saw no keys");
        assert!(
            sharded.compactions() > 0,
            "seed {seed}: sharded never compacted"
        );
        assert!(
            oracle.compactions() > 0,
            "seed {seed}: oracle never compacted"
        );
        assert_eq!(sharded.tablet_count(), 4);
    }
}

#[test]
fn randomized_pipelined_compaction_matches_sequential_run_for_run() {
    for seed in [7u64, 0xBEEF] {
        let ops = random_ops(seed, 500);
        let replay = |parallelism: usize, perturb: Option<Perturbation>| -> Vec<QueryExecution> {
            let mut db = BigTable::new(
                BigTableConfig {
                    compaction_parallelism: parallelism,
                    perturb,
                    ..small_config(3)
                },
                seed,
            );
            ops.iter()
                .map(|op| match op {
                    Op::Put { key, value } => db.put(key.clone(), value.clone()),
                    Op::Get { key } => db.get(key),
                    Op::Scan { start, limit } => db.scan(start, *limit),
                })
                .collect()
        };
        let sequential = replay(1, None);
        for (parallelism, perturb) in [
            (4, None),
            (1, Some(Perturbation::new(5))),
            (3, Some(Perturbation::new(0xA11))),
        ] {
            let pipelined = replay(parallelism, perturb);
            assert_eq!(sequential.len(), pipelined.len());
            for (i, (a, b)) in sequential.iter().zip(&pipelined).enumerate() {
                assert_exec_eq(
                    a,
                    b,
                    &format!("seed {seed} op {i} at parallelism {parallelism}"),
                );
            }
        }
    }
}
