//! Equivalence suite for the loser-tree compaction merge: on randomized
//! overlapping runs, [`merge_sorted_runs`] must reproduce the retained
//! `BTreeMap` merge byte for byte — same order, same dedup winner, same
//! values — since `bigtable::compact` swapped onto the loser tree.

use std::collections::BTreeMap;

use hsdp_platforms::merge::{merge_runs_reference, merge_sorted_runs, Entry};
use hsdp_rng::{Rng, StdRng};

/// Builds one sorted, unique-keyed run: the shape memtable flushes and
/// prior compactions produce. Keys are drawn from a small space so runs
/// overlap heavily; values record the run index so dedup winners are
/// distinguishable.
fn random_run(rng: &mut StdRng, run_index: usize, key_space: u32) -> Vec<Entry> {
    let len = rng.random_range(0..=64usize);
    let mut map: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for _ in 0..len {
        let key_id = rng.random_range(0..key_space);
        let key = format!("row-{key_id:06}").into_bytes();
        let value = format!("run-{run_index}-val-{}", rng.random::<u32>()).into_bytes();
        map.insert(key, value);
    }
    map.into_iter().collect()
}

#[test]
fn loser_tree_matches_btreemap_on_randomized_overlapping_runs() {
    let mut rng = StdRng::seed_from_u64(0xC04_FAC7);
    for trial in 0..200 {
        let run_count = rng.random_range(1..=10usize);
        // Small key spaces force duplicate chains across many runs.
        let key_space = rng.random_range(4..=96u32);
        let runs: Vec<Vec<Entry>> = (0..run_count)
            .map(|r| random_run(&mut rng, r, key_space))
            .collect();
        let expected = merge_runs_reference(runs.clone());
        let actual = merge_sorted_runs(runs);
        assert_eq!(actual, expected, "trial {trial}: k={run_count}");
    }
}

#[test]
fn loser_tree_matches_btreemap_on_disjoint_runs() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for trial in 0..50 {
        let run_count = rng.random_range(1..=8usize);
        // Each run owns its own key prefix: zero duplicates, pure
        // interleave ordering.
        let runs: Vec<Vec<Entry>> = (0..run_count)
            .map(|r| {
                (0..rng.random_range(0..=32usize))
                    .map(|i| {
                        (
                            format!("run{r}-key-{i:04}").into_bytes(),
                            format!("v{i}").into_bytes(),
                        )
                    })
                    .collect()
            })
            .collect();
        let expected = merge_runs_reference(runs.clone());
        let actual = merge_sorted_runs(runs);
        assert_eq!(actual, expected, "trial {trial}");
    }
}

#[test]
fn loser_tree_matches_btreemap_on_identical_runs() {
    // Every run holds the same keys; only the newest run's values survive.
    let base: Vec<Entry> = (0..40)
        .map(|i| (format!("key-{i:03}").into_bytes(), b"old".to_vec()))
        .collect();
    for k in 2..=6usize {
        let mut runs: Vec<Vec<Entry>> = vec![base.clone(); k - 1];
        let newest: Vec<Entry> = base
            .iter()
            .map(|(key, _)| (key.clone(), b"new".to_vec()))
            .collect();
        runs.push(newest);
        let expected = merge_runs_reference(runs.clone());
        let actual = merge_sorted_runs(runs);
        assert_eq!(actual, expected, "k = {k}");
        assert!(actual.iter().all(|(_, v)| v == b"new"));
    }
}
