//! Thread-count invariance of the parallel fleet driver: the same seed must
//! yield byte-identical merged records and profiling breakdowns at every
//! `parallelism` setting.

use hsdp_platforms::meter::items_breakdown;
use hsdp_platforms::runner::{run_fleet, FleetConfig};
use hsdp_platforms::QueryExecution;

fn small_config(parallelism: usize) -> FleetConfig {
    FleetConfig {
        db_queries: 60,
        analytics_queries: 9,
        fact_rows: 600,
        seed: 0x00DE_7EC7,
        parallelism,
        shards: 4,
        tablets: 2,
        perturb: None,
    }
}

/// Full structural equality of two execution records: label, span tree,
/// and every labeled CPU work item.
fn assert_exec_eq(a: &QueryExecution, b: &QueryExecution, context: &str) {
    assert_eq!(a.platform, b.platform, "{context}: platform");
    assert_eq!(a.label, b.label, "{context}: label");
    assert_eq!(a.spans, b.spans, "{context}: spans");
    assert_eq!(a.cpu_work, b.cpu_work, "{context}: cpu work");
}

#[test]
fn fleet_output_is_parallelism_invariant() {
    let baseline = run_fleet(small_config(1));
    for parallelism in [2usize, 8] {
        let parallel = run_fleet(small_config(parallelism));
        assert_eq!(baseline.len(), parallel.len());
        for ((pa, ea), (pb, eb)) in baseline.iter().zip(&parallel) {
            assert_eq!(pa, pb, "platform order must be canonical");
            assert_eq!(
                ea.len(),
                eb.len(),
                "{pa}: merged record count at parallelism {parallelism}"
            );
            for (i, (x, y)) in ea.iter().zip(eb).enumerate() {
                assert_exec_eq(x, y, &format!("{pa} exec {i} at parallelism {parallelism}"));
            }
            // The profiling view (the labeled cycle breakdown the GWP
            // pipeline consumes) folds to the identical distribution.
            let items_a: Vec<_> = ea.iter().flat_map(|e| e.cpu_work.clone()).collect();
            let items_b: Vec<_> = eb.iter().flat_map(|e| e.cpu_work.clone()).collect();
            assert_eq!(
                items_breakdown(&items_a),
                items_breakdown(&items_b),
                "{pa}: profiling breakdown at parallelism {parallelism}"
            );
        }
    }
}

#[test]
fn fleet_output_is_schedule_perturbation_invariant() {
    use hsdp_simcore::pool::Perturbation;
    let baseline = run_fleet(small_config(1));
    for seed in 0..4u64 {
        let perturbed = run_fleet(FleetConfig {
            perturb: Some(Perturbation::new(seed)),
            ..small_config(4)
        });
        assert_eq!(baseline.len(), perturbed.len());
        for ((pa, ea), (pb, eb)) in baseline.iter().zip(&perturbed) {
            assert_eq!(pa, pb, "platform order must be canonical");
            assert_eq!(ea.len(), eb.len(), "{pa}: record count at perturb {seed}");
            for (i, (x, y)) in ea.iter().zip(eb).enumerate() {
                assert_exec_eq(x, y, &format!("{pa} exec {i} at perturb {seed}"));
            }
        }
    }
}

#[test]
fn different_seeds_change_output() {
    // Guard against the degenerate "deterministic because constant" failure.
    let a = run_fleet(small_config(2));
    let b = run_fleet(FleetConfig {
        seed: 0x00DD_5EED,
        ..small_config(2)
    });
    let labels = |fleet: &[(hsdp_core::category::Platform, Vec<QueryExecution>)]| -> Vec<&str> {
        fleet
            .iter()
            .flat_map(|(_, execs)| execs.iter().map(|e| e.label))
            .collect()
    };
    assert_ne!(labels(&a), labels(&b), "seed must steer the traffic mix");
}
