//! Parallelism invariance of the telemetry pipeline: the merged fleet
//! metrics registry must serialize byte-identically at every `parallelism`
//! setting, and instrumenting a run must not perturb the record stream.

use hsdp_platforms::runner::{
    fold_fleet, merge_fleet_metrics, run_fleet, run_fleet_telemetry, FleetConfig,
};

fn small_config(parallelism: usize) -> FleetConfig {
    FleetConfig {
        db_queries: 60,
        analytics_queries: 9,
        fact_rows: 600,
        seed: 0x00DE_7EC7,
        parallelism,
        shards: 4,
        tablets: 2,
        perturb: None,
    }
}

#[test]
fn merged_metrics_are_parallelism_invariant() {
    let baseline = merge_fleet_metrics(&run_fleet_telemetry(small_config(1))).to_json();
    assert!(
        baseline.contains("spanner/queries") && baseline.contains("bigtable/queries"),
        "merged registry is missing platform counters:\n{baseline}"
    );
    for parallelism in [2usize, 4] {
        let parallel =
            merge_fleet_metrics(&run_fleet_telemetry(small_config(parallelism))).to_json();
        assert_eq!(
            parallel, baseline,
            "metrics JSON diverged at parallelism {parallelism}"
        );
    }
}

#[test]
fn instrumentation_does_not_perturb_the_record_stream() {
    // Telemetry reads the simulation; it never draws from the RNG or
    // advances the clock, so the instrumented fold equals the plain run.
    let plain = run_fleet(small_config(2));
    let instrumented = fold_fleet(run_fleet_telemetry(small_config(2)));
    assert_eq!(plain.len(), instrumented.len());
    for ((pa, ea), (pb, eb)) in plain.iter().zip(&instrumented) {
        assert_eq!(pa, pb, "platform order must be canonical");
        assert_eq!(ea.len(), eb.len(), "{pa}: record count");
        for (i, (x, y)) in ea.iter().zip(eb).enumerate() {
            assert_eq!(x.label, y.label, "{pa} exec {i}: label");
            assert_eq!(x.spans, y.spans, "{pa} exec {i}: spans");
            assert_eq!(x.cpu_work, y.cpu_work, "{pa} exec {i}: cpu work");
        }
    }
}

#[test]
fn shard_registries_carry_shard_local_counts() {
    // Each shard's registry covers only its own traffic slice: the merged
    // query counter equals the sum of per-shard query counters, and every
    // shard served some queries.
    let runs = run_fleet_telemetry(small_config(1));
    let merged = merge_fleet_metrics(&runs);
    for (platform, counter) in [
        (hsdp_core::category::Platform::Spanner, "spanner"),
        (hsdp_core::category::Platform::BigTable, "bigtable"),
        (hsdp_core::category::Platform::BigQuery, "bigquery"),
    ] {
        let shard_sum: u64 = runs
            .iter()
            .filter(|r| r.platform == platform)
            .map(|r| r.telemetry.counter_subsystem_sum(counter))
            .sum();
        assert_eq!(
            merged.counter_subsystem_sum(counter),
            shard_sum,
            "{counter}: merged total != sum of shard totals"
        );
        assert!(shard_sum > 0, "{counter}: no telemetry recorded");
    }
}
