//! Property tests: the BigTable LSM tree against a reference model.
//!
//! Whatever flushes and compactions the simulator performs along the way,
//! the visible key-value contents must match a plain map driven by the same
//! operation sequence.

use std::collections::HashMap;

use hsdp_platforms::bigtable::{BigTable, BigTableConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Get(u16),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..200, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
            (0u16..200).prop_map(Op::Get),
        ],
        1..300,
    )
}

fn key(k: u16) -> Vec<u8> {
    format!("key-{k:05}").into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    // Large enough to trigger flushes/compactions within a sequence.
    format!("v-{k}-{v}-{}", "x".repeat(64)).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lsm_matches_reference_map(ops in arb_ops()) {
        let mut bt = BigTable::new(
            BigTableConfig {
                memtable_flush_bytes: 1_500,
                compaction_fanin: 3,
                ..BigTableConfig::default()
            },
            7,
        );
        let mut reference: HashMap<u16, u8> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Put(k, v) => {
                    bt.put(key(k), value(k, v));
                    reference.insert(k, v);
                }
                Op::Get(k) => {
                    let expected = reference.get(&k).map(|&v| value(k, v));
                    prop_assert_eq!(bt.lookup(&key(k)), expected, "key {}", k);
                }
            }
        }
        // Final sweep: every reference entry is visible, and no phantom
        // keys exist.
        for (&k, &v) in &reference {
            prop_assert_eq!(bt.lookup(&key(k)), Some(value(k, v)));
        }
        prop_assert_eq!(bt.lookup(b"never-written"), None);
    }

    #[test]
    fn lsm_is_deterministic(puts in proptest::collection::vec((0u16..100, any::<u8>()), 1..100)) {
        let run = |seed: u64| {
            let mut bt = BigTable::new(
                BigTableConfig {
                    memtable_flush_bytes: 1_000,
                    compaction_fanin: 3,
                    ..BigTableConfig::default()
                },
                seed,
            );
            let mut total_e2e = 0u64;
            for &(k, v) in &puts {
                let exec = bt.put(key(k), value(k, v));
                total_e2e += exec.decomposition().end_to_end.as_nanos();
            }
            (total_e2e, bt.compactions(), bt.sstable_count())
        };
        prop_assert_eq!(run(42), run(42), "same seed, same simulation");
    }
}
