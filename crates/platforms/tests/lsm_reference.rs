//! Randomized tests: the BigTable LSM tree against a reference model.
//!
//! Whatever flushes and compactions the simulator performs along the way,
//! the visible key-value contents must match a plain map driven by the same
//! operation sequence. Formerly `proptest` strategies; now driven by the
//! in-repo deterministic PRNG so the workspace stays dependency-free.

use std::collections::HashMap;

use hsdp_platforms::bigtable::{BigTable, BigTableConfig};
use hsdp_rng::{Rng, StdRng};

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Get(u16),
}

fn arb_ops(rng: &mut StdRng) -> Vec<Op> {
    let len = rng.random_range(1..300usize);
    (0..len)
        .map(|_| {
            if rng.random_bool(0.5) {
                Op::Put(rng.random_range(0u16..200), rng.random())
            } else {
                Op::Get(rng.random_range(0u16..200))
            }
        })
        .collect()
}

fn key(k: u16) -> Vec<u8> {
    format!("key-{k:05}").into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    // Large enough to trigger flushes/compactions within a sequence.
    format!("v-{k}-{v}-{}", "x".repeat(64)).into_bytes()
}

#[test]
fn lsm_matches_reference_map() {
    let mut rng = StdRng::seed_from_u64(0x15B1);
    for _ in 0..32 {
        let ops = arb_ops(&mut rng);
        let mut bt = BigTable::new(
            BigTableConfig {
                memtable_flush_bytes: 1_500,
                compaction_fanin: 3,
                ..BigTableConfig::default()
            },
            7,
        );
        let mut reference: HashMap<u16, u8> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Put(k, v) => {
                    bt.put(key(k), value(k, v));
                    reference.insert(k, v);
                }
                Op::Get(k) => {
                    let expected = reference.get(&k).map(|&v| value(k, v));
                    assert_eq!(bt.lookup(&key(k)), expected, "key {k}");
                }
            }
        }
        // Final sweep: every reference entry is visible, and no phantom
        // keys exist.
        for (&k, &v) in &reference {
            assert_eq!(bt.lookup(&key(k)), Some(value(k, v)));
        }
        assert_eq!(bt.lookup(b"never-written"), None);
    }
}

#[test]
fn lsm_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x15B2);
    for _ in 0..16 {
        let puts: Vec<(u16, u8)> = (0..rng.random_range(1..100usize))
            .map(|_| (rng.random_range(0u16..100), rng.random()))
            .collect();
        let run = |seed: u64| {
            let mut bt = BigTable::new(
                BigTableConfig {
                    memtable_flush_bytes: 1_000,
                    compaction_fanin: 3,
                    ..BigTableConfig::default()
                },
                seed,
            );
            let mut total_e2e = 0u64;
            for &(k, v) in &puts {
                let exec = bt.put(key(k), value(k, v));
                total_e2e += exec.decomposition().end_to_end.as_nanos();
            }
            (total_e2e, bt.compactions(), bt.sstable_count())
        };
        assert_eq!(run(42), run(42), "same seed, same simulation");
    }
}
