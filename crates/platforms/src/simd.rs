//! SIMD fast paths for the platform data structures — the crate's **unsafe
//! quarantine** (kernel round 3).
//!
//! Mirrors the `hsdp-taxes` discipline: the crate root carries
//! `deny(unsafe_code)` and only this module opts back in; `xtask audit
//! --rule unsafe` enforces that every `unsafe` token in the crate lives
//! here and that every `unsafe` block carries a `// SAFETY:` comment.
//!
//! The one resident today is the AVX2 Bloom block probe: instead of seven
//! sequential word tests, it materializes the 512-bit probe mask and checks
//! the whole 64-byte block in two 256-bit lanes — `mask & !block` must be
//! all-zero. Results are bit-identical to
//! [`crate::bloom::Bloom::block_probe_scalar`] because both test exactly
//! the bits of [`crate::bloom::Bloom::probe_mask`].
//!
//! It is *not* installed on the `may_contain` hot path: measured on the
//! fleet host it runs ~13 ns/probe against ~2.3 ns for the scalar
//! early-exit loop, because the probe positions are serialized in `h2`
//! (their extraction is the bottleneck either way) and a register-built
//! mask measures no better than the memory round-trip. The kernel stays
//! here as a differential-tested alternative, and `fleet_bench` records
//! the `bloom/block-probe/{scalar,simd}` pair so the negative result is
//! re-measured — and the decision revisited — on every host the bench
//! runs on.
#![allow(unsafe_code)]

/// Resolves the SIMD Bloom block probe when the host supports it (else
/// `None`). `HSDP_FORCE_SCALAR=1` reports no capabilities (see
/// [`hsdp_taxes::dispatch`]). Consumed by the differential tests and the
/// `fleet_bench` scalar-vs-SIMD pair; [`crate::bloom::Bloom::may_contain`]
/// deliberately keeps the scalar probe (see the module docs).
pub fn block_probe_fn() -> Option<fn(&[u64], u64) -> bool> {
    #[cfg(target_arch = "x86_64")]
    if hsdp_taxes::dispatch::CpuFeatures::get().avx2 {
        return Some(x86::block_probe_entry);
    }
    None
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        _mm256_andnot_si256, _mm256_loadu_si256, _mm256_or_si256, _mm256_testz_si256,
    };

    use crate::bloom::Bloom;

    /// Safe entry installed by [`super::block_probe_fn`].
    pub(super) fn block_probe_entry(block: &[u64], h2: u64) -> bool {
        // SAFETY: `block_probe_fn` installs this entry only after
        // `CpuFeatures::get` confirmed AVX2 on this CPU.
        unsafe { block_probe_avx2(block, h2) }
    }

    /// AVX2 whole-block probe: true iff every bit of the probe mask is set
    /// in the 8-word block — the same answer as the scalar early-exit loop.
    #[target_feature(enable = "avx2")]
    fn block_probe_avx2(block: &[u64], h2: u64) -> bool {
        assert!(block.len() >= 8, "bloom block is 8 words");
        let mask = Bloom::probe_mask(h2);
        let words = block.as_ptr();
        let need = mask.as_ptr();
        // SAFETY: the assert above guarantees 64 readable bytes at `words`,
        // and `mask` is a [u64; 8] so 64 bytes are readable at `need`; the
        // loads are unaligned-tolerant (`loadu`).
        unsafe {
            let lo = _mm256_loadu_si256(words.cast());
            let hi = _mm256_loadu_si256(words.add(4).cast());
            let lo_need = _mm256_loadu_si256(need.cast());
            let hi_need = _mm256_loadu_si256(need.add(4).cast());
            // missing = need & !have, per 256-bit half; present iff none.
            let missing = _mm256_or_si256(
                _mm256_andnot_si256(lo, lo_need),
                _mm256_andnot_si256(hi, hi_need),
            );
            _mm256_testz_si256(missing, missing) == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::bloom::Bloom;

    #[test]
    fn simd_block_probe_matches_scalar() {
        let Some(simd) = super::block_probe_fn() else {
            eprintln!("skipping: no SIMD bloom probe on this host");
            return;
        };
        // Random blocks and h2 values: identical verdicts required, both on
        // sparse blocks (mostly misses) and saturated blocks (mostly hits).
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for round in 0..2000 {
            let density = round % 4;
            let block: Vec<u64> = (0..8)
                .map(|_| match density {
                    0 => 0,
                    1 => next() & next() & next(),
                    2 => next() | next(),
                    _ => u64::MAX,
                })
                .collect();
            let h2 = next();
            assert_eq!(
                simd(&block, h2),
                Bloom::block_probe_scalar(&block, h2),
                "round {round} block {block:?} h2 {h2:#x}"
            );
        }
    }

    #[test]
    fn filter_keeps_bloom_guarantees() {
        let mut bloom = Bloom::new(4096);
        for i in 0..4096u32 {
            bloom.insert(format!("row-{i:05}").as_bytes());
        }
        // No false negatives through the production probe; the SIMD probe
        // gives identical verdicts (see simd_block_probe_matches_scalar),
        // so these guarantees transfer to it verbatim.
        for i in 0..4096u32 {
            assert!(bloom.may_contain(format!("row-{i:05}").as_bytes()));
        }
        // False-positive rate stays in the blocked-filter envelope.
        let fp = (0..4096u32)
            .filter(|i| bloom.may_contain(format!("absent-{i:05}").as_bytes()))
            .count();
        assert!(fp < 150, "fp {fp}");
    }
}
