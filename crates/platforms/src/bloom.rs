//! Bloom filters for SSTable key membership — the standard LSM read
//! optimization BigTable uses to avoid touching SSTables that cannot
//! contain a key.
//!
//! [`Bloom`] is a cache-line-blocked filter: every key touches exactly one
//! 64-byte block (eight words), so a probe costs one cache line instead of
//! up to seven scattered lines, the block count is a power of two so block
//! selection is a mask instead of a `%` division, and the hash consumes the
//! key eight bytes at a time. [`ReferenceBloom`] is the original unblocked
//! filter, retained as the behavioural baseline for property tests and the
//! `fleet_bench` comparison — the same oracle discipline the CRC32C and
//! compression kernels follow.

/// Words per block: 8 x 64 bits = one 64-byte cache line.
const BLOCK_WORDS: usize = 8;
/// Bits per block.
const BLOCK_BITS: usize = BLOCK_WORDS * 64;
/// Bits budgeted per expected key (~1% false positives unblocked).
const BITS_PER_KEY: usize = 10;
/// Probes per key.
const HASHES: u32 = 7;

/// A cache-line-blocked Bloom filter over byte-string keys.
///
/// Sizing invariant: the table is a power-of-two number of 512-bit blocks
/// holding at least [`BITS_PER_KEY`] bits per expected key — exactly
/// `bits / 64` words, no slack word, no `%` on the probe path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    words: Vec<u64>,
    block_mask: u64,
    entries: usize,
}

impl Bloom {
    /// Builds a filter sized for `expected` entries at roughly 1% false
    /// positives (10 bits/key, 7 probes within one 64-byte block).
    #[must_use]
    pub fn new(expected: usize) -> Self {
        let bit_count = (expected.max(1) * BITS_PER_KEY)
            .next_power_of_two()
            .max(BLOCK_BITS);
        let blocks = bit_count / BLOCK_BITS;
        debug_assert!(blocks.is_power_of_two());
        Bloom {
            words: vec![0u64; blocks * BLOCK_WORDS],
            block_mask: blocks as u64 - 1,
            entries: 0,
        }
    }

    /// Word-at-a-time 128-bit-state hash: eight key bytes per round, with
    /// an FNV-style tail for the last partial word. Returns `(h1, h2)` —
    /// `h1` picks the block, `h2` supplies the seven 9-bit in-block probes.
    #[inline]
    fn hash_pair(key: &[u8]) -> (u64, u64) {
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h2: u64 = 0x6c62_272e_07bb_0142;
        let mut chunks = key.chunks_exact(8);
        for chunk in &mut chunks {
            // audit: allow(panic, chunks_exact(8) yields exactly 8-byte chunks)
            let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h1 = (h1 ^ w).wrapping_mul(0x100_0000_01b3).rotate_left(29);
            h2 = (h2 ^ w.rotate_left(32)).wrapping_mul(0x3f4d_72f9_8ac1_76bd);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut w = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                w |= u64::from(b) << (8 * i);
            }
            // Length in the top byte so "ab" and "ab\0" diverge.
            w |= (tail.len() as u64) << 56;
            h1 = (h1 ^ w).wrapping_mul(0x100_0000_01b3).rotate_left(29);
            h2 = (h2 ^ w.rotate_left(32)).wrapping_mul(0x3f4d_72f9_8ac1_76bd);
        }
        // Finalize so short keys still spread across blocks.
        h1 ^= h1 >> 33;
        h1 = h1.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h1 ^= h1 >> 29;
        h2 ^= key.len() as u64;
        h2 ^= h2 >> 31;
        h2 = h2.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h2 ^= h2 >> 27;
        (h1, h2)
    }

    /// The base word index of the block `h1` selects.
    #[inline]
    fn block_base(&self, h1: u64) -> usize {
        ((h1 & self.block_mask) as usize) * BLOCK_WORDS
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hash_pair(key);
        let base = self.block_base(h1);
        for i in 0..HASHES {
            // Seven disjoint 9-bit slices of h2: word index (3 bits) plus
            // bit-in-word (6 bits), all mask arithmetic.
            let bits = (h2 >> (9 * i)) & 0x1ff;
            self.words[base + (bits >> 6) as usize] |= 1u64 << (bits & 63);
        }
        self.entries += 1;
    }

    /// True if the key *may* be present (no false negatives).
    ///
    /// Probes with [`Bloom::block_probe_scalar`] — a deliberate,
    /// measurement-driven choice from kernel round 3. The AVX2 whole-block
    /// probe in [`crate::simd`] answers identically (differential-tested)
    /// but loses ~5x here: the seven probe positions arrive serialized in
    /// `h2`, so extracting them is the bottleneck no vector width shortens,
    /// the 64-byte block is cache-resident, and the scalar loop early-exits
    /// on the first missing bit — the common case for the absent keys bloom
    /// filters exist to reject. `BENCH_fleet.json` records the
    /// `bloom/block-probe/{scalar,simd}` pair so the tradeoff stays visible
    /// run over run.
    #[must_use]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash_pair(key);
        let base = self.block_base(h1);
        Self::block_probe_scalar(&self.words[base..base + BLOCK_WORDS], h2)
    }

    /// Scalar block probe: seven sequential word tests with early exit —
    /// the round-2 fast path, benchmark baseline, and oracle for the SIMD
    /// block probe. `block` is one 8-word (64-byte) filter block.
    #[must_use]
    pub fn block_probe_scalar(block: &[u64], h2: u64) -> bool {
        (0..HASHES).all(|i| {
            let bits = (h2 >> (9 * i)) & 0x1ff;
            block[(bits >> 6) as usize] & (1u64 << (bits & 63)) != 0
        })
    }

    /// The 512-bit probe mask `h2` selects: the seven bits a key must have
    /// set within its block, as one word-per-lane mask. Shared by the SIMD
    /// whole-block test and its differential tests.
    #[must_use]
    pub fn probe_mask(h2: u64) -> [u64; BLOCK_WORDS] {
        let mut mask = [0u64; BLOCK_WORDS];
        for i in 0..HASHES {
            let bits = (h2 >> (9 * i)) & 0x1ff;
            mask[(bits >> 6) as usize] |= 1u64 << (bits & 63);
        }
        mask
    }

    /// Number of inserted keys.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Size of the filter in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    /// Number of 64-byte blocks (always a power of two).
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.words.len() / BLOCK_WORDS
    }
}

/// The original unblocked Bloom filter: seven independent probes spread
/// over the whole table, located with a `%` division. Retained as the
/// baseline for the blocked filter's property tests and benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceBloom {
    bits: Vec<u64>,
    hashes: u32,
    entries: usize,
}

impl ReferenceBloom {
    /// Builds a filter sized for `expected` entries (10 bits/key, 7 hashes).
    #[must_use]
    pub fn new(expected: usize) -> Self {
        let bit_count = (expected.max(1) * BITS_PER_KEY).next_power_of_two();
        ReferenceBloom {
            bits: vec![0u64; bit_count / 64 + 1],
            hashes: HASHES,
            entries: 0,
        }
    }

    fn hash_pair(key: &[u8]) -> (u64, u64) {
        // FNV-1a for h1; a second pass with a different offset for h2.
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h2: u64 = 0x6c62_272e_07bb_0142;
        for &b in key {
            h1 = (h1 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            h2 = (h2 ^ u64::from(b)).wrapping_mul(0x3f4d_72f9_8ac1_76bd);
        }
        (h1, h2 | 1) // h2 odd so strides cover the table
    }

    fn bit_count(&self) -> u64 {
        self.bits.len() as u64 * 64
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hash_pair(key);
        let m = self.bit_count();
        for i in 0..self.hashes {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % m;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.entries += 1;
    }

    /// True if the key *may* be present (no false negatives).
    #[must_use]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash_pair(key);
        let m = self.bit_count();
        (0..self.hashes).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % m;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Number of inserted keys.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Size of the filter in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = Bloom::new(1000);
        for i in 0..1000u32 {
            bloom.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..1000u32 {
            assert!(bloom.may_contain(format!("key-{i}").as_bytes()), "key-{i}");
        }
        assert_eq!(bloom.entries(), 1000);
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut bloom = Bloom::new(10_000);
        for i in 0..10_000u32 {
            bloom.insert(format!("present-{i}").as_bytes());
        }
        let mut false_positives = 0;
        for i in 0..10_000u32 {
            if bloom.may_contain(format!("absent-{i}").as_bytes()) {
                false_positives += 1;
            }
        }
        // 10+ bits/key with 7 in-block probes: ~1-2%; allow 3%.
        assert!(false_positives < 300, "fp {false_positives}");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bloom = Bloom::new(10);
        assert!(!bloom.may_contain(b"anything"));
        assert!(bloom.byte_size() > 0);
    }

    /// Satellite invariant: sizing is exact. The old `bit_count / 64 + 1`
    /// wasted a word and made the table a non-power-of-two, forcing the
    /// slow `%` probe path; the blocked filter must never regress to that.
    #[test]
    fn sizing_is_exact_power_of_two_blocks() {
        for expected in [0usize, 1, 3, 7, 51, 64, 1000, 10_000, 123_457] {
            let bloom = Bloom::new(expected);
            assert!(
                bloom.block_count().is_power_of_two(),
                "expected {expected}: {} blocks",
                bloom.block_count()
            );
            // Exactly block_count * 64 bytes — no slack word.
            assert_eq!(bloom.byte_size(), bloom.block_count() * BLOCK_BITS / 8);
            // At least the bits-per-key budget.
            assert!(bloom.byte_size() * 8 >= expected.max(1) * BITS_PER_KEY);
            // Never more than 2x the budget (next_power_of_two), floored at
            // one block.
            assert!(bloom.byte_size() * 8 <= (expected.max(1) * BITS_PER_KEY * 2).max(BLOCK_BITS));
        }
    }

    #[test]
    fn reference_bloom_still_behaves() {
        let mut bloom = ReferenceBloom::new(1000);
        for i in 0..1000u32 {
            bloom.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..1000u32 {
            assert!(bloom.may_contain(format!("key-{i}").as_bytes()), "key-{i}");
        }
        assert_eq!(bloom.entries(), 1000);
        let mut false_positives = 0;
        for i in 0..1000u32 {
            if bloom.may_contain(format!("absent-{i}").as_bytes()) {
                false_positives += 1;
            }
        }
        assert!(false_positives < 30, "fp {false_positives}");
    }

    #[test]
    fn blocked_and_reference_agree_on_membership_guarantee() {
        // Property: both filters admit every inserted key, whatever the
        // key shapes (empty, short, word-boundary, long).
        let keys: Vec<Vec<u8>> = (0..512u32)
            .map(|i| {
                let len = (i as usize * 7) % 41;
                (0..len)
                    .map(|j| (i as u8).wrapping_mul(31).wrapping_add(j as u8))
                    .collect()
            })
            .collect();
        let mut blocked = Bloom::new(keys.len());
        let mut reference = ReferenceBloom::new(keys.len());
        for k in &keys {
            blocked.insert(k);
            reference.insert(k);
        }
        for k in &keys {
            assert!(blocked.may_contain(k));
            assert!(reference.may_contain(k));
        }
    }
}
