//! A Bloom filter for SSTable key membership — the standard LSM read
//! optimization BigTable uses to avoid touching SSTables that cannot
//! contain a key.

/// A fixed-size Bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u64>,
    hashes: u32,
    entries: usize,
}

impl Bloom {
    /// Builds a filter sized for `expected` entries at roughly 1% false
    /// positives (10 bits/key, 7 hash functions).
    #[must_use]
    pub fn new(expected: usize) -> Self {
        let bit_count = (expected.max(1) * 10).next_power_of_two();
        Bloom {
            bits: vec![0u64; bit_count / 64 + 1],
            hashes: 7,
            entries: 0,
        }
    }

    fn hash_pair(key: &[u8]) -> (u64, u64) {
        // FNV-1a for h1; a second pass with a different offset for h2.
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h2: u64 = 0x6c62_272e_07bb_0142;
        for &b in key {
            h1 = (h1 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            h2 = (h2 ^ u64::from(b)).wrapping_mul(0x3f4d_72f9_8ac1_76bd);
        }
        (h1, h2 | 1) // h2 odd so strides cover the table
    }

    fn bit_count(&self) -> u64 {
        self.bits.len() as u64 * 64
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hash_pair(key);
        let m = self.bit_count();
        for i in 0..self.hashes {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % m;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.entries += 1;
    }

    /// True if the key *may* be present (no false negatives).
    #[must_use]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash_pair(key);
        let m = self.bit_count();
        (0..self.hashes).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % m;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Number of inserted keys.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Size of the filter in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = Bloom::new(1000);
        for i in 0..1000u32 {
            bloom.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..1000u32 {
            assert!(bloom.may_contain(format!("key-{i}").as_bytes()), "key-{i}");
        }
        assert_eq!(bloom.entries(), 1000);
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut bloom = Bloom::new(10_000);
        for i in 0..10_000u32 {
            bloom.insert(format!("present-{i}").as_bytes());
        }
        let mut false_positives = 0;
        for i in 0..10_000u32 {
            if bloom.may_contain(format!("absent-{i}").as_bytes()) {
                false_positives += 1;
            }
        }
        // 10 bits/key with 7 hashes: ~1%; allow 3%.
        assert!(false_positives < 300, "fp {false_positives}");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bloom = Bloom::new(10);
        assert!(!bloom.may_contain(b"anything"));
        assert!(bloom.byte_size() > 0);
    }
}
