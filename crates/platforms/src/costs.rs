//! The calibrated CPU cost model: simulated nanoseconds per unit of real
//! work.
//!
//! Values are order-of-magnitude realistic for a contemporary server core
//! (a few GB/s for serialization and compression, tens of nanoseconds per
//! allocation, microseconds per RPC) and are the calibration surface that
//! shapes the measured Figures 3–6 profiles. EXPERIMENTS.md records the
//! measured fractions these costs produce next to the paper's.

/// Protobuf wire encoding, ns per encoded byte (~500 MB/s).
pub const PROTO_ENCODE_NS_PER_BYTE: f64 = 3.0;
/// Protobuf wire decoding, ns per byte (~400 MB/s).
pub const PROTO_DECODE_NS_PER_BYTE: f64 = 3.5;
/// Per-message serialization setup (descriptor walk, buffer mgmt).
pub const PROTO_PER_MESSAGE_NS: f64 = 600.0;

/// Block compression, ns per input byte (~300 MB/s).
pub const COMPRESS_NS_PER_BYTE: f64 = 3.3;
/// Block decompression, ns per output byte (~1 GB/s).
pub const DECOMPRESS_NS_PER_BYTE: f64 = 1.0;

/// SHA3 hashing, ns per byte (~200 MB/s software Keccak).
pub const SHA3_NS_PER_BYTE: f64 = 5.0;

/// CRC32C checksumming, ns per byte (~3 GB/s table-driven).
pub const CRC_NS_PER_BYTE: f64 = 0.33;

/// Bulk copy, ns per byte. The raw copy runs at ~10 GB/s, but request
/// bytes cross the stack several times (user/kernel, framing, staging
/// buffers), so the charged rate reflects the *aggregate* movement.
pub const MEMCPY_NS_PER_BYTE: f64 = 0.8;

/// One allocator operation (malloc/free pair amortized).
pub const MALLOC_NS_PER_OP: f64 = 60.0;

/// Fixed RPC stack cost per call (dispatch, headers, flow control).
pub const RPC_FIXED_NS: f64 = 1_200.0;
/// RPC stack marginal cost per payload byte.
pub const RPC_NS_PER_BYTE: f64 = 0.4;

/// Kernel/syscall cost per storage or network operation.
pub const SYSCALL_NS: f64 = 1_200.0;
/// File-system client compute per storage operation.
pub const FS_CLIENT_NS_PER_OP: f64 = 2_500.0;
/// File-system client compute per byte moved through the IO path.
pub const FS_CLIENT_NS_PER_BYTE: f64 = 0.15;
/// Packet/server processing per network message.
pub const NET_PROCESS_NS_PER_MSG: f64 = 1_000.0;
/// Thread handoff / task wakeup cost.
pub const THREAD_HANDOFF_NS: f64 = 1_200.0;
/// Standard-library (containers, strings, iterators) overhead charged per
/// row-or-entry touched by core compute.
pub const STL_NS_PER_ENTRY: f64 = 28.0;
/// Miscellaneous uncategorized system overhead per query.
pub const MISC_SYSTEM_NS_PER_QUERY: f64 = 3_000.0;
/// Standard-library string/buffer handling per RPC message.
pub const STL_NS_PER_MSG: f64 = 1_100.0;
/// Non-data-movement memory operations (page table, madvise, zeroing) per
/// query.
pub const OTHER_MEM_NS_PER_QUERY: f64 = 900.0;
/// Allocator operations a typical request path performs.
pub const ALLOCS_PER_MESSAGE: u64 = 12;
/// Lightweight auth/integrity crypto per request (token checks).
pub const AUTH_CRYPTO_NS_PER_REQ: f64 = 800.0;

/// B-tree / memtable entry operation (lookup or insert step).
pub const BTREE_OP_NS: f64 = 600.0;
/// Sorted-run merge cost per entry during compaction.
pub const MERGE_NS_PER_ENTRY: f64 = 90.0;
/// Consensus protocol compute per replica message (log matching, quorum
/// bookkeeping, leader leases).
pub const CONSENSUS_NS_PER_MSG: f64 = 6_000.0;
/// SQL-ish predicate evaluation per row.
pub const QUERY_EVAL_NS_PER_ROW: f64 = 150.0;

/// Columnar filter evaluation per row.
pub const FILTER_NS_PER_ROW: f64 = 8.0;
/// Hash-aggregation cost per row.
pub const AGG_NS_PER_ROW: f64 = 30.0;
/// Post-aggregation column compute per group.
pub const COMPUTE_NS_PER_GROUP: f64 = 40.0;
/// Hash-join build/probe cost per row.
pub const JOIN_NS_PER_ROW: f64 = 80.0;
/// Sort cost per row per log2(n) step.
pub const SORT_NS_PER_ROW_LOG: f64 = 25.0;
/// Column projection/decode per value.
pub const PROJECT_NS_PER_VALUE: f64 = 3.5;
/// In-memory table materialization per row.
pub const MATERIALIZE_NS_PER_ROW: f64 = 22.0;
/// Structured field access per value.
pub const DESTRUCTURE_NS_PER_VALUE: f64 = 5.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // pins published relative magnitudes
    fn costs_are_order_of_magnitude_sane() {
        // Serialization slower than memcpy, faster than hashing.
        assert!(PROTO_ENCODE_NS_PER_BYTE > MEMCPY_NS_PER_BYTE);
        assert!(SHA3_NS_PER_BYTE > PROTO_ENCODE_NS_PER_BYTE);
        // Decompression faster than compression.
        assert!(DECOMPRESS_NS_PER_BYTE < COMPRESS_NS_PER_BYTE);
        // RPC fixed cost is microseconds, not milliseconds.
        assert!(RPC_FIXED_NS > 1_000.0 && RPC_FIXED_NS < 100_000.0);
    }
}
