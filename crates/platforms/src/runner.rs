//! Workload runners: drive each platform with its configured mix and
//! collect execution records for the profiling pipeline.

use hsdp_core::category::Platform;
use hsdp_rng::Rng;
use hsdp_rng::StdRng;
use hsdp_workload::keys::{KeyGen, ValueGen};
use hsdp_workload::mix::{AnalyticsMix, AnalyticsQuery, DbMix, DbOp};
use hsdp_workload::rows::FactGen;

use crate::bigquery::{BigQuery, BigQueryConfig};
use crate::bigtable::{BigTable, BigTableConfig};
use crate::exec::QueryExecution;
use crate::spanner::{Spanner, SpannerConfig};

/// Configuration for a full three-platform fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Queries to run against each database platform.
    pub db_queries: usize,
    /// Queries to run against the analytics engine.
    pub analytics_queries: usize,
    /// Fact rows to load into the analytics engine.
    pub fact_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            db_queries: 300,
            analytics_queries: 60,
            fact_rows: 8_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Runs the Spanner-class workload (a balanced transactional mix).
#[must_use]
pub fn run_spanner(queries: usize, seed: u64) -> Vec<QueryExecution> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Spanner::new(SpannerConfig::default(), seed);
    let keys = KeyGen::new("sp", 5_000, 0.9);
    let values = ValueGen::new(400);
    // Transactional traffic: mostly reads, a healthy scan share, and the
    // write stream that exercises consensus.
    let mix = DbMix {
        read: 0.70,
        write: 0.10,
        scan: 0.15,
        rmw: 0.05,
    };

    // Preload the hot set so reads hit warm data (production steady state).
    for rank in 0..2_000 {
        let key = keys.key_for_rank(rank);
        let value = values.sample(&mut rng);
        db.commit(key, value);
    }

    (0..queries)
        .map(|_| match mix.sample(&mut rng) {
            DbOp::Read => {
                let key = keys.sample(&mut rng);
                db.read(&key)
            }
            DbOp::Write => db.commit(keys.sample(&mut rng), values.sample(&mut rng)),
            DbOp::Scan => db.query(&keys.sample(&mut rng), 60, 100),
            DbOp::ReadModifyWrite => {
                db.read_modify_write(keys.sample(&mut rng), values.sample(&mut rng))
            }
        })
        .collect()
}

/// Runs the BigTable-class workload (a read-heavy key-value mix with enough
/// writes to exercise flushes and compactions).
#[must_use]
pub fn run_bigtable(queries: usize, seed: u64) -> Vec<QueryExecution> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB16_7AB1E);
    let mut bt = BigTable::new(
        BigTableConfig {
            memtable_flush_bytes: 32 * 1024,
            compaction_fanin: 4,
            ..BigTableConfig::default()
        },
        seed,
    );
    let keys = KeyGen::new("bt", 20_000, 0.99);
    let values = ValueGen::new(300);
    let mix = DbMix {
        read: 0.65,
        write: 0.25,
        scan: 0.05,
        rmw: 0.05,
    };

    // Preload the hot set (zipf 0.99 concentrates mass in the top ranks).
    for rank in 0..6_000 {
        bt.put(keys.key_for_rank(rank), values.sample(&mut rng));
    }

    (0..queries)
        .map(|_| match mix.sample(&mut rng) {
            DbOp::Read => {
                let key = keys.sample(&mut rng);
                bt.get(&key)
            }
            DbOp::Write => bt.put(keys.sample(&mut rng), values.sample(&mut rng)),
            DbOp::Scan => {
                let key = keys.sample(&mut rng);
                bt.scan(&key, 25)
            }
            DbOp::ReadModifyWrite => {
                let key = keys.sample(&mut rng);
                let _ = bt.get(&key);
                bt.put(key, values.sample(&mut rng))
            }
        })
        .collect()
}

/// Runs the BigQuery-class workload (the dashboard analytics mix).
#[must_use]
pub fn run_bigquery(queries: usize, fact_rows: usize, seed: u64) -> Vec<QueryExecution> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB1_6B06);
    let gen = FactGen::default();
    let rows = gen.rows(fact_rows, &mut rng);
    let mut bq = BigQuery::new(BigQueryConfig::default(), seed);
    bq.load(&rows, gen.dimension());
    let mix = AnalyticsMix::dashboard();

    (0..queries)
        .map(|_| match mix.sample(&mut rng) {
            AnalyticsQuery::ScanFilter => {
                let threshold = 10.0 + rng.random::<f64>() * 60.0;
                bq.scan_filter(threshold)
            }
            AnalyticsQuery::GroupAggregate => bq.group_aggregate(),
            AnalyticsQuery::Join => bq.join(),
            AnalyticsQuery::TopK => bq.top_k(50),
        })
        .collect()
}

/// Runs all three platforms and returns `(platform, executions)` triples.
#[must_use]
pub fn run_fleet(config: FleetConfig) -> Vec<(Platform, Vec<QueryExecution>)> {
    vec![
        (
            Platform::Spanner,
            run_spanner(config.db_queries, config.seed),
        ),
        (
            Platform::BigTable,
            run_bigtable(config.db_queries, config.seed),
        ),
        (
            Platform::BigQuery,
            run_bigquery(config.analytics_queries, config.fact_rows, config.seed),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanner_run_produces_all_op_kinds() {
        let execs = run_spanner(200, 11);
        assert_eq!(execs.len(), 200);
        let labels: std::collections::HashSet<&str> = execs.iter().map(|e| e.label).collect();
        assert!(labels.contains("read"));
        assert!(labels.contains("commit"));
        assert!(labels.contains("query"));
    }

    #[test]
    fn bigtable_run_compacts() {
        let execs = run_bigtable(2_000, 13);
        assert_eq!(execs.len(), 2_000);
        // Some query observed a large remote (compaction) wait.
        let max_remote = execs
            .iter()
            .map(|e| e.decomposition().remote.as_secs_f64())
            .fold(0.0f64, f64::max);
        assert!(max_remote > 0.0);
    }

    #[test]
    fn bigquery_run_covers_query_kinds() {
        let execs = run_bigquery(30, 2_000, 17);
        let labels: std::collections::HashSet<&str> = execs.iter().map(|e| e.label).collect();
        assert!(labels.len() >= 3, "{labels:?}");
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let a = run_fleet(FleetConfig {
            db_queries: 50,
            analytics_queries: 5,
            fact_rows: 500,
            seed: 3,
        });
        let b = run_fleet(FleetConfig {
            db_queries: 50,
            analytics_queries: 5,
            fact_rows: 500,
            seed: 3,
        });
        for ((pa, ea), (pb, eb)) in a.iter().zip(&b) {
            assert_eq!(pa, pb);
            assert_eq!(ea.len(), eb.len());
            for (x, y) in ea.iter().zip(eb) {
                assert_eq!(x.label, y.label);
                assert_eq!(x.decomposition().end_to_end, y.decomposition().end_to_end);
            }
        }
    }
}
