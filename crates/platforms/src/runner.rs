//! Workload runners: drive each platform with its configured mix and
//! collect execution records for the profiling pipeline.
//!
//! The fleet driver is parallel by default but **deterministic by
//! construction**: every platform's query stream is decomposed into a fixed
//! [`ShardPlan`] (a pure function of the workload configuration and base
//! seed), each shard runs with independently derived RNG seeds, and the
//! per-shard records are folded back in canonical shard order. The
//! `parallelism` knob only changes which thread executes which shard, so a
//! run at any thread count is byte-identical to the sequential run.

use hsdp_core::category::Platform;
use hsdp_rng::derive_seed;
use hsdp_rng::Rng;
use hsdp_rng::StdRng;
use hsdp_simcore::pool::{self, ShardPlan};
use hsdp_telemetry::MetricsRegistry;
use hsdp_workload::keys::{KeyGen, ValueGen};
use hsdp_workload::mix::{AnalyticsMix, AnalyticsQuery, DbMix, DbOp};
use hsdp_workload::rows::FactGen;

use crate::bigquery::{BigQuery, BigQueryConfig};
use crate::bigtable::{BigTable, BigTableConfig};
use crate::exec::QueryExecution;
use crate::spanner::{Spanner, SpannerConfig};

/// Shard-level seed streams, one per platform (feeds [`ShardPlan`]).
const STREAM_SPANNER: u64 = 0x5350_414E;
const STREAM_BIGTABLE: u64 = 0xB167_AB1E;
const STREAM_BIGQUERY: u64 = 0x0B16_0B06;

/// Phase sub-streams within one shard: the simulated engine, the preload
/// phase, and the traffic phase each get their own generator, so reshaping
/// one phase (e.g. sharding the preload) can never perturb another's draws.
const PHASE_ENGINE: u64 = 1;
const PHASE_PRELOAD: u64 = 2;
const PHASE_TRAFFIC: u64 = 3;

/// Derives the seed for one execution phase of one platform's shard.
const fn phase_seed(shard_seed: u64, platform: Platform, phase: u64) -> u64 {
    derive_seed(shard_seed, phase, platform as u64)
}

/// Configuration for a full three-platform fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Queries to run against each database platform.
    pub db_queries: usize,
    /// Queries to run against the analytics engine.
    pub analytics_queries: usize,
    /// Fact rows to load into the analytics engine.
    pub fact_rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads scheduling shards. Affects wall-clock only — results
    /// are identical at every value (`<= 1` runs inline on the caller).
    pub parallelism: usize,
    /// Shards per platform. Part of the workload definition: each shard is
    /// an independent platform replica serving a slice of the query stream,
    /// so (unlike `parallelism`) changing it changes the generated traffic.
    pub shards: usize,
    /// Optional schedule perturbation (see [`pool::Perturbation`]): permutes
    /// shard dispatch and completion-consumption order and injects derived
    /// start jitter. Like `parallelism`, it must never change fleet output —
    /// the determinism tests sweep this knob to prove it.
    pub perturb: Option<pool::Perturbation>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            db_queries: 300,
            analytics_queries: 60,
            fact_rows: 8_000,
            seed: 0xC0FFEE,
            parallelism: default_parallelism(),
            shards: 4,
            perturb: None,
        }
    }
}

/// The host's available hardware parallelism (1 when unknown).
#[must_use]
pub fn default_parallelism() -> usize {
    // audit: allow(determinism, parallelism is a scheduling knob only: fleet output is byte-identical at any worker count, which the perturbation tests prove)
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs one shard of the Spanner-class workload (a balanced transactional
/// mix). `seed` is the shard seed; the engine, preload, and traffic phases
/// each derive their own generator from it.
#[must_use]
pub fn run_spanner(queries: usize, seed: u64) -> Vec<QueryExecution> {
    run_spanner_shard(queries, seed, false).0
}

/// [`run_spanner`] with an optionally-enabled telemetry registry covering
/// the traffic phase (the preload is warmup, not workload). Telemetry
/// records nothing when `telemetry` is false, so the disabled path is the
/// uninstrumented baseline for overhead probes.
#[must_use]
pub fn run_spanner_shard(
    queries: usize,
    seed: u64,
    telemetry: bool,
) -> (Vec<QueryExecution>, MetricsRegistry) {
    let platform = Platform::Spanner;
    let mut preload_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_PRELOAD));
    let mut traffic_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_TRAFFIC));
    let mut db = Spanner::new(
        SpannerConfig::default(),
        phase_seed(seed, platform, PHASE_ENGINE),
    );
    let keys = KeyGen::new("sp", 5_000, 0.9);
    let values = ValueGen::new(400);
    // Transactional traffic: mostly reads, a healthy scan share, and the
    // write stream that exercises consensus.
    let mix = DbMix {
        read: 0.70,
        write: 0.10,
        scan: 0.15,
        rmw: 0.05,
    };

    // Preload the hot set so reads hit warm data (production steady state).
    for rank in 0..2_000 {
        let key = keys.key_for_rank(rank);
        let value = values.sample(&mut preload_rng);
        db.commit(key, value);
    }
    if telemetry {
        db.set_telemetry(MetricsRegistry::new());
    }

    let executions: Vec<QueryExecution> = (0..queries)
        .map(|_| match mix.sample(&mut traffic_rng) {
            DbOp::Read => {
                let key = keys.sample(&mut traffic_rng);
                db.read(&key)
            }
            DbOp::Write => db.commit(
                keys.sample(&mut traffic_rng),
                values.sample(&mut traffic_rng),
            ),
            DbOp::Scan => db.query(&keys.sample(&mut traffic_rng), 60, 100),
            DbOp::ReadModifyWrite => db.read_modify_write(
                keys.sample(&mut traffic_rng),
                values.sample(&mut traffic_rng),
            ),
        })
        .collect();
    assert_eq!(db.open_spans(), 0, "spanner left spans open at end-of-run");
    (executions, db.take_telemetry())
}

/// Runs one shard of the BigTable-class workload (a read-heavy key-value mix
/// with enough writes to exercise flushes and compactions).
#[must_use]
pub fn run_bigtable(queries: usize, seed: u64) -> Vec<QueryExecution> {
    run_bigtable_shard(queries, seed, false).0
}

/// [`run_bigtable`] with an optionally-enabled telemetry registry covering
/// the traffic phase.
#[must_use]
pub fn run_bigtable_shard(
    queries: usize,
    seed: u64,
    telemetry: bool,
) -> (Vec<QueryExecution>, MetricsRegistry) {
    let platform = Platform::BigTable;
    let mut preload_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_PRELOAD));
    let mut traffic_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_TRAFFIC));
    let mut bt = BigTable::new(
        BigTableConfig {
            memtable_flush_bytes: 32 * 1024,
            compaction_fanin: 4,
            ..BigTableConfig::default()
        },
        phase_seed(seed, platform, PHASE_ENGINE),
    );
    let keys = KeyGen::new("bt", 20_000, 0.99);
    let values = ValueGen::new(300);
    let mix = DbMix {
        read: 0.65,
        write: 0.25,
        scan: 0.05,
        rmw: 0.05,
    };

    // Preload the hot set (zipf 0.99 concentrates mass in the top ranks).
    for rank in 0..6_000 {
        bt.put(keys.key_for_rank(rank), values.sample(&mut preload_rng));
    }
    if telemetry {
        bt.set_telemetry(MetricsRegistry::new());
    }

    let executions: Vec<QueryExecution> = (0..queries)
        .map(|_| match mix.sample(&mut traffic_rng) {
            DbOp::Read => {
                let key = keys.sample(&mut traffic_rng);
                bt.get(&key)
            }
            DbOp::Write => bt.put(
                keys.sample(&mut traffic_rng),
                values.sample(&mut traffic_rng),
            ),
            DbOp::Scan => {
                let key = keys.sample(&mut traffic_rng);
                bt.scan(&key, 25)
            }
            DbOp::ReadModifyWrite => {
                let key = keys.sample(&mut traffic_rng);
                let _ = bt.get(&key);
                bt.put(key, values.sample(&mut traffic_rng))
            }
        })
        .collect();
    assert_eq!(bt.open_spans(), 0, "bigtable left spans open at end-of-run");
    (executions, bt.take_telemetry())
}

/// Runs one shard of the BigQuery-class workload (the dashboard analytics
/// mix).
#[must_use]
pub fn run_bigquery(queries: usize, fact_rows: usize, seed: u64) -> Vec<QueryExecution> {
    run_bigquery_shard(queries, fact_rows, seed, false).0
}

/// [`run_bigquery`] with an optionally-enabled telemetry registry covering
/// the traffic phase.
#[must_use]
pub fn run_bigquery_shard(
    queries: usize,
    fact_rows: usize,
    seed: u64,
    telemetry: bool,
) -> (Vec<QueryExecution>, MetricsRegistry) {
    let platform = Platform::BigQuery;
    let mut preload_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_PRELOAD));
    let mut traffic_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_TRAFFIC));
    let gen = FactGen::default();
    let rows = gen.rows(fact_rows, &mut preload_rng);
    let mut bq = BigQuery::new(
        BigQueryConfig::default(),
        phase_seed(seed, platform, PHASE_ENGINE),
    );
    bq.load(&rows, gen.dimension());
    if telemetry {
        bq.set_telemetry(MetricsRegistry::new());
    }
    let mix = AnalyticsMix::dashboard();

    let executions: Vec<QueryExecution> = (0..queries)
        .map(|_| match mix.sample(&mut traffic_rng) {
            AnalyticsQuery::ScanFilter => {
                let threshold = 10.0 + traffic_rng.random::<f64>() * 60.0;
                bq.scan_filter(threshold)
            }
            AnalyticsQuery::GroupAggregate => bq.group_aggregate(),
            AnalyticsQuery::Join => bq.join(),
            AnalyticsQuery::TopK => bq.top_k(50),
        })
        .collect();
    assert_eq!(bq.open_spans(), 0, "bigquery left spans open at end-of-run");
    (executions, bq.take_telemetry())
}

/// One schedulable unit of fleet work: a single platform shard.
#[derive(Debug, Clone, Copy)]
enum ShardJob {
    Spanner {
        queries: usize,
        seed: u64,
    },
    BigTable {
        queries: usize,
        seed: u64,
    },
    BigQuery {
        queries: usize,
        fact_rows: usize,
        seed: u64,
    },
}

impl ShardJob {
    fn run(self, telemetry: bool) -> (Vec<QueryExecution>, MetricsRegistry) {
        match self {
            ShardJob::Spanner { queries, seed } => run_spanner_shard(queries, seed, telemetry),
            ShardJob::BigTable { queries, seed } => run_bigtable_shard(queries, seed, telemetry),
            ShardJob::BigQuery {
                queries,
                fact_rows,
                seed,
            } => run_bigquery_shard(queries, fact_rows, seed, telemetry),
        }
    }
}

/// The stable lower-case key a platform goes by in telemetry artifacts
/// (metric labels, trace process names, report sections).
#[must_use]
pub fn platform_key(platform: Platform) -> &'static str {
    match platform {
        Platform::Spanner => "spanner",
        Platform::BigTable => "bigtable",
        Platform::BigQuery => "bigquery",
    }
}

/// One shard's fleet output: where it ran, what it executed, and the
/// telemetry it recorded (a disabled, empty registry for plain runs).
#[derive(Debug)]
pub struct ShardRun {
    /// The platform this shard simulated.
    pub platform: Platform,
    /// Shard index within the platform's plan (canonical merge order).
    pub shard: usize,
    /// The shard's query stream, in execution order.
    pub executions: Vec<QueryExecution>,
    /// The shard's private telemetry registry.
    pub telemetry: MetricsRegistry,
}

/// The shard plan one platform runs under `config` — a pure function of the
/// workload definition, shared by the fleet driver and the benches (so a
/// bench timing individual shards times exactly what the fleet schedules).
#[must_use]
pub fn platform_plan(config: &FleetConfig, platform: Platform) -> ShardPlan {
    let (items, stream) = match platform {
        Platform::Spanner => (config.db_queries, STREAM_SPANNER),
        Platform::BigTable => (config.db_queries, STREAM_BIGTABLE),
        Platform::BigQuery => (config.analytics_queries, STREAM_BIGQUERY),
    };
    ShardPlan::new(items, config.shards, config.seed, stream)
}

/// Builds one platform shard's job under `config`.
fn shard_job(config: &FleetConfig, platform: Platform, shard: &pool::Shard) -> ShardJob {
    match platform {
        Platform::Spanner => ShardJob::Spanner {
            queries: shard.items,
            seed: shard.seed,
        },
        Platform::BigTable => ShardJob::BigTable {
            queries: shard.items,
            seed: shard.seed,
        },
        Platform::BigQuery => ShardJob::BigQuery {
            queries: shard.items,
            fact_rows: config.fact_rows,
            seed: shard.seed,
        },
    }
}

/// Builds the fleet's full shard schedule in canonical merge order —
/// Spanner shards, then BigTable shards, then BigQuery shards — each tagged
/// with its `(platform, shard index)` identity.
fn fleet_jobs(config: FleetConfig) -> Vec<((Platform, usize), ShardJob)> {
    let mut jobs = Vec::with_capacity(3 * config.shards.max(1));
    for &platform in &Platform::ALL {
        let plan = platform_plan(&config, platform);
        jobs.extend(
            plan.shards()
                .iter()
                .map(|s| ((platform, s.index), shard_job(&config, platform, s))),
        );
    }
    jobs
}

/// Runs the whole fleet, one [`ShardRun`] per shard in canonical
/// `(platform, shard)` order, with per-shard telemetry registries enabled
/// when `telemetry` is true.
fn run_fleet_shards(config: FleetConfig, telemetry: bool) -> Vec<ShardRun> {
    let mut schedule = fleet_jobs(config);
    // Longest-processing-time-first dispatch: BigQuery shards dwarf the
    // database shards (each carries a full fact-table load plus the
    // analytics queries), so enqueueing them last — canonical order — left
    // the tail of every parallel run single-threaded on one straggler.
    // Dispatch heaviest platform first instead; the tags carry the
    // canonical identity, so results are re-sorted below and the output is
    // unchanged.
    schedule.sort_by_key(|((platform, shard), _)| (std::cmp::Reverse(*platform as usize), *shard));
    let jobs: Vec<_> = schedule
        .into_iter()
        .map(|(tag, job)| (tag, move || job.run(telemetry)))
        .collect();
    let mut runs: Vec<ShardRun> =
        pool::run_tagged_jobs_perturbed(config.parallelism, jobs, config.perturb)
            .into_iter()
            .map(|((platform, shard), (executions, registry))| ShardRun {
                platform,
                shard,
                executions,
                telemetry: registry,
            })
            .collect();
    runs.sort_by_key(|run| (run.platform as usize, run.shard));
    runs
}

/// Runs all three platforms and returns `(platform, executions)` triples.
///
/// Shards run concurrently on up to `config.parallelism` worker threads —
/// across platforms as well as within one — and are folded back in
/// canonical `(platform, shard)` order, so the output is a pure function of
/// the configuration minus `parallelism`.
#[must_use]
pub fn run_fleet(config: FleetConfig) -> Vec<(Platform, Vec<QueryExecution>)> {
    fold_fleet(run_fleet_shards(config, false))
}

/// The instrumented fleet run: like [`run_fleet`] but each shard records
/// into its own [`MetricsRegistry`], returned per shard so callers can
/// export per-shard trace lanes and merge metrics in any order (the merge
/// is order-independent by construction).
#[must_use]
pub fn run_fleet_telemetry(config: FleetConfig) -> Vec<ShardRun> {
    run_fleet_shards(config, true)
}

/// Folds per-shard runs into per-platform execution streams in canonical
/// `(platform, shard)` order (shard order within each platform is the plan
/// order, which the pool already preserves).
#[must_use]
pub fn fold_fleet(runs: Vec<ShardRun>) -> Vec<(Platform, Vec<QueryExecution>)> {
    let mut merged: Vec<(Platform, Vec<QueryExecution>)> = Platform::ALL
        .iter()
        .map(|&platform| (platform, Vec::new()))
        .collect();
    for run in runs {
        if let Some(slot) = merged.iter_mut().find(|(p, _)| *p == run.platform) {
            slot.1.extend(run.executions);
        }
    }
    merged
}

/// Merges every shard's registry into one fleet-wide registry. The fold is
/// commutative and associative, so any merge order serializes identically;
/// this one walks the canonical shard order.
#[must_use]
pub fn merge_fleet_metrics(runs: &[ShardRun]) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for run in runs {
        merged.merge(&run.telemetry);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanner_run_produces_all_op_kinds() {
        let execs = run_spanner(200, 11);
        assert_eq!(execs.len(), 200);
        let labels: std::collections::HashSet<&str> = execs.iter().map(|e| e.label).collect();
        assert!(labels.contains("read"));
        assert!(labels.contains("commit"));
        assert!(labels.contains("query"));
    }

    #[test]
    fn bigtable_run_compacts() {
        let execs = run_bigtable(2_000, 13);
        assert_eq!(execs.len(), 2_000);
        // Some query observed a large remote (compaction) wait.
        let max_remote = execs
            .iter()
            .map(|e| e.decomposition().remote.as_secs_f64())
            .fold(0.0f64, f64::max);
        assert!(max_remote > 0.0);
    }

    #[test]
    fn bigquery_run_covers_query_kinds() {
        let execs = run_bigquery(30, 2_000, 17);
        let labels: std::collections::HashSet<&str> = execs.iter().map(|e| e.label).collect();
        assert!(labels.len() >= 3, "{labels:?}");
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let config = FleetConfig {
            db_queries: 50,
            analytics_queries: 5,
            fact_rows: 500,
            seed: 3,
            ..FleetConfig::default()
        };
        let a = run_fleet(config);
        let b = run_fleet(config);
        for ((pa, ea), (pb, eb)) in a.iter().zip(&b) {
            assert_eq!(pa, pb);
            assert_eq!(ea.len(), eb.len());
            for (x, y) in ea.iter().zip(eb) {
                assert_eq!(x.label, y.label);
                assert_eq!(x.decomposition().end_to_end, y.decomposition().end_to_end);
            }
        }
    }

    #[test]
    fn fleet_covers_all_platforms_and_counts() {
        let config = FleetConfig {
            db_queries: 23,
            analytics_queries: 7,
            fact_rows: 400,
            seed: 9,
            shards: 4,
            parallelism: 2,
            perturb: None,
        };
        let fleet = run_fleet(config);
        assert_eq!(fleet.len(), 3);
        for (platform, execs) in &fleet {
            let want = match platform {
                Platform::BigQuery => 7,
                _ => 23,
            };
            assert_eq!(execs.len(), want, "{platform}");
        }
    }

    #[test]
    fn phase_seeds_are_independent() {
        // Reshaping one phase's stream can't alias another's.
        let mut seen = std::collections::HashSet::new();
        for platform in Platform::ALL {
            for phase in [PHASE_ENGINE, PHASE_PRELOAD, PHASE_TRAFFIC] {
                assert!(seen.insert(phase_seed(42, platform, phase)));
            }
        }
        assert_eq!(seen.len(), 9);
    }
}
