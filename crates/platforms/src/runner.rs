//! Workload runners: drive each platform with its configured mix and
//! collect execution records for the profiling pipeline.
//!
//! The fleet driver is parallel by default but **deterministic by
//! construction**: every platform's query stream is decomposed into a fixed
//! [`ShardPlan`] (a pure function of the workload configuration and base
//! seed), each shard runs with independently derived RNG seeds, and the
//! per-shard records are folded back in canonical shard order. The
//! `parallelism` knob only changes which thread executes which shard, so a
//! run at any thread count is byte-identical to the sequential run.

use hsdp_core::category::Platform;
use hsdp_core::request::RequestId;
use hsdp_rng::derive_seed;
use hsdp_rng::Rng;
use hsdp_rng::StdRng;
use hsdp_simcore::pool::{self, ShardPlan};
use hsdp_telemetry::MetricsRegistry;
use hsdp_workload::keys::{KeyGen, ValueGen};
use hsdp_workload::mix::{AnalyticsMix, AnalyticsQuery, DbMix, DbOp};
use hsdp_workload::rows::FactGen;

use crate::bigquery::{BigQuery, BigQueryConfig};
use crate::bigtable::{route_key, tablet_seed, BigTableConfig, ScanAssembler, ScanPartial, Tablet};
use crate::exec::QueryExecution;
use crate::spanner::{Spanner, SpannerConfig};

/// Shard-level seed streams, one per platform (feeds [`ShardPlan`]).
const STREAM_SPANNER: u64 = 0x5350_414E;
const STREAM_BIGTABLE: u64 = 0xB167_AB1E;
const STREAM_BIGQUERY: u64 = 0x0B16_0B06;

/// Phase sub-streams within one shard: the simulated engine, the preload
/// phase, and the traffic phase each get their own generator, so reshaping
/// one phase (e.g. sharding the preload) can never perturb another's draws.
const PHASE_ENGINE: u64 = 1;
const PHASE_PRELOAD: u64 = 2;
const PHASE_TRAFFIC: u64 = 3;

/// Derives the seed for one execution phase of one platform's shard.
const fn phase_seed(shard_seed: u64, platform: Platform, phase: u64) -> u64 {
    derive_seed(shard_seed, phase, platform as u64)
}

/// Tablets each BigTable shard is partitioned into by the fleet driver.
/// Each tablet is an independently schedulable pool job, so the fleet's
/// finest-grained unit of BigTable work is `1 / (shards * tablets)` of the
/// platform's query stream — small enough that no single job dominates
/// fleet wall-clock (the straggler gate in CI pins this).
pub const DEFAULT_BIGTABLE_TABLETS: usize = 4;

/// Rows preloaded into each BigTable shard before traffic (zipf hot set).
const BT_PRELOAD_ROWS: usize = 6_000;

/// Row limit for BigTable traffic scans.
const BT_SCAN_LIMIT: usize = 25;

/// Worker threads for one tablet's in-flight LSM batch (flush + due level
/// merges). Kept modest: tablet jobs already run in parallel, so this only
/// needs to overlap a flush with the occasional cascading merge.
const BT_COMPACTION_WORKERS: usize = 2;

/// Configuration for a full three-platform fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Queries to run against each database platform.
    pub db_queries: usize,
    /// Queries to run against the analytics engine.
    pub analytics_queries: usize,
    /// Fact rows to load into the analytics engine.
    pub fact_rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads scheduling shards. Affects wall-clock only — results
    /// are identical at every value (`<= 1` runs inline on the caller).
    pub parallelism: usize,
    /// Shards per platform. Part of the workload definition: each shard is
    /// an independent platform replica serving a slice of the query stream,
    /// so (unlike `parallelism`) changing it changes the generated traffic.
    pub shards: usize,
    /// Tablets per BigTable shard. Also part of the workload definition
    /// (tablet routing changes which LSM instance serves each key), and the
    /// fleet's finest BigTable scheduling grain: every tablet runs as its
    /// own pool job.
    pub tablets: usize,
    /// Optional schedule perturbation (see [`pool::Perturbation`]): permutes
    /// shard dispatch and completion-consumption order and injects derived
    /// start jitter. Like `parallelism`, it must never change fleet output —
    /// the determinism tests sweep this knob to prove it.
    pub perturb: Option<pool::Perturbation>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            db_queries: 300,
            analytics_queries: 60,
            fact_rows: 8_000,
            seed: 0xC0FFEE,
            parallelism: default_parallelism(),
            shards: 4,
            tablets: DEFAULT_BIGTABLE_TABLETS,
            perturb: None,
        }
    }
}

/// The host's available hardware parallelism (1 when unknown).
#[must_use]
pub fn default_parallelism() -> usize {
    // audit: allow(determinism, parallelism is a scheduling knob only: fleet output is byte-identical at any worker count, which the perturbation tests prove)
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs one shard of the Spanner-class workload (a balanced transactional
/// mix). `seed` is the shard seed; the engine, preload, and traffic phases
/// each derive their own generator from it.
#[must_use]
pub fn run_spanner(queries: usize, seed: u64) -> Vec<QueryExecution> {
    run_spanner_shard(queries, seed, 0, false).0
}

/// [`run_spanner`] with an optionally-enabled telemetry registry covering
/// the traffic phase (the preload is warmup, not workload). Telemetry
/// records nothing when `telemetry` is false, so the disabled path is the
/// uninstrumented baseline for overhead probes. `shard` is the shard's
/// canonical index, the shard field of every [`RequestId`] the traffic
/// phase stamps.
#[must_use]
pub fn run_spanner_shard(
    queries: usize,
    seed: u64,
    shard: usize,
    telemetry: bool,
) -> (Vec<QueryExecution>, MetricsRegistry) {
    let platform = Platform::Spanner;
    let mut preload_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_PRELOAD));
    let mut traffic_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_TRAFFIC));
    let mut db = Spanner::new(
        SpannerConfig::default(),
        phase_seed(seed, platform, PHASE_ENGINE),
    );
    let keys = KeyGen::new("sp", 5_000, 0.9);
    let values = ValueGen::new(400);
    // Transactional traffic: mostly reads, a healthy scan share, and the
    // write stream that exercises consensus.
    let mix = DbMix {
        read: 0.70,
        write: 0.10,
        scan: 0.15,
        rmw: 0.05,
    };

    // Preload the hot set so reads hit warm data (production steady state).
    for rank in 0..2_000 {
        let key = keys.key_for_rank(rank);
        let value = values.sample(&mut preload_rng);
        db.commit(key, value);
    }
    if telemetry {
        db.set_telemetry(MetricsRegistry::new());
    }

    let executions: Vec<QueryExecution> = (0..queries)
        .map(|index| {
            db.set_request(RequestId::tag(platform, shard, index));
            match mix.sample(&mut traffic_rng) {
                DbOp::Read => {
                    let key = keys.sample(&mut traffic_rng);
                    db.read(&key)
                }
                DbOp::Write => db.commit(
                    keys.sample(&mut traffic_rng),
                    values.sample(&mut traffic_rng),
                ),
                DbOp::Scan => db.query(&keys.sample(&mut traffic_rng), 60, 100),
                DbOp::ReadModifyWrite => db.read_modify_write(
                    keys.sample(&mut traffic_rng),
                    values.sample(&mut traffic_rng),
                ),
            }
        })
        .collect();
    assert_eq!(db.open_spans(), 0, "spanner left spans open at end-of-run");
    (executions, db.take_telemetry())
}

/// Runs one shard of the BigTable-class workload (a read-heavy key-value mix
/// with enough writes to exercise flushes and compactions).
#[must_use]
pub fn run_bigtable(queries: usize, seed: u64) -> Vec<QueryExecution> {
    run_bigtable_shard(queries, seed, 0, false).0
}

/// [`run_bigtable`] with an optionally-enabled telemetry registry covering
/// the traffic phase. Runs the shard's [`DEFAULT_BIGTABLE_TABLETS`] tablets
/// inline (sequentially) and assembles them — the same decomposition the
/// fleet driver schedules in parallel, so fleet and standalone runs agree
/// record-for-record.
#[must_use]
pub fn run_bigtable_shard(
    queries: usize,
    seed: u64,
    shard: usize,
    telemetry: bool,
) -> (Vec<QueryExecution>, MetricsRegistry) {
    let tablets = DEFAULT_BIGTABLE_TABLETS;
    let runs = (0..tablets)
        .map(|tablet| run_bigtable_tablet(queries, seed, shard, tablet, tablets, telemetry, None))
        .collect();
    assemble_bigtable_shard(runs)
}

/// One operation in a BigTable shard's deterministic op stream.
enum BtOp {
    Put { key: Vec<u8>, value: Vec<u8> },
    Get { key: Vec<u8> },
    Scan { start: Vec<u8> },
    Rmw { key: Vec<u8>, value: Vec<u8> },
}

/// Materializes a BigTable shard's full op stream — preload puts followed
/// by the traffic mix — as a pure function of `(queries, seed)`. Returns
/// the ops and the preload length. Every tablet job replays this stream and
/// executes its routed subsequence, which is what makes the per-tablet
/// decomposition equal the inline run: each tablet sees exactly the ops it
/// would have seen behind the router.
fn bigtable_ops(queries: usize, seed: u64) -> (Vec<BtOp>, usize) {
    let platform = Platform::BigTable;
    let mut preload_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_PRELOAD));
    let mut traffic_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_TRAFFIC));
    let keys = KeyGen::new("bt", 20_000, 0.99);
    let values = ValueGen::new(300);
    let mix = DbMix {
        read: 0.65,
        write: 0.25,
        scan: 0.05,
        rmw: 0.05,
    };
    let mut ops = Vec::with_capacity(BT_PRELOAD_ROWS + queries);
    // Preload the hot set (zipf 0.99 concentrates mass in the top ranks).
    for rank in 0..BT_PRELOAD_ROWS as u64 {
        ops.push(BtOp::Put {
            key: keys.key_for_rank(rank),
            value: values.sample(&mut preload_rng),
        });
    }
    for _ in 0..queries {
        ops.push(match mix.sample(&mut traffic_rng) {
            DbOp::Read => BtOp::Get {
                key: keys.sample(&mut traffic_rng),
            },
            DbOp::Write => BtOp::Put {
                key: keys.sample(&mut traffic_rng),
                value: values.sample(&mut traffic_rng),
            },
            DbOp::Scan => BtOp::Scan {
                start: keys.sample(&mut traffic_rng),
            },
            DbOp::ReadModifyWrite => {
                let key = keys.sample(&mut traffic_rng);
                BtOp::Rmw {
                    key,
                    value: values.sample(&mut traffic_rng),
                }
            }
        });
    }
    (ops, BT_PRELOAD_ROWS)
}

/// One tablet's slice of a BigTable shard run: the traffic executions it
/// owned and the scan partials it contributed, each tagged with the global
/// op index so [`assemble_bigtable_shard`] can reassemble the shard's
/// record stream in canonical order.
#[derive(Debug)]
pub struct BigTableTabletRun {
    /// Shard index the tablet belongs to (request-identity shard field).
    pub shard: usize,
    /// Tablet index within the shard's tablet set.
    pub tablet: usize,
    /// Traffic executions this tablet owned, by global op index.
    pub executions: Vec<(usize, QueryExecution)>,
    /// Scan partials this tablet contributed, by global op index.
    pub scans: Vec<(usize, ScanPartial)>,
    /// The tablet's telemetry registry (disabled for plain runs).
    pub telemetry: MetricsRegistry,
    /// Traffic queries in the shard's op stream.
    pub queries: usize,
    /// Preload ops preceding traffic in the op stream.
    pub preload: usize,
}

/// Runs one tablet of a BigTable shard: replays the shard's op stream,
/// executes the ops routed to `tablet` (scans contribute a partial from
/// every tablet), and returns the tablet's tagged output. `perturb`
/// perturbs the tablet's in-flight LSM job batches — never its results.
#[must_use]
pub fn run_bigtable_tablet(
    queries: usize,
    seed: u64,
    shard: usize,
    tablet: usize,
    tablets: usize,
    telemetry: bool,
    perturb: Option<pool::Perturbation>,
) -> BigTableTabletRun {
    let platform = Platform::BigTable;
    let (ops, preload) = bigtable_ops(queries, seed);
    let config = BigTableConfig {
        memtable_flush_bytes: 32 * 1024,
        compaction_fanin: 4,
        tablets,
        compaction_parallelism: BT_COMPACTION_WORKERS,
        perturb,
        ..BigTableConfig::default()
    };
    let engine_seed = phase_seed(seed, platform, PHASE_ENGINE);
    let mut tb = Tablet::new(&config, tablet, tablet_seed(engine_seed, tablet));
    let mut executions = Vec::new();
    let mut scans = Vec::new();
    for (idx, op) in ops.into_iter().enumerate() {
        if telemetry && idx == preload {
            tb.set_telemetry(MetricsRegistry::new());
        }
        // Request identity is the op's position in the traffic stream —
        // identical on every tablet that touches the op, so scan partials
        // and point ops agree regardless of schedule. Preload stays
        // untagged: it is warmup, not workload.
        if let Some(index) = idx.checked_sub(preload) {
            tb.set_request(RequestId::tag(platform, shard, index));
        }
        let exec = match op {
            BtOp::Put { key, value } => {
                if route_key(&key, tablets) != tablet {
                    continue;
                }
                tb.put(key, value)
            }
            BtOp::Get { key } => {
                if route_key(&key, tablets) != tablet {
                    continue;
                }
                tb.get(&key)
            }
            BtOp::Rmw { key, value } => {
                if route_key(&key, tablets) != tablet {
                    continue;
                }
                let _ = tb.get(&key);
                tb.put(key, value)
            }
            BtOp::Scan { start } => {
                scans.push((idx, tb.scan_partial(&start, BT_SCAN_LIMIT)));
                continue;
            }
        };
        if idx >= preload {
            executions.push((idx, exec));
        }
    }
    assert_eq!(tb.open_spans(), 0, "bigtable tablet left spans open");
    BigTableTabletRun {
        shard,
        tablet,
        executions,
        scans,
        telemetry: tb.take_telemetry(),
        queries,
        preload,
    }
}

/// Folds a shard's tablet runs back into the shard's canonical record
/// stream: point executions land in their op-index slot, scan partials are
/// grouped per op (tablet order within a group) and assembled on a fresh
/// scan coordinator, and the telemetry registries merge in tablet order.
/// A pure fold — callers may produce the tablet runs in any schedule.
#[must_use]
pub fn assemble_bigtable_shard(
    mut tablet_runs: Vec<BigTableTabletRun>,
) -> (Vec<QueryExecution>, MetricsRegistry) {
    tablet_runs.sort_by_key(|run| run.tablet);
    let queries = tablet_runs.first().map_or(0, |run| run.queries);
    let preload = tablet_runs.first().map_or(0, |run| run.preload);
    let shard = tablet_runs.first().map_or(0, |run| run.shard);
    let telemetry_on = tablet_runs.iter().any(|run| run.telemetry.is_enabled());

    let mut slots: Vec<Option<QueryExecution>> = Vec::with_capacity(queries);
    slots.resize_with(queries, || None);
    let mut scan_parts: Vec<(usize, ScanPartial)> = Vec::new();
    let mut registries: Vec<MetricsRegistry> = Vec::new();
    for run in tablet_runs {
        for (idx, exec) in run.executions {
            if let Some(slot) = idx.checked_sub(preload).and_then(|i| slots.get_mut(i)) {
                *slot = Some(exec);
            }
        }
        scan_parts.extend(run.scans);
        registries.push(run.telemetry);
    }
    // Stable by op index: within one scan, partials keep tablet order.
    scan_parts.sort_by_key(|(idx, _)| *idx);

    let mut scans = ScanAssembler::new();
    if telemetry_on {
        scans.set_telemetry(MetricsRegistry::new());
    }
    let mut parts = scan_parts.into_iter().peekable();
    while let Some((idx, first)) = parts.next() {
        let mut group = vec![first];
        while parts.peek().is_some_and(|(next, _)| *next == idx) {
            if let Some((_, part)) = parts.next() {
                group.push(part);
            }
        }
        if let Some(index) = idx.checked_sub(preload) {
            scans.set_request(RequestId::tag(Platform::BigTable, shard, index));
        }
        let exec = scans.assemble(group);
        if let Some(slot) = idx.checked_sub(preload).and_then(|i| slots.get_mut(i)) {
            *slot = Some(exec);
        }
    }
    registries.push(scans.take_telemetry());

    let executions: Vec<QueryExecution> = slots.into_iter().flatten().collect();
    debug_assert_eq!(
        executions.len(),
        queries,
        "every traffic op yields exactly one execution"
    );
    let merged = if telemetry_on {
        let mut merged = MetricsRegistry::new();
        for part in &registries {
            merged.merge(part);
        }
        merged
    } else {
        MetricsRegistry::disabled()
    };
    (executions, merged)
}

/// Runs one shard of the BigQuery-class workload (the dashboard analytics
/// mix).
#[must_use]
pub fn run_bigquery(queries: usize, fact_rows: usize, seed: u64) -> Vec<QueryExecution> {
    run_bigquery_shard(queries, fact_rows, seed, 0, false).0
}

/// [`run_bigquery`] with an optionally-enabled telemetry registry covering
/// the traffic phase. `shard` feeds the [`RequestId`] of each traffic query.
#[must_use]
pub fn run_bigquery_shard(
    queries: usize,
    fact_rows: usize,
    seed: u64,
    shard: usize,
    telemetry: bool,
) -> (Vec<QueryExecution>, MetricsRegistry) {
    let platform = Platform::BigQuery;
    let mut preload_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_PRELOAD));
    let mut traffic_rng = StdRng::seed_from_u64(phase_seed(seed, platform, PHASE_TRAFFIC));
    let gen = FactGen::default();
    let rows = gen.rows(fact_rows, &mut preload_rng);
    let mut bq = BigQuery::new(
        BigQueryConfig::default(),
        phase_seed(seed, platform, PHASE_ENGINE),
    );
    bq.load(&rows, gen.dimension());
    if telemetry {
        bq.set_telemetry(MetricsRegistry::new());
    }
    let mix = AnalyticsMix::dashboard();

    let executions: Vec<QueryExecution> = (0..queries)
        .map(|index| {
            bq.set_request(RequestId::tag(platform, shard, index));
            match mix.sample(&mut traffic_rng) {
                AnalyticsQuery::ScanFilter => {
                    let threshold = 10.0 + traffic_rng.random::<f64>() * 60.0;
                    bq.scan_filter(threshold)
                }
                AnalyticsQuery::GroupAggregate => bq.group_aggregate(),
                AnalyticsQuery::Join => bq.join(),
                AnalyticsQuery::TopK => bq.top_k(50),
            }
        })
        .collect();
    assert_eq!(bq.open_spans(), 0, "bigquery left spans open at end-of-run");
    (executions, bq.take_telemetry())
}

/// One schedulable unit of fleet work: a platform shard, or — for BigTable,
/// whose monolithic shard used to straggle the whole fleet — a single
/// tablet of one.
#[derive(Debug, Clone, Copy)]
enum ShardJob {
    Spanner {
        queries: usize,
        seed: u64,
        shard: usize,
    },
    BigTableTablet {
        queries: usize,
        seed: u64,
        shard: usize,
        tablet: usize,
        tablets: usize,
        perturb: Option<pool::Perturbation>,
    },
    BigQuery {
        queries: usize,
        fact_rows: usize,
        seed: u64,
        shard: usize,
    },
}

/// What one fleet job produced: a whole shard's record stream, or one
/// tablet's slice of a BigTable shard (assembled after the pool drains).
enum JobOutput {
    Shard(Vec<QueryExecution>, MetricsRegistry),
    Tablet(BigTableTabletRun),
}

impl ShardJob {
    fn run(self, telemetry: bool) -> JobOutput {
        match self {
            ShardJob::Spanner {
                queries,
                seed,
                shard,
            } => {
                let (executions, registry) = run_spanner_shard(queries, seed, shard, telemetry);
                JobOutput::Shard(executions, registry)
            }
            ShardJob::BigTableTablet {
                queries,
                seed,
                shard,
                tablet,
                tablets,
                perturb,
            } => JobOutput::Tablet(run_bigtable_tablet(
                queries, seed, shard, tablet, tablets, telemetry, perturb,
            )),
            ShardJob::BigQuery {
                queries,
                fact_rows,
                seed,
                shard,
            } => {
                let (executions, registry) =
                    run_bigquery_shard(queries, fact_rows, seed, shard, telemetry);
                JobOutput::Shard(executions, registry)
            }
        }
    }
}

/// Estimated wall-clock cost of one fleet job in nanoseconds, for
/// longest-processing-time-first dispatch. The constants are calibrated
/// against the measured `fleet/shard_wall_clock/*` entries in
/// `BENCH_fleet.json` (fixed preload/load cost plus a per-query or per-row
/// slope), so dispatch order tracks what the jobs actually cost rather
/// than a hardcoded platform ranking. At the default fleet shape the fits
/// land on the measurements: a Spanner shard (75 queries) ≈ 14.4 ms, a
/// BigTable tablet job (75 shard queries replayed, ~1/4 executed) ≈ 15 ms,
/// a BigQuery shard (15 queries over 8k fact rows) ≈ 8.1 ms.
fn job_weight(job: &ShardJob) -> u64 {
    match *job {
        ShardJob::Spanner { queries, .. } => 7_000_000 + 100_000 * queries as u64,
        ShardJob::BigTableTablet { queries, .. } => 10_000_000 + 65_000 * queries as u64,
        ShardJob::BigQuery {
            queries, fact_rows, ..
        } => 700 * fact_rows as u64 + 170_000 * queries as u64,
    }
}

/// The stable lower-case key a platform goes by in telemetry artifacts
/// (metric labels, trace process names, report sections).
#[must_use]
pub fn platform_key(platform: Platform) -> &'static str {
    match platform {
        Platform::Spanner => "spanner",
        Platform::BigTable => "bigtable",
        Platform::BigQuery => "bigquery",
    }
}

/// One shard's fleet output: where it ran, what it executed, and the
/// telemetry it recorded (a disabled, empty registry for plain runs).
#[derive(Debug)]
pub struct ShardRun {
    /// The platform this shard simulated.
    pub platform: Platform,
    /// Shard index within the platform's plan (canonical merge order).
    pub shard: usize,
    /// The shard's query stream, in execution order.
    pub executions: Vec<QueryExecution>,
    /// The shard's private telemetry registry.
    pub telemetry: MetricsRegistry,
}

/// The shard plan one platform runs under `config` — a pure function of the
/// workload definition, shared by the fleet driver and the benches (so a
/// bench timing individual shards times exactly what the fleet schedules).
#[must_use]
pub fn platform_plan(config: &FleetConfig, platform: Platform) -> ShardPlan {
    let (items, stream) = match platform {
        Platform::Spanner => (config.db_queries, STREAM_SPANNER),
        Platform::BigTable => (config.db_queries, STREAM_BIGTABLE),
        Platform::BigQuery => (config.analytics_queries, STREAM_BIGQUERY),
    };
    ShardPlan::new(items, config.shards, config.seed, stream)
}

/// Builds the fleet's full job schedule in canonical merge order — Spanner
/// shards, then BigTable shards (one job per tablet), then BigQuery shards
/// — each tagged with its `(platform, shard, part)` identity (`part` is the
/// tablet index; whole-shard jobs use part 0).
fn fleet_jobs(config: FleetConfig) -> Vec<((Platform, usize, usize), ShardJob)> {
    let tablets = config.tablets.max(1);
    let mut jobs = Vec::with_capacity((2 + tablets) * config.shards.max(1));
    for &platform in &Platform::ALL {
        let plan = platform_plan(&config, platform);
        for shard in plan.shards() {
            match platform {
                Platform::Spanner => jobs.push((
                    (platform, shard.index, 0),
                    ShardJob::Spanner {
                        queries: shard.items,
                        seed: shard.seed,
                        shard: shard.index,
                    },
                )),
                Platform::BigTable => {
                    for tablet in 0..tablets {
                        jobs.push((
                            (platform, shard.index, tablet),
                            ShardJob::BigTableTablet {
                                queries: shard.items,
                                seed: shard.seed,
                                shard: shard.index,
                                tablet,
                                tablets,
                                perturb: config.perturb,
                            },
                        ));
                    }
                }
                Platform::BigQuery => jobs.push((
                    (platform, shard.index, 0),
                    ShardJob::BigQuery {
                        queries: shard.items,
                        fact_rows: config.fact_rows,
                        seed: shard.seed,
                        shard: shard.index,
                    },
                )),
            }
        }
    }
    jobs
}

/// Flushes a pending group of tablet runs (one BigTable shard) into the run
/// list, assembling them into the shard's canonical record stream.
fn flush_tablet_group(
    runs: &mut Vec<ShardRun>,
    pending: &mut Vec<BigTableTabletRun>,
    key: &mut Option<(Platform, usize)>,
) {
    if let Some((platform, shard)) = key.take() {
        let (executions, telemetry) = assemble_bigtable_shard(std::mem::take(pending));
        runs.push(ShardRun {
            platform,
            shard,
            executions,
            telemetry,
        });
    }
}

/// Runs the whole fleet, one [`ShardRun`] per shard in canonical
/// `(platform, shard)` order, with per-shard telemetry registries enabled
/// when `telemetry` is true.
fn run_fleet_shards(config: FleetConfig, telemetry: bool) -> Vec<ShardRun> {
    let mut schedule = fleet_jobs(config);
    // Longest-processing-time-first dispatch, weighted by each job's
    // estimated cost (calibrated against the measured per-shard wall-clock
    // entries in BENCH_fleet.json — see `job_weight`). Enqueueing in
    // canonical order left the tail of every parallel run single-threaded
    // on whichever job happened to be heaviest; dispatching heaviest-first
    // keeps the tail short. The sort is stable, the tags carry canonical
    // identity, and results are re-sorted below, so fleet output is
    // unchanged by dispatch order.
    schedule.sort_by_key(|(_, job)| std::cmp::Reverse(job_weight(job)));
    let jobs: Vec<_> = schedule
        .into_iter()
        .map(|(tag, job)| (tag, move || job.run(telemetry)))
        .collect();
    let mut outputs = pool::run_tagged_jobs_perturbed(config.parallelism, jobs, config.perturb);
    outputs.sort_by_key(|((platform, shard, part), _)| (*platform as usize, *shard, *part));

    let mut runs: Vec<ShardRun> = Vec::new();
    let mut pending: Vec<BigTableTabletRun> = Vec::new();
    let mut pending_key: Option<(Platform, usize)> = None;
    for ((platform, shard, _part), output) in outputs {
        if pending_key.is_some() && pending_key != Some((platform, shard)) {
            flush_tablet_group(&mut runs, &mut pending, &mut pending_key);
        }
        match output {
            JobOutput::Shard(executions, registry) => runs.push(ShardRun {
                platform,
                shard,
                executions,
                telemetry: registry,
            }),
            JobOutput::Tablet(run) => {
                pending_key = Some((platform, shard));
                pending.push(run);
            }
        }
    }
    flush_tablet_group(&mut runs, &mut pending, &mut pending_key);
    runs.sort_by_key(|run| (run.platform as usize, run.shard));
    runs
}

/// Runs all three platforms and returns `(platform, executions)` triples.
///
/// Shards run concurrently on up to `config.parallelism` worker threads —
/// across platforms as well as within one — and are folded back in
/// canonical `(platform, shard)` order, so the output is a pure function of
/// the configuration minus `parallelism`.
#[must_use]
pub fn run_fleet(config: FleetConfig) -> Vec<(Platform, Vec<QueryExecution>)> {
    fold_fleet(run_fleet_shards(config, false))
}

/// The instrumented fleet run: like [`run_fleet`] but each shard records
/// into its own [`MetricsRegistry`], returned per shard so callers can
/// export per-shard trace lanes and merge metrics in any order (the merge
/// is order-independent by construction).
#[must_use]
pub fn run_fleet_telemetry(config: FleetConfig) -> Vec<ShardRun> {
    run_fleet_shards(config, true)
}

/// Folds per-shard runs into per-platform execution streams in canonical
/// `(platform, shard)` order (shard order within each platform is the plan
/// order, which the pool already preserves).
#[must_use]
pub fn fold_fleet(runs: Vec<ShardRun>) -> Vec<(Platform, Vec<QueryExecution>)> {
    let mut merged: Vec<(Platform, Vec<QueryExecution>)> = Platform::ALL
        .iter()
        .map(|&platform| (platform, Vec::new()))
        .collect();
    for run in runs {
        if let Some(slot) = merged.iter_mut().find(|(p, _)| *p == run.platform) {
            slot.1.extend(run.executions);
        }
    }
    merged
}

/// Merges every shard's registry into one fleet-wide registry. The fold is
/// commutative and associative, so any merge order serializes identically;
/// this one walks the canonical shard order.
#[must_use]
pub fn merge_fleet_metrics(runs: &[ShardRun]) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for run in runs {
        merged.merge(&run.telemetry);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanner_run_produces_all_op_kinds() {
        let execs = run_spanner(200, 11);
        assert_eq!(execs.len(), 200);
        let labels: std::collections::HashSet<&str> = execs.iter().map(|e| e.label).collect();
        assert!(labels.contains("read"));
        assert!(labels.contains("commit"));
        assert!(labels.contains("query"));
    }

    #[test]
    fn bigtable_run_compacts() {
        let execs = run_bigtable(2_000, 13);
        assert_eq!(execs.len(), 2_000);
        // Some query observed a large remote (compaction) wait.
        let max_remote = execs
            .iter()
            .map(|e| e.decomposition().remote.as_secs_f64())
            .fold(0.0f64, f64::max);
        assert!(max_remote > 0.0);
    }

    #[test]
    fn bigquery_run_covers_query_kinds() {
        let execs = run_bigquery(30, 2_000, 17);
        let labels: std::collections::HashSet<&str> = execs.iter().map(|e| e.label).collect();
        assert!(labels.len() >= 3, "{labels:?}");
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let config = FleetConfig {
            db_queries: 50,
            analytics_queries: 5,
            fact_rows: 500,
            seed: 3,
            ..FleetConfig::default()
        };
        let a = run_fleet(config);
        let b = run_fleet(config);
        for ((pa, ea), (pb, eb)) in a.iter().zip(&b) {
            assert_eq!(pa, pb);
            assert_eq!(ea.len(), eb.len());
            for (x, y) in ea.iter().zip(eb) {
                assert_eq!(x.label, y.label);
                assert_eq!(x.decomposition().end_to_end, y.decomposition().end_to_end);
            }
        }
    }

    #[test]
    fn fleet_covers_all_platforms_and_counts() {
        let config = FleetConfig {
            db_queries: 23,
            analytics_queries: 7,
            fact_rows: 400,
            seed: 9,
            shards: 4,
            tablets: 3,
            parallelism: 2,
            perturb: None,
        };
        let fleet = run_fleet(config);
        assert_eq!(fleet.len(), 3);
        for (platform, execs) in &fleet {
            let want = match platform {
                Platform::BigQuery => 7,
                _ => 23,
            };
            assert_eq!(execs.len(), want, "{platform}");
        }
    }

    #[test]
    fn tablet_jobs_assemble_to_inline_shard_run() {
        // The per-tablet decomposition the fleet schedules must equal the
        // inline shard run record-for-record — even with tablets produced
        // out of order and with the in-tablet LSM batches perturbed.
        let (queries, seed) = (150, 77);
        let (inline_run, _) = run_bigtable_shard(queries, seed, 3, false);
        let tablets = DEFAULT_BIGTABLE_TABLETS;
        let runs: Vec<BigTableTabletRun> = (0..tablets)
            .rev()
            .map(|tablet| {
                run_bigtable_tablet(
                    queries,
                    seed,
                    3,
                    tablet,
                    tablets,
                    false,
                    Some(pool::Perturbation::new(9)),
                )
            })
            .collect();
        let (assembled, _) = assemble_bigtable_shard(runs);
        assert_eq!(inline_run.len(), assembled.len());
        for (a, b) in inline_run.iter().zip(&assembled) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.spans, b.spans);
            assert_eq!(a.cpu_work, b.cpu_work);
        }
    }

    #[test]
    fn lpt_weights_rank_measured_cost_not_platform_order() {
        // Satellite fix: dispatch order must follow the measured job cost
        // model. A BigTable tablet job with the fleet's default per-shard
        // query load outweighs a BigQuery shard with a small fact table —
        // the old hardcoded platform ranking said the opposite.
        let config = FleetConfig::default();
        let bt_queries = config.db_queries / config.shards;
        let tablet = ShardJob::BigTableTablet {
            queries: bt_queries,
            seed: 1,
            shard: 0,
            tablet: 0,
            tablets: config.tablets,
            perturb: None,
        };
        let bigquery = ShardJob::BigQuery {
            queries: config.analytics_queries / config.shards,
            fact_rows: 2_000,
            seed: 1,
            shard: 0,
        };
        assert!(job_weight(&tablet) > job_weight(&bigquery));
        // And weights grow with load: more queries, heavier job.
        let heavier = ShardJob::BigTableTablet {
            queries: bt_queries * 4,
            seed: 1,
            shard: 0,
            tablet: 0,
            tablets: config.tablets,
            perturb: None,
        };
        assert!(job_weight(&heavier) > job_weight(&tablet));
    }

    #[test]
    fn phase_seeds_are_independent() {
        // Reshaping one phase's stream can't alias another's.
        let mut seen = std::collections::HashSet::new();
        for platform in Platform::ALL {
            for phase in [PHASE_ENGINE, PHASE_PRELOAD, PHASE_TRAFFIC] {
                assert!(seen.insert(phase_seed(42, platform, phase)));
            }
        }
        assert_eq!(seen.len(), 9);
    }
}
