//! Per-query execution records: the bridge from the platform simulators to
//! the profiling pipeline and the analytical model.

use hsdp_core::category::Platform;
use hsdp_core::profile::QueryRecord;
use hsdp_core::request::RequestId;
use hsdp_core::units::Seconds;
use hsdp_rpc::decompose::{decompose, E2eDecomposition};
use hsdp_rpc::span::Span;

use crate::meter::{items_breakdown, CpuWorkItem};

/// Everything recorded about one executed query: its Dapper-style span
/// tree and its labeled CPU work.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// The platform that ran the query.
    pub platform: Platform,
    /// Operation label (e.g. `"get"`, `"commit"`, `"group-aggregate"`).
    pub label: &'static str,
    /// The spans of this query's trace.
    pub spans: Vec<Span>,
    /// Labeled CPU work charged during execution.
    pub cpu_work: Vec<CpuWorkItem>,
    /// The traffic request this execution answered
    /// ([`RequestId::UNTAGGED`] for non-traffic work such as preloads).
    pub request: RequestId,
}

impl QueryExecution {
    /// Stamps `request` onto the execution and everything it carries:
    /// every span and every CPU work item. Platforms call this once at
    /// query finish so identity is total — no partially-tagged records.
    pub fn stamp_request(&mut self, request: RequestId) {
        self.request = request;
        for span in &mut self.spans {
            span.request = request;
        }
        for item in &mut self.cpu_work {
            item.request = request;
        }
    }

    /// The end-to-end CPU/IO/remote decomposition (the paper's Section 4
    /// rule applied to this trace).
    #[must_use]
    pub fn decomposition(&self) -> E2eDecomposition {
        decompose(&self.spans)
    }

    /// Converts to a model-ready [`QueryRecord`] with the given weight.
    ///
    /// The breakdown is rescaled to the *wall-clock* CPU time of the trace:
    /// worker-parallel platforms charge fleet cycles across many cores, but
    /// the end-to-end model consumes critical-path CPU time.
    #[must_use]
    pub fn to_query_record(&self, weight: f64) -> QueryRecord {
        let d = self.decomposition();
        let cpu = Seconds::new(d.cpu.as_secs_f64());
        QueryRecord {
            cpu,
            io: Seconds::new(d.io.as_secs_f64()),
            remote: Seconds::new(d.remote.as_secs_f64()),
            overlap: hsdp_core::accel::OverlapFactor::SYNCHRONOUS,
            breakdown: items_breakdown(&self.cpu_work).rescaled(cpu),
            weight,
        }
    }
}
