//! Per-query execution records: the bridge from the platform simulators to
//! the profiling pipeline and the analytical model.

use hsdp_core::category::Platform;
use hsdp_core::profile::QueryRecord;
use hsdp_core::units::Seconds;
use hsdp_rpc::decompose::{decompose, E2eDecomposition};
use hsdp_rpc::span::Span;

use crate::meter::{items_breakdown, CpuWorkItem};

/// Everything recorded about one executed query: its Dapper-style span
/// tree and its labeled CPU work.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// The platform that ran the query.
    pub platform: Platform,
    /// Operation label (e.g. `"get"`, `"commit"`, `"group-aggregate"`).
    pub label: &'static str,
    /// The spans of this query's trace.
    pub spans: Vec<Span>,
    /// Labeled CPU work charged during execution.
    pub cpu_work: Vec<CpuWorkItem>,
}

impl QueryExecution {
    /// The end-to-end CPU/IO/remote decomposition (the paper's Section 4
    /// rule applied to this trace).
    #[must_use]
    pub fn decomposition(&self) -> E2eDecomposition {
        decompose(&self.spans)
    }

    /// Converts to a model-ready [`QueryRecord`] with the given weight.
    ///
    /// The breakdown is rescaled to the *wall-clock* CPU time of the trace:
    /// worker-parallel platforms charge fleet cycles across many cores, but
    /// the end-to-end model consumes critical-path CPU time.
    #[must_use]
    pub fn to_query_record(&self, weight: f64) -> QueryRecord {
        let d = self.decomposition();
        let cpu = Seconds::new(d.cpu.as_secs_f64());
        QueryRecord {
            cpu,
            io: Seconds::new(d.io.as_secs_f64()),
            remote: Seconds::new(d.remote.as_secs_f64()),
            overlap: hsdp_core::accel::OverlapFactor::SYNCHRONOUS,
            breakdown: items_breakdown(&self.cpu_work).rescaled(cpu),
            weight,
        }
    }
}
