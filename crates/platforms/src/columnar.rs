//! Columnar tables: the storage format of the analytics engine.
//!
//! Columns encode to a self-describing byte format (varint/zigzag integers,
//! fixed-width floats, length-prefixed strings, bit-packed booleans) and are
//! compressed per column — the layout that makes BigQuery's compression tax
//! sit on the critical path (Section 5.4).

use hsdp_taxes::error::{CompressError, WireError};
use hsdp_taxes::varint::{decode_varint, encode_varint, zigzag_decode, zigzag_encode};
use hsdp_workload::rows::FactRow;

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Signed integers (zigzag varint encoded).
    Int64(Vec<i64>),
    /// Doubles (fixed 8-byte little endian).
    Float64(Vec<f64>),
    /// UTF-8 strings (length-prefixed).
    Str(Vec<String>),
    /// Booleans (bit-packed).
    Bool(Vec<bool>),
    /// Small categorical ids (varint).
    U32(Vec<u32>),
}

/// Errors from column decoding.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ColumnError {
    /// The byte stream was malformed.
    Malformed(&'static str),
    /// A wire-level primitive failed.
    Wire(WireError),
    /// Decompression failed.
    Compress(CompressError),
}

impl std::fmt::Display for ColumnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnError::Malformed(what) => write!(f, "malformed column: {what}"),
            ColumnError::Wire(e) => write!(f, "column wire error: {e}"),
            ColumnError::Compress(e) => write!(f, "column compression error: {e}"),
        }
    }
}

impl std::error::Error for ColumnError {}

impl From<WireError> for ColumnError {
    fn from(e: WireError) -> Self {
        ColumnError::Wire(e)
    }
}

impl From<CompressError> for ColumnError {
    fn from(e: CompressError) -> Self {
        ColumnError::Compress(e)
    }
}

impl Column {
    /// Number of values.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::U32(v) => v.len(),
        }
    }

    /// True if the column has no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn type_tag(&self) -> u8 {
        match self {
            Column::Int64(_) => 0,
            Column::Float64(_) => 1,
            Column::Str(_) => 2,
            Column::Bool(_) => 3,
            Column::U32(_) => 4,
        }
    }

    /// Encodes the column (uncompressed body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.type_tag());
        encode_varint(self.len() as u64, &mut out);
        match self {
            Column::Int64(values) => {
                for &v in values {
                    encode_varint(zigzag_encode(v), &mut out);
                }
            }
            Column::Float64(values) => {
                for &v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Column::Str(values) => {
                for v in values {
                    encode_varint(v.len() as u64, &mut out);
                    out.extend_from_slice(v.as_bytes());
                }
            }
            Column::Bool(values) => {
                let mut byte = 0u8;
                for (i, &v) in values.iter().enumerate() {
                    if v {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        out.push(byte);
                        byte = 0;
                    }
                }
                if values.len() % 8 != 0 {
                    out.push(byte);
                }
            }
            Column::U32(values) => {
                for &v in values {
                    encode_varint(u64::from(v), &mut out);
                }
            }
        }
        out
    }

    /// Decodes a column from [`Column::encode`] output.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnError`] on malformed input.
    pub fn decode(buf: &[u8]) -> Result<Column, ColumnError> {
        let (&tag, rest) = buf.split_first().ok_or(ColumnError::Malformed("empty"))?;
        let (count, n) = decode_varint(rest)?;
        let count = usize::try_from(count).map_err(|_| ColumnError::Malformed("count"))?;
        let mut pos = n;
        match tag {
            0 => {
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let (raw, n) = decode_varint(&rest[pos..])?;
                    values.push(zigzag_decode(raw));
                    pos += n;
                }
                Ok(Column::Int64(values))
            }
            1 => {
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let bytes = rest
                        .get(pos..pos + 8)
                        .ok_or(ColumnError::Malformed("float body"))?;
                    // audit: allow(panic, get(pos..pos + 8) returned Some so the slice is exactly 8 bytes)
                    values.push(f64::from_le_bytes(bytes.try_into().expect("8 bytes")));
                    pos += 8;
                }
                Ok(Column::Float64(values))
            }
            2 => {
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let (len, n) = decode_varint(&rest[pos..])?;
                    pos += n;
                    let len =
                        usize::try_from(len).map_err(|_| ColumnError::Malformed("str len"))?;
                    let bytes = rest
                        .get(pos..pos + len)
                        .ok_or(ColumnError::Malformed("str body"))?;
                    values.push(
                        std::str::from_utf8(bytes)
                            .map_err(|_| ColumnError::Malformed("utf8"))?
                            .to_owned(),
                    );
                    pos += len;
                }
                Ok(Column::Str(values))
            }
            3 => {
                let mut values = Vec::with_capacity(count);
                for i in 0..count {
                    let byte = rest
                        .get(pos + i / 8)
                        .ok_or(ColumnError::Malformed("bool body"))?;
                    values.push(byte & (1 << (i % 8)) != 0);
                }
                Ok(Column::Bool(values))
            }
            4 => {
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let (raw, n) = decode_varint(&rest[pos..])?;
                    values.push(u32::try_from(raw).map_err(|_| ColumnError::Malformed("u32"))?);
                    pos += n;
                }
                Ok(Column::U32(values))
            }
            _ => Err(ColumnError::Malformed("type tag")),
        }
    }
}

/// The fact-table schema: column names in storage order.
pub const FACT_COLUMNS: [&str; 6] = ["user_id", "region", "latency_ms", "bytes", "url", "success"];

/// A columnar table (one partition of the fact table).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnTable {
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnTable {
    /// Builds a partition from fact rows.
    #[must_use]
    pub fn from_rows(rows: &[FactRow]) -> Self {
        ColumnTable {
            columns: vec![
                Column::Int64(rows.iter().map(|r| r.user_id).collect()),
                Column::U32(rows.iter().map(|r| r.region).collect()),
                Column::Float64(rows.iter().map(|r| r.latency_ms).collect()),
                Column::Int64(rows.iter().map(|r| r.bytes).collect()),
                Column::Str(rows.iter().map(|r| r.url.clone()).collect()),
                Column::Bool(rows.iter().map(|r| r.success).collect()),
            ],
            rows: rows.len(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// A column by index (see [`FACT_COLUMNS`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn column(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// Encodes + compresses every column; returns per-column
    /// `(compressed bytes, raw length)`.
    #[must_use]
    pub fn encode_compressed(&self) -> Vec<(Vec<u8>, usize)> {
        self.columns
            .iter()
            .map(|c| {
                let raw = c.encode();
                let raw_len = raw.len();
                (hsdp_taxes::compress::compress(&raw), raw_len)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_workload::rows::FactGen;

    fn sample_rows(n: usize) -> Vec<FactRow> {
        let mut rng = hsdp_rng::StdRng::seed_from_u64(21);
        FactGen::default().rows(n, &mut rng)
    }

    #[test]
    fn every_column_type_roundtrips() {
        let cols = vec![
            Column::Int64(vec![-5, 0, 7, i64::MAX, i64::MIN]),
            Column::Float64(vec![1.5, -2.25, f64::INFINITY]),
            Column::Str(vec!["a".into(), String::new(), "日本語".into()]),
            Column::Bool(vec![
                true, false, true, true, false, false, true, true, false,
            ]),
            Column::U32(vec![0, 1, u32::MAX]),
        ];
        for col in cols {
            let encoded = col.encode();
            let decoded = Column::decode(&encoded).unwrap();
            assert_eq!(decoded, col);
        }
    }

    #[test]
    fn empty_columns_roundtrip() {
        for col in [
            Column::Int64(vec![]),
            Column::Str(vec![]),
            Column::Bool(vec![]),
        ] {
            assert_eq!(Column::decode(&col.encode()).unwrap(), col);
            assert!(col.is_empty());
        }
    }

    #[test]
    fn table_from_rows_has_aligned_columns() {
        let rows = sample_rows(100);
        let table = ColumnTable::from_rows(&rows);
        assert_eq!(table.rows(), 100);
        for i in 0..FACT_COLUMNS.len() {
            assert_eq!(table.column(i).len(), 100, "column {i}");
        }
        // Spot-check a value.
        if let Column::Str(urls) = table.column(4) {
            assert_eq!(urls[0], rows[0].url);
        } else {
            panic!("column 4 is urls");
        }
    }

    #[test]
    fn compressed_columns_roundtrip_and_shrink() {
        let rows = sample_rows(2000);
        let table = ColumnTable::from_rows(&rows);
        let encoded = table.encode_compressed();
        assert_eq!(encoded.len(), 6);
        for (i, (compressed, raw_len)) in encoded.iter().enumerate() {
            let raw = hsdp_taxes::compress::decompress(compressed).unwrap();
            assert_eq!(raw.len(), *raw_len);
            let decoded = Column::decode(&raw).unwrap();
            assert_eq!(&decoded, table.column(i));
        }
        // The url column shares long prefixes and compresses well.
        let (url_compressed, url_raw) = &encoded[4];
        assert!(url_compressed.len() < *url_raw);
    }

    #[test]
    fn malformed_input_fails_cleanly() {
        assert!(Column::decode(&[]).is_err());
        assert!(Column::decode(&[9, 1]).is_err(), "bad tag");
        assert!(Column::decode(&[1, 2, 0]).is_err(), "truncated floats");
    }
}
