//! K-way sorted-run merging for LSM compaction.
//!
//! [`merge_sorted_runs`] is the hot path behind `bigtable`'s size-tiered
//! compaction: a loser-tree (tournament) merge over the sorted input runs.
//! Each output entry costs one leaf-to-root replay — `ceil(log2 K)`
//! comparisons — with no per-entry tree rebalancing and no key
//! re-allocation: entries are moved out of the input runs, never cloned.
//! Duplicate keys resolve newest-run-wins (runs are supplied oldest-first),
//! matching LSM semantics.
//!
//! [`merge_runs_reference`] is the original `BTreeMap` merge, retained as
//! the equivalence oracle and benchmark baseline — the same discipline the
//! CRC32C/compression/SHA3 kernels follow.

use std::cmp::Ordering;

/// A key-value entry as stored in an SSTable run.
pub type Entry = (Vec<u8>, Vec<u8>);

/// One input run's cursor: an owning iterator plus its current head.
struct RunCursor {
    iter: std::vec::IntoIter<Entry>,
    head: Option<Entry>,
}

impl RunCursor {
    fn new(run: Vec<Entry>) -> Self {
        let mut iter = run.into_iter();
        let head = iter.next();
        RunCursor { iter, head }
    }

    /// An exhausted cursor, used to pad the leaf count to a power of two.
    fn empty() -> Self {
        RunCursor {
            iter: Vec::new().into_iter(),
            head: None,
        }
    }

    fn advance(&mut self) -> Option<Entry> {
        std::mem::replace(&mut self.head, self.iter.next())
    }
}

/// Run `a` beats run `b` when its head key is smaller, or — on equal keys —
/// when its run index is *larger*: the newer run pops first, so the newest
/// value wins and the older duplicate is skipped at output time. Exhausted
/// cursors lose to everything.
fn beats(runs: &[RunCursor], a: usize, b: usize) -> bool {
    match (&runs[a].head, &runs[b].head) {
        (Some((ka, _)), Some((kb, _))) => match ka.cmp(kb) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a > b,
        },
        (Some(_), None) => true,
        (None, Some(_)) => false,
        // Both exhausted: any deterministic answer works.
        (None, None) => a < b,
    }
}

/// A loser tree over run cursors (`runs.len()` is a power of two).
///
/// `tree[1..cap]` hold the *losers* of each internal match; `tree[0]` holds
/// the overall winner. Leaf `r` sits above internal node `(cap + r) / 2`,
/// so popping the winner replays exactly one leaf-to-root path.
struct LoserTree {
    tree: Vec<usize>,
    cap: usize,
}

impl LoserTree {
    fn new(runs: &[RunCursor]) -> Self {
        let cap = runs.len();
        debug_assert!(cap.is_power_of_two());
        let mut tree = vec![0usize; cap];
        // Play the full tournament bottom-up, storing losers on the way.
        let mut level: Vec<usize> = (0..cap).collect();
        let mut node = cap;
        while level.len() > 1 {
            node /= 2;
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in 0..level.len() / 2 {
                let (a, b) = (level[2 * pair], level[2 * pair + 1]);
                let (winner, loser) = if beats(runs, a, b) { (a, b) } else { (b, a) };
                tree[node + pair] = loser;
                next.push(winner);
            }
            level = next;
        }
        tree[0] = level[0];
        LoserTree { tree, cap }
    }

    /// The run index currently holding the smallest head.
    fn winner(&self) -> usize {
        self.tree[0]
    }

    /// After the winner's cursor advanced, replay its leaf-to-root path.
    fn replay(&mut self, runs: &[RunCursor]) {
        let mut winner = self.tree[0];
        let mut node = (self.cap + winner) / 2;
        while node >= 1 {
            if beats(runs, self.tree[node], winner) {
                std::mem::swap(&mut self.tree[node], &mut winner);
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }
}

/// Merges sorted runs (oldest first) into one sorted, deduplicated run.
///
/// Each run must be sorted by key with unique keys within the run — the
/// shape `BTreeMap::into_iter` and this function itself produce. On keys
/// present in several runs the entry from the newest (highest-index) run
/// wins, exactly like the `BTreeMap` insert-in-age-order merge it replaces.
#[must_use]
pub fn merge_sorted_runs(runs: Vec<Vec<Entry>>) -> Vec<Entry> {
    if runs.is_empty() {
        return Vec::new();
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    let cap = runs.len().next_power_of_two();
    let mut cursors: Vec<RunCursor> = runs.into_iter().map(RunCursor::new).collect();
    cursors.resize_with(cap, RunCursor::empty);

    let mut out: Vec<Entry> = Vec::with_capacity(total);
    let mut tree = LoserTree::new(&cursors);
    while let Some((key, value)) = cursors[tree.winner()].advance() {
        // The newest run's copy of a key pops first (tie-break), so an
        // equal key already at the tail means this one is stale: drop it.
        match out.last() {
            Some((last_key, _)) if *last_key == key => {}
            _ => out.push((key, value)),
        }
        tree.replay(&cursors);
    }
    out
}

/// The original `BTreeMap` k-way merge, retained as the equivalence oracle
/// and benchmark baseline for [`merge_sorted_runs`]: insert every run in
/// age order and let later (newer) inserts overwrite earlier ones.
#[must_use]
pub fn merge_runs_reference(runs: Vec<Vec<Entry>>) -> Vec<Entry> {
    let mut merged: std::collections::BTreeMap<Vec<u8>, Vec<u8>> =
        std::collections::BTreeMap::new();
    for run in runs {
        for (k, v) in run {
            merged.insert(k, v);
        }
    }
    merged.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(k: &str, v: &str) -> Entry {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn empty_and_single_run() {
        assert!(merge_sorted_runs(Vec::new()).is_empty());
        assert!(merge_sorted_runs(vec![Vec::new()]).is_empty());
        let run = vec![kv("a", "1"), kv("b", "2")];
        assert_eq!(merge_sorted_runs(vec![run.clone()]), run);
    }

    #[test]
    fn newest_run_wins_on_duplicates() {
        let old = vec![kv("a", "old"), kv("b", "old"), kv("c", "old")];
        let new = vec![kv("b", "new"), kv("d", "new")];
        let merged = merge_sorted_runs(vec![old, new]);
        assert_eq!(
            merged,
            vec![
                kv("a", "old"),
                kv("b", "new"),
                kv("c", "old"),
                kv("d", "new")
            ]
        );
    }

    #[test]
    fn three_way_duplicate_chain_takes_newest() {
        let r0 = vec![kv("k", "v0")];
        let r1 = vec![kv("k", "v1")];
        let r2 = vec![kv("k", "v2")];
        assert_eq!(merge_sorted_runs(vec![r0, r1, r2]), vec![kv("k", "v2")]);
    }

    #[test]
    fn non_power_of_two_run_counts() {
        for k in 1..=9usize {
            let runs: Vec<Vec<Entry>> = (0..k)
                .map(|r| {
                    (0..20usize)
                        .filter(|i| i % (r + 1) == 0)
                        .map(|i| kv(&format!("key-{i:03}"), &format!("run-{r}")))
                        .collect()
                })
                .collect();
            let expected = merge_runs_reference(runs.clone());
            assert_eq!(merge_sorted_runs(runs), expected, "k = {k}");
        }
    }

    #[test]
    fn runs_with_empty_members() {
        let runs = vec![
            Vec::new(),
            vec![kv("b", "1")],
            Vec::new(),
            vec![kv("a", "2"), kv("b", "3")],
            Vec::new(),
        ];
        let expected = merge_runs_reference(runs.clone());
        assert_eq!(merge_sorted_runs(runs), expected);
    }
}
