//! A BigQuery-class distributed analytics engine: columnar storage, staged
//! worker execution, and a hash-partitioned distributed shuffle.
//!
//! Matches the paper's characterization hooks: queries are scan-heavy with
//! large working sets (IO-heavy, Figure 2), the shuffle is remote work
//! (Section 4.1: "distributed shuffles for BigQuery"), compression and
//! protobuf dominate the datacenter taxes (Figure 5), and core compute
//! splits across filter/aggregate/compute/join/sort (Table 5, Figure 4).

use std::collections::HashMap;

use hsdp_core::category::{CoreComputeOp, DatacenterTax, Platform, SystemTax};
use hsdp_core::request::RequestId;
use hsdp_rpc::latency::LatencyModel;
use hsdp_rpc::span::SpanKind;
use hsdp_rpc::tracer::Tracer;
use hsdp_simcore::time::{SimDuration, SimTime};
use hsdp_storage::cache::PolicyKind;
use hsdp_storage::tiered::TieredStore;
use hsdp_telemetry::MetricsRegistry;
use hsdp_workload::rows::{DimRow, FactRow};

use crate::columnar::{Column, ColumnTable};
use crate::costs;
use crate::exec::QueryExecution;
use crate::meter::WorkMeter;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BigQueryConfig {
    /// Number of stage-1 workers (and shuffle partitions).
    pub workers: usize,
    /// Tier capacities per worker's storage stack.
    pub tier_bytes: (u64, u64, u64),
}

impl Default for BigQueryConfig {
    fn default() -> Self {
        BigQueryConfig {
            workers: 8,
            // Small caches relative to table size: scans run cold, making
            // the platform IO-heavy as in Figure 2.
            tier_bytes: (4 * 1024, 12 * 1024, 1 << 40),
        }
    }
}

/// Per-worker stored partition: the columnar data plus its on-disk layout.
#[derive(Debug)]
struct StoredPartition {
    table: ColumnTable,
    /// Per-column (storage key, compressed bytes, raw bytes).
    column_files: Vec<(u64, u64, u64)>,
}

/// The analytics-engine simulator.
#[derive(Debug)]
pub struct BigQuery {
    config: BigQueryConfig,
    clock: SimTime,
    tracer: Tracer,
    stores: Vec<TieredStore>,
    partitions: Vec<StoredPartition>,
    dim: Vec<DimRow>,
    net: LatencyModel,
    shuffle_net: LatencyModel,
    seed: u64,
    telemetry: MetricsRegistry,
    current_request: RequestId,
}

impl BigQuery {
    /// A fresh engine.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn new(config: BigQueryConfig, seed: u64) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let (ram, ssd, hdd) = config.tier_bytes;
        BigQuery {
            config,
            clock: SimTime::ZERO,
            tracer: Tracer::new(),
            stores: (0..config.workers)
                .map(|_| TieredStore::new(ram, ssd, hdd, PolicyKind::TwoQ))
                .collect(),
            partitions: Vec::new(),
            dim: Vec::new(),
            net: LatencyModel::intra_cluster(),
            // Shuffle flows are flow-controlled, multi-hop streams: far
            // lower effective bandwidth than a raw intra-cluster link.
            shuffle_net: LatencyModel {
                base: hsdp_simcore::time::SimDuration::from_micros(200),
                bandwidth: 25e6,
                jitter_frac: 0.2,
            },
            seed,
            telemetry: MetricsRegistry::disabled(),
            current_request: RequestId::UNTAGGED,
        }
    }

    /// Sets the request identity stamped onto subsequent query executions
    /// (their spans, CPU work, and latency exemplars). The runner calls
    /// this before each traffic query; [`RequestId::UNTAGGED`] marks
    /// background work.
    pub fn set_request(&mut self, request: RequestId) {
        self.current_request = request;
    }

    /// Replaces the telemetry registry (pass [`MetricsRegistry::new`] to
    /// turn recording on; it is off by default).
    pub fn set_telemetry(&mut self, registry: MetricsRegistry) {
        self.telemetry = registry;
    }

    /// Takes the telemetry collected so far, leaving recording disabled.
    pub fn take_telemetry(&mut self) -> MetricsRegistry {
        std::mem::replace(&mut self.telemetry, MetricsRegistry::disabled())
    }

    /// Spans still open in the tracer — zero between queries; asserted at
    /// end-of-run by the fleet driver.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.tracer.open_count()
    }

    /// Loads the fact table (partitioned round-robin across workers) and
    /// the dimension table.
    pub fn load(&mut self, rows: &[FactRow], dim: Vec<DimRow>) {
        self.dim = dim;
        self.partitions.clear();
        let workers = self.config.workers;
        for w in 0..workers {
            let part_rows: Vec<FactRow> = rows
                .iter()
                .enumerate()
                .filter(|(i, _)| i % workers == w)
                .map(|(_, r)| r.clone())
                .collect();
            let table = ColumnTable::from_rows(&part_rows);
            let encoded = table.encode_compressed();
            let column_files = encoded
                .iter()
                .enumerate()
                .map(|(c, (compressed, raw))| {
                    let key = (w as u64) << 8 | c as u64;
                    let bytes = compressed.len() as u64;
                    self.stores[w].write(key, bytes);
                    (key, bytes, *raw as u64)
                })
                .collect();
            self.partitions.push(StoredPartition {
                table,
                column_files,
            });
        }
    }

    /// Total stored rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.partitions.iter().map(|p| p.table.rows()).sum()
    }

    /// The simulated clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Per-worker column scan: charges IO + decompress + decode for the
    /// given column indexes, returns the worker's IO time.
    fn scan_columns(
        &mut self,
        worker: usize,
        columns: &[usize],
        meter: &mut WorkMeter,
    ) -> SimDuration {
        let mut meter = meter.scope("column_scan");
        let mut io = SimDuration::ZERO;
        let rows = self.partitions[worker].table.rows() as u64;
        for &c in columns {
            let (key, compressed, raw) = self.partitions[worker].column_files[c];
            // Column files are read in 8 KiB chunks with chunk-granular
            // caching: small categorical columns stay warm, wide string
            // columns churn.
            const CHUNK: u64 = 8 * 1024;
            let chunks = compressed.div_ceil(CHUNK).max(1);
            let chunk_bytes = compressed.div_ceil(chunks);
            for chunk in 0..chunks {
                io += self.stores[worker]
                    .read(key << 16 | chunk, chunk_bytes)
                    .latency;
            }
            meter.charge_ops(
                SystemTax::FileSystems,
                "dfs_read",
                chunks,
                costs::FS_CLIENT_NS_PER_OP,
            );
            meter.charge_bytes(
                SystemTax::FileSystems,
                "dfs_read",
                compressed,
                costs::FS_CLIENT_NS_PER_BYTE,
            );
            meter.charge_ops(
                SystemTax::OperatingSystems,
                "sys_read",
                chunks,
                costs::SYSCALL_NS,
            );
            meter.charge_bytes(
                DatacenterTax::Compression,
                "column_decompress",
                raw,
                costs::DECOMPRESS_NS_PER_BYTE,
            );
            meter.charge_ops(
                CoreComputeOp::Destructure,
                "column_decode",
                rows,
                costs::DESTRUCTURE_NS_PER_VALUE,
            );
            meter.charge_ops(
                CoreComputeOp::Project,
                "column_project",
                rows,
                costs::PROJECT_NS_PER_VALUE,
            );
            meter.charge_ops(
                DatacenterTax::MemAllocation,
                "column_alloc",
                2,
                costs::MALLOC_NS_PER_OP,
            );
            meter.charge_bytes(
                DatacenterTax::DataMovement,
                "memcpy",
                raw,
                costs::MEMCPY_NS_PER_BYTE,
            );
        }
        meter.charge_ops(
            SystemTax::Stl,
            "vector_ops",
            rows * columns.len() as u64,
            12.0,
        );
        io
    }

    /// The shuffle: each worker sends `bytes_per_worker` to the next stage.
    /// Charges serialization taxes and returns the remote-work wait (the
    /// slowest worker's transfer).
    fn shuffle(&mut self, meter: &mut WorkMeter, bytes_per_worker: u64, salt: u64) -> SimDuration {
        let mut meter = meter.scope("shuffle");
        let mut slowest = SimDuration::ZERO;
        for w in 0..self.config.workers {
            meter.charge_bytes(
                DatacenterTax::Protobuf,
                "shuffle_serialize",
                bytes_per_worker,
                costs::PROTO_ENCODE_NS_PER_BYTE,
            );
            meter.charge_bytes(
                DatacenterTax::Compression,
                "shuffle_compress",
                bytes_per_worker,
                costs::COMPRESS_NS_PER_BYTE,
            );
            meter.charge_ops(DatacenterTax::Rpc, "shuffle_send", 1, costs::RPC_FIXED_NS);
            meter.charge_bytes(
                DatacenterTax::Rpc,
                "shuffle_send",
                bytes_per_worker,
                costs::RPC_NS_PER_BYTE,
            );
            meter.charge_ops(
                SystemTax::Networking,
                "tcp_process",
                2,
                costs::NET_PROCESS_NS_PER_MSG,
            );
            meter.charge_ops(
                SystemTax::OperatingSystems,
                "sys_sendmsg",
                2,
                costs::SYSCALL_NS,
            );
            meter.charge_ops(
                SystemTax::Multithreading,
                "task_handoff",
                1,
                costs::THREAD_HANDOFF_NS,
            );
            meter.charge_ops(
                SystemTax::Stl,
                "string_buffer_ops",
                1,
                costs::STL_NS_PER_MSG,
            );
            meter.charge_bytes(
                DatacenterTax::Cryptography,
                "shuffle_digest",
                bytes_per_worker / 2,
                costs::SHA3_NS_PER_BYTE,
            );
            meter.charge_ops(
                SystemTax::OtherMemoryOps,
                "page_ops",
                1,
                costs::OTHER_MEM_NS_PER_QUERY,
            );
            let t = self.shuffle_net.one_way(
                bytes_per_worker,
                self.seed ^ salt.wrapping_add(w as u64 * 131),
            );
            slowest = slowest.max(t);
        }
        // Stage-2 ingest: decode what was sent.
        meter.charge_bytes(
            DatacenterTax::Protobuf,
            "shuffle_deserialize",
            bytes_per_worker * self.config.workers as u64,
            costs::PROTO_DECODE_NS_PER_BYTE,
        );
        self.telemetry.counter_add(("bigquery", "shuffles", ""), 1);
        self.telemetry.counter_add(
            ("bigquery", "shuffle_bytes", ""),
            bytes_per_worker * self.config.workers as u64,
        );
        self.telemetry
            .record_duration(("bigquery", "shuffle_wait_ns", ""), slowest);
        slowest
    }

    /// Returns small result sets to the coordinator over the ordinary
    /// cluster fabric (unlike the heavyweight shuffle).
    fn collect_results(&mut self, meter: &mut WorkMeter, bytes: u64, salt: u64) -> SimDuration {
        let mut meter = meter.scope("result_collect");
        meter.charge_bytes(
            DatacenterTax::Protobuf,
            "result_serialize",
            bytes,
            costs::PROTO_ENCODE_NS_PER_BYTE,
        );
        meter.charge_ops(DatacenterTax::Rpc, "result_send", 1, costs::RPC_FIXED_NS);
        meter.charge_ops(
            SystemTax::Networking,
            "tcp_process",
            1,
            costs::NET_PROCESS_NS_PER_MSG,
        );
        meter.charge_ops(
            SystemTax::OperatingSystems,
            "sys_sendmsg",
            1,
            costs::SYSCALL_NS,
        );
        self.net.one_way(bytes, self.seed ^ salt)
    }

    fn start_query(
        &mut self,
        name: &'static str,
    ) -> (hsdp_rpc::span::TraceId, hsdp_rpc::tracer::OpenSpan) {
        let trace = self.tracer.new_trace();
        let root = self
            .tracer
            .start(trace, None, name, SpanKind::Container, self.clock);
        (trace, root)
    }

    fn finish_query(
        &mut self,
        trace: hsdp_rpc::span::TraceId,
        root: hsdp_rpc::tracer::OpenSpan,
        mut meter: WorkMeter,
        io_time: SimDuration,
        shuffle_time: SimDuration,
        label: &'static str,
    ) -> QueryExecution {
        let started = self.clock;
        // Fleet cycles spread across the worker pool: wall-clock CPU is
        // the per-worker stripe. Column decode pipelines with the fetch, so
        // the CPU span starts halfway through the IO span (the overlap the
        // Section 4.1 attribution rule then charges to IO).
        let cpu_wall =
            SimDuration::from_nanos(meter.total().as_nanos() / self.config.workers as u64);
        if !io_time.is_zero() {
            let io_span = self.tracer.start(
                trace,
                Some(root.id()),
                "column_io",
                SpanKind::Io,
                self.clock,
            );
            let io_end = self.clock + io_time;
            let cpu_start = self.clock + SimDuration::from_nanos(io_time.as_nanos() / 2);
            let cpu_span =
                self.tracer
                    .start(trace, Some(root.id()), "cpu", SpanKind::Cpu, cpu_start);
            self.tracer.finish(io_span, io_end);
            self.clock = (cpu_start + cpu_wall).max(io_end);
            self.tracer.finish(cpu_span, cpu_start + cpu_wall);
        } else {
            let cpu_span =
                self.tracer
                    .start(trace, Some(root.id()), "cpu", SpanKind::Cpu, self.clock);
            self.clock += cpu_wall;
            self.tracer.finish(cpu_span, self.clock);
        }
        if !shuffle_time.is_zero() {
            let remote = self.tracer.start(
                trace,
                Some(root.id()),
                "shuffle",
                SpanKind::RemoteWork,
                self.clock,
            );
            self.clock += shuffle_time;
            self.tracer.finish(remote, self.clock);
        }
        self.tracer.finish(root, self.clock);
        self.telemetry
            .counter_add(("bigquery", "queries", label), 1);
        self.telemetry.record_duration_tagged(
            ("bigquery", "query_latency_ns", label),
            self.clock.since(started),
            self.current_request,
        );
        crate::meter::record_cpu_items(&mut self.telemetry, meter.items());
        let spans: Vec<_> = self
            .tracer
            .take_spans()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        let mut exec = QueryExecution {
            platform: Platform::BigQuery,
            label,
            spans,
            cpu_work: meter.take(),
            request: RequestId::UNTAGGED,
        };
        exec.stamp_request(self.current_request);
        exec
    }

    /// `SELECT url, bytes WHERE latency_ms > threshold AND success`.
    pub fn scan_filter(&mut self, latency_threshold: f64) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let (trace, root) = self.start_query("bigquery.scan_filter");

        let (io_wall, collect) = {
            let mut op = meter.scope("bigquery.scan_filter");
            let mut io = SimDuration::ZERO;
            let mut matched = 0u64;
            let mut result_bytes = 0u64;
            for w in 0..self.config.workers {
                io += self.scan_columns(w, &[2, 4, 5], &mut op);
                let part = &self.partitions[w].table;
                let (Column::Float64(latency), Column::Str(urls), Column::Bool(success)) =
                    (part.column(2), part.column(4), part.column(5))
                else {
                    // audit: allow(panic, the fact-table column layout is fixed at construction)
                    unreachable!("fact schema is fixed")
                };
                let rows = part.rows() as u64;
                let mut filter = op.scope("filter");
                filter.charge_ops(
                    CoreComputeOp::Filter,
                    "predicate_eval",
                    rows * 2,
                    costs::FILTER_NS_PER_ROW,
                );
                for i in 0..part.rows() {
                    if latency[i] > latency_threshold && success[i] {
                        matched += 1;
                        result_bytes += urls[i].len() as u64 + 12;
                    }
                }
                filter.charge_ops(
                    CoreComputeOp::Materialize,
                    "result_rows",
                    matched,
                    costs::MATERIALIZE_NS_PER_ROW,
                );
            }
            // Workers run in parallel: wall IO is the average stripe, modeled
            // as total/workers.
            let io_wall = SimDuration::from_nanos(io.as_nanos() / self.config.workers as u64);
            let collect = self.collect_results(
                &mut op,
                result_bytes / self.config.workers as u64 + 64,
                trace.0,
            );
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            (io_wall, collect)
        };
        self.finish_query(trace, root, meter, io_wall, collect, "scan-filter")
    }

    /// `SELECT region, SUM(bytes), AVG(latency) GROUP BY region`.
    pub fn group_aggregate(&mut self) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let (trace, root) = self.start_query("bigquery.group_aggregate");

        let (io_wall, shuffle) = {
            let mut op = meter.scope("bigquery.group_aggregate");
            let mut io = SimDuration::ZERO;
            // Group by (user, region): the high-cardinality keys that make
            // analytics shuffles heavy. Only the narrow, cache-friendly
            // integer columns are scanned.
            let mut partials: HashMap<u64, (i64, u64)> = HashMap::new();
            for w in 0..self.config.workers {
                io += self.scan_columns(w, &[0, 1, 3], &mut op);
                let part = &self.partitions[w].table;
                let (Column::Int64(users), Column::U32(regions), Column::Int64(bytes)) =
                    (part.column(0), part.column(1), part.column(3))
                else {
                    // audit: allow(panic, the fact-table column layout is fixed at construction)
                    unreachable!("fact schema is fixed")
                };
                op.scope("aggregate").charge_ops(
                    CoreComputeOp::Aggregate,
                    "hash_aggregate",
                    part.rows() as u64,
                    costs::AGG_NS_PER_ROW,
                );
                for i in 0..part.rows() {
                    let key = (users[i].unsigned_abs() << 8) | (u64::from(regions[i]) % 256);
                    let entry = partials.entry(key).or_insert((0, 0));
                    entry.0 += bytes[i];
                    entry.1 += 1;
                }
            }
            let groups = partials.len() as u64;
            // Shuffle the partial aggregates (hash-partitioned by group).
            // With high-cardinality keys the partial tables spill in
            // streaming fashion, so the shuffled volume tracks the input
            // rows.
            let total_rows = self.row_count() as u64;
            let shuffle_bytes =
                (total_rows * 24).max(groups * 24) / self.config.workers as u64 + 64;
            let shuffle = self.shuffle(&mut op, shuffle_bytes, trace.0);
            // Final merge + post-aggregation compute (averages).
            {
                let mut agg = op.scope("aggregate");
                agg.charge_ops(
                    CoreComputeOp::Aggregate,
                    "merge_partials",
                    groups,
                    costs::AGG_NS_PER_ROW,
                );
                agg.charge_ops(
                    CoreComputeOp::Compute,
                    "column_divide",
                    groups,
                    costs::COMPUTE_NS_PER_GROUP,
                );
                agg.charge_ops(
                    CoreComputeOp::Materialize,
                    "result_table",
                    groups,
                    costs::MATERIALIZE_NS_PER_ROW,
                );
            }
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            let io_wall = SimDuration::from_nanos(io.as_nanos() / self.config.workers as u64);
            (io_wall, shuffle)
        };
        self.finish_query(trace, root, meter, io_wall, shuffle, "group-aggregate")
    }

    /// Fact-to-dimension hash join, aggregated per region name.
    pub fn join(&mut self) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let (trace, root) = self.start_query("bigquery.join");

        let (io_wall, broadcast) = {
            let mut op = meter.scope("bigquery.join");
            // Broadcast the small dimension table to every worker over the
            // ordinary cluster fabric.
            let dim_bytes: u64 = self.dim.iter().map(|d| d.name.len() as u64 + 8).sum();
            let broadcast = self.collect_results(&mut op, dim_bytes, trace.0 ^ 0xd1);
            // Build the hash table once per worker.
            op.scope("hash_join").charge_ops(
                CoreComputeOp::Join,
                "hash_build",
                self.dim.len() as u64 * self.config.workers as u64,
                costs::JOIN_NS_PER_ROW,
            );
            let dim_names: HashMap<u32, String> = self
                .dim
                .iter()
                .map(|d| (d.region, d.name.clone()))
                .collect();

            let mut io = SimDuration::ZERO;
            let mut joined: HashMap<String, i64> = HashMap::new();
            for w in 0..self.config.workers {
                io += self.scan_columns(w, &[1, 3], &mut op);
                let part = &self.partitions[w].table;
                let (Column::U32(regions), Column::Int64(bytes)) = (part.column(1), part.column(3))
                else {
                    // audit: allow(panic, the fact-table column layout is fixed at construction)
                    unreachable!("fact schema is fixed")
                };
                op.scope("hash_join").charge_ops(
                    CoreComputeOp::Join,
                    "hash_probe",
                    part.rows() as u64,
                    costs::JOIN_NS_PER_ROW,
                );
                for i in 0..part.rows() {
                    if let Some(name) = dim_names.get(&regions[i]) {
                        *joined.entry(name.clone()).or_insert(0) += bytes[i];
                    }
                }
            }
            let groups = joined.len() as u64;
            op.charge_ops(
                CoreComputeOp::Aggregate,
                "post_join_agg",
                groups,
                costs::AGG_NS_PER_ROW,
            );
            op.charge_ops(
                CoreComputeOp::Materialize,
                "result_table",
                groups,
                costs::MATERIALIZE_NS_PER_ROW,
            );
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            let io_wall = SimDuration::from_nanos(io.as_nanos() / self.config.workers as u64);
            (io_wall, broadcast)
        };
        self.finish_query(trace, root, meter, io_wall, broadcast, "join")
    }

    /// Global top-k by latency.
    pub fn top_k(&mut self, k: usize) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let (trace, root) = self.start_query("bigquery.top_k");

        let (io_wall, shuffle) = {
            let mut op = meter.scope("bigquery.top_k");
            let mut io = SimDuration::ZERO;
            let mut candidates: Vec<(i64, u64)> = Vec::new();
            for w in 0..self.config.workers {
                io += self.scan_columns(w, &[0, 3], &mut op);
                let part = &self.partitions[w].table;
                let (Column::Int64(users), Column::Int64(bytes)) = (part.column(0), part.column(3))
                else {
                    // audit: allow(panic, the fact-table column layout is fixed at construction)
                    unreachable!("fact schema is fixed")
                };
                let rows = part.rows();
                // Local sort: n log n.
                let log_n = (rows.max(2) as f64).log2();
                op.scope("sort").charge_ops(
                    CoreComputeOp::Sort,
                    "local_sort",
                    (rows as f64 * log_n) as u64,
                    costs::SORT_NS_PER_ROW_LOG,
                );
                let mut local: Vec<(i64, u64)> = (0..rows)
                    .map(|i| (bytes[i], users[i].unsigned_abs()))
                    .collect();
                local.sort_by_key(|e| std::cmp::Reverse(e.0));
                candidates.extend(local.into_iter().take(k));
            }
            let shuffle = self.collect_results(&mut op, (k * 16) as u64, trace.0);
            // Final merge of the worker top-k lists.
            let merge_n = candidates.len();
            candidates.sort_by_key(|e| std::cmp::Reverse(e.0));
            candidates.truncate(k);
            {
                let mut sort = op.scope("sort");
                sort.charge_ops(
                    CoreComputeOp::Sort,
                    "final_merge",
                    (merge_n.max(2) as f64 * (merge_n.max(2) as f64).log2()) as u64,
                    costs::SORT_NS_PER_ROW_LOG,
                );
                sort.charge_ops(
                    CoreComputeOp::Materialize,
                    "result_rows",
                    k as u64,
                    costs::MATERIALIZE_NS_PER_ROW,
                );
            }
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            let io_wall = SimDuration::from_nanos(io.as_nanos() / self.config.workers as u64);
            (io_wall, shuffle)
        };
        self.finish_query(trace, root, meter, io_wall, shuffle, "top-k")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_core::category::{BroadCategory, CpuCategory};
    use hsdp_workload::rows::FactGen;

    fn engine(rows: usize) -> BigQuery {
        let mut rng = hsdp_rng::StdRng::seed_from_u64(31);
        let gen = FactGen::default();
        let data = gen.rows(rows, &mut rng);
        let mut bq = BigQuery::new(BigQueryConfig::default(), 5);
        bq.load(&data, gen.dimension());
        bq
    }

    #[test]
    fn load_partitions_all_rows() {
        let bq = engine(1000);
        assert_eq!(bq.row_count(), 1000);
    }

    #[test]
    fn scan_filter_is_io_heavy() {
        let mut bq = engine(4000);
        let exec = bq.scan_filter(30.0);
        let d = exec.decomposition();
        assert!(!d.io.is_zero(), "cold column scans do IO");
        assert!(!d.remote.is_zero(), "results are shuffled");
        let b = crate::meter::items_breakdown(&exec.cpu_work);
        assert!(b.share(CpuCategory::from(CoreComputeOp::Filter)) > 0.0);
    }

    #[test]
    fn group_aggregate_charges_aggregate_and_compute() {
        let mut bq = engine(4000);
        let exec = bq.group_aggregate();
        let b = crate::meter::items_breakdown(&exec.cpu_work);
        assert!(b.share(CpuCategory::from(CoreComputeOp::Aggregate)) > 0.0);
        assert!(b.share(CpuCategory::from(CoreComputeOp::Compute)) > 0.0);
        assert!(b.share(CpuCategory::from(DatacenterTax::Compression)) > 0.0);
    }

    #[test]
    fn join_touches_dimension_and_fact() {
        let mut bq = engine(2000);
        let exec = bq.join();
        assert_eq!(exec.label, "join");
        let b = crate::meter::items_breakdown(&exec.cpu_work);
        assert!(b.share(CpuCategory::from(CoreComputeOp::Join)) > 0.0);
        let d = exec.decomposition();
        assert!(!d.remote.is_zero(), "dimension broadcast is remote work");
    }

    #[test]
    fn top_k_sorts() {
        let mut bq = engine(2000);
        let exec = bq.top_k(10);
        let b = crate::meter::items_breakdown(&exec.cpu_work);
        assert!(b.share(CpuCategory::from(CoreComputeOp::Sort)) > 0.0);
    }

    #[test]
    fn all_broad_categories_present_across_queries() {
        let mut bq = engine(4000);
        let mut all = hsdp_core::component::CpuBreakdown::new();
        for exec in [
            bq.scan_filter(25.0),
            bq.group_aggregate(),
            bq.join(),
            bq.top_k(20),
        ] {
            all.merge(&crate::meter::items_breakdown(&exec.cpu_work));
        }
        for broad in BroadCategory::ALL {
            assert!(
                all.broad_share(broad) > 0.05,
                "{broad}: {}",
                all.broad_share(broad)
            );
        }
    }

    #[test]
    fn repeated_scans_warm_the_cache() {
        let mut bq = engine(2000);
        let cold = bq.scan_filter(25.0).decomposition().io;
        let warm = bq.scan_filter(25.0).decomposition().io;
        assert!(
            warm <= cold,
            "second scan benefits from caches: {warm} vs {cold}"
        );
    }
}
