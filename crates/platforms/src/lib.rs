//! # hsdp-platforms
//!
//! Simulated hyperscale data processing platforms — the synthetic stand-ins
//! for the paper's three production systems (Figure 1), built on the
//! workspace substrates and executing *real* data-structure and codec work:
//!
//! - [`spanner`] — a leader-led consensus group: replicated write log with
//!   quorum waits, strong reads, SQL-style scans.
//! - [`bigtable`] — an LSM tablet server: memtable, bloom-filtered
//!   SSTables, compressed blocks, size-tiered compaction that surfaces as
//!   remote work.
//! - [`bigquery`] — a columnar staged query engine: compressed column
//!   scans, filter/aggregate/join/sort operators, a hash-partitioned
//!   distributed shuffle.
//!
//! Shared infrastructure: [`meter`] (labeled CPU work charging),
//! [`costs`] (the calibrated cost model), [`exec`] (per-query records),
//! [`columnar`] (the column codec), [`bloom`] (cache-line-blocked filters),
//! [`merge`] (the loser-tree compaction merge), and [`runner`] (workload
//! drivers).

// `deny`, not `forbid`: the SIMD quarantine module ([`simd`]) opts back in
// with a scoped allow; everything else stays unsafe-free, enforced by
// `xtask audit --rule unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bigquery;
pub mod bigtable;
pub mod bloom;
pub mod columnar;
pub mod costs;
pub mod exec;
pub mod merge;
pub mod meter;
pub mod runner;
pub mod simd;
pub mod spanner;
pub mod twopc;

pub use bigquery::{BigQuery, BigQueryConfig};
pub use bigtable::{BigTable, BigTableConfig};
pub use exec::QueryExecution;
pub use meter::{CpuWorkItem, WorkMeter};
pub use runner::{run_bigquery, run_bigtable, run_fleet, run_spanner, FleetConfig};
pub use spanner::{Spanner, SpannerConfig};
pub use twopc::{distributed_commit, TxnWrite};
