//! A BigTable-class tablet server: per-tablet LSM trees (memtable +
//! leveled SSTable runs with bloom filters) over tiered storage, behind a
//! deterministic key router, with pipelined leveled compaction.
//!
//! Matches the paper's characterization hooks: point reads/writes dominate
//! core compute (Figure 4), compression sits on the critical path (SSTable
//! blocks are compressed, Figure 5), and compaction appears as *remote
//! work* that can block unlucky queries (Section 4.1: "compaction in remote
//! storage for BigTable").
//!
//! # Sharding and the compaction pipeline
//!
//! The key space is partitioned into `config.tablets` tablets by
//! [`route_key`] (a crc32c of the key bytes). Each [`Tablet`] owns an
//! independent memtable/SSTable stack, clock, tracer, and storage stack, so
//! tablets are schedulable as independent pool jobs by the fleet driver —
//! that is what breaks the one-big-LSM straggler the fleet bench exposed.
//!
//! Compaction is leveled rather than monolithic: a memtable flush appends a
//! run to level 0, and any level holding `compaction_fanin` runs is merged
//! (via the `crate::merge` loser tree) into a single run on the next level.
//! When a flush fires, the flush encode and every due level merge run as
//! *independent* jobs on a [`pool`] batch — merge inputs are snapshotted
//! before the incoming flush lands, so level-N merges run concurrently with
//! level-N+1 merges and with the flush itself. Job outputs are reinstalled
//! in canonical order (flush first, then merges by ascending level), which
//! keeps the tablet byte-identical at any `compaction_parallelism` and
//! under any [`Perturbation`].

use std::collections::BTreeMap;

use hsdp_core::category::{CoreComputeOp, DatacenterTax, Platform, SystemTax};
use hsdp_core::request::RequestId;
use hsdp_rpc::latency::LatencyModel;
use hsdp_rpc::span::{SpanKind, TraceId};
use hsdp_rpc::tracer::{OpenSpan, Tracer};
use hsdp_simcore::pool::{self, Perturbation, ShardPlan};
use hsdp_simcore::time::{SimDuration, SimTime};
use hsdp_storage::cache::PolicyKind;
use hsdp_storage::tiered::TieredStore;
use hsdp_taxes::crc::crc32c;
use hsdp_taxes::varint::encode_varint;
use hsdp_telemetry::MetricsRegistry;

use crate::bloom::Bloom;
use crate::costs;
use crate::exec::QueryExecution;
use crate::merge::Entry;
use crate::meter::{CpuWorkItem, WorkMeter};

/// Tablet-server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BigTableConfig {
    /// Memtable bytes before a flush to SSTable, summed across tablets
    /// (each tablet flushes at its `1/tablets` share).
    pub memtable_flush_bytes: usize,
    /// Run count at which a level is merged into the next level.
    pub compaction_fanin: usize,
    /// RAM / SSD / HDD capacities of the instance's storage, summed across
    /// tablets (each tablet owns its `1/tablets` share).
    pub tier_bytes: (u64, u64, u64),
    /// Cache policy for the storage stack.
    pub policy: PolicyKind,
    /// Tablets the key space is partitioned into (at least one).
    pub tablets: usize,
    /// Worker threads for one flush's batch of LSM jobs (the flush encode
    /// plus due level merges). Affects wall-clock only — tablet state and
    /// query records are identical at every value.
    pub compaction_parallelism: usize,
    /// Optional schedule perturbation for the LSM job batches. Like
    /// `compaction_parallelism`, it must never change output — the
    /// perturbation tests sweep it to prove the reassembly is canonical.
    pub perturb: Option<Perturbation>,
}

impl Default for BigTableConfig {
    fn default() -> Self {
        BigTableConfig {
            memtable_flush_bytes: 64 * 1024,
            compaction_fanin: 4,
            tier_bytes: (1 << 20, 8 << 20, 1 << 40),
            policy: PolicyKind::Lru,
            tablets: 1,
            compaction_parallelism: 1,
            perturb: None,
        }
    }
}

/// Phase tag for tablet engine seeds (fed to [`ShardPlan::derive_seed`]).
const TABLET_SEED_PHASE: u64 = 0x7AB_1E7;

/// The engine seed for `tablet` of an instance seeded with `seed` — a pure
/// function shared by [`BigTable::new`] and the fleet driver's per-tablet
/// jobs, so both construct identical tablet state.
#[must_use]
pub fn tablet_seed(seed: u64, tablet: usize) -> u64 {
    ShardPlan::derive_seed(seed, tablet as u64, TABLET_SEED_PHASE)
}

/// Routes a key to its tablet: a pure function of the key bytes and the
/// tablet count (crc32c spreads the preloaded key space evenly).
#[must_use]
pub fn route_key(key: &[u8], tablets: usize) -> usize {
    if tablets <= 1 {
        return 0;
    }
    crc32c(key) as usize % tablets
}

/// Telemetry label for a tablet index (clamped to the label table).
fn tablet_label(tablet: usize) -> &'static str {
    const LABELS: [&str; 16] = [
        "t00", "t01", "t02", "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t10", "t11", "t12",
        "t13", "t14", "t15",
    ];
    LABELS[tablet.min(LABELS.len() - 1)]
}

/// Telemetry label for an LSM level (clamped to the label table).
fn level_label(level: usize) -> &'static str {
    const LABELS: [&str; 8] = ["l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7"];
    LABELS[level.min(LABELS.len() - 1)]
}

/// An immutable sorted run.
#[derive(Debug)]
struct SsTable {
    id: u64,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    bloom: Bloom,
    encoded_bytes: u64,
}

impl SsTable {
    fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|idx| self.entries[idx].1.as_slice())
    }
}

/// Charges the RPC ingress/egress taxes for a request of `bytes`.
fn charge_rpc(meter: &mut WorkMeter, bytes: u64, leaf: &'static str) {
    let mut meter = meter.scope("rpc");
    meter.charge_ops(DatacenterTax::Rpc, leaf, 1, costs::RPC_FIXED_NS);
    meter.charge_bytes(DatacenterTax::Rpc, leaf, bytes, costs::RPC_NS_PER_BYTE);
    meter.charge_ops(
        SystemTax::Networking,
        "tcp_process",
        1,
        costs::NET_PROCESS_NS_PER_MSG,
    );
    meter.charge_ops(
        SystemTax::OperatingSystems,
        "sys_recvmsg",
        3,
        costs::SYSCALL_NS,
    );
    meter.charge_ops(
        SystemTax::Multithreading,
        "task_wakeup",
        1,
        costs::THREAD_HANDOFF_NS,
    );
    meter.charge_ops(
        SystemTax::Stl,
        "string_buffer_ops",
        2,
        costs::STL_NS_PER_MSG,
    );
    meter.charge_ops(
        DatacenterTax::Cryptography,
        "auth_check",
        1,
        costs::AUTH_CRYPTO_NS_PER_REQ,
    );
    meter.charge_ops(
        SystemTax::OtherMemoryOps,
        "page_ops",
        1,
        costs::OTHER_MEM_NS_PER_QUERY,
    );
}

/// Charges the protobuf taxes for handling a message of `bytes`.
fn charge_proto(meter: &mut WorkMeter, bytes: u64, decode: bool) {
    let mut meter = meter.scope("proto");
    let (leaf, per_byte) = if decode {
        ("proto_decode", costs::PROTO_DECODE_NS_PER_BYTE)
    } else {
        ("proto_encode", costs::PROTO_ENCODE_NS_PER_BYTE)
    };
    meter.charge_bytes(DatacenterTax::Protobuf, leaf, bytes, per_byte);
    meter.charge_ops(
        DatacenterTax::Protobuf,
        "proto_setup",
        1,
        costs::PROTO_PER_MESSAGE_NS,
    );
    meter.charge_ops(
        DatacenterTax::MemAllocation,
        "malloc",
        costs::ALLOCS_PER_MESSAGE,
        costs::MALLOC_NS_PER_OP,
    );
    meter.charge_bytes(
        DatacenterTax::DataMovement,
        "memcpy",
        bytes,
        costs::MEMCPY_NS_PER_BYTE,
    );
}

/// Encodes SSTable entries: varint-length-prefixed pairs, compressed,
/// checksummed. Returns (encoded bytes, raw bytes) and charges the work.
fn encode_sstable(meter: &mut WorkMeter, entries: &[(Vec<u8>, Vec<u8>)]) -> (Vec<u8>, u64) {
    let mut meter = meter.scope("sstable_encode");
    let mut raw = Vec::new();
    for (k, v) in entries {
        encode_varint(k.len() as u64, &mut raw);
        raw.extend_from_slice(k);
        encode_varint(v.len() as u64, &mut raw);
        raw.extend_from_slice(v);
    }
    let raw_len = raw.len() as u64;
    let compressed = hsdp_taxes::compress::compress(&raw);
    let _ = crc32c(&compressed);
    meter.charge_bytes(
        DatacenterTax::Compression,
        "block_compress",
        raw_len,
        costs::COMPRESS_NS_PER_BYTE,
    );
    meter.charge_bytes(
        SystemTax::Edac,
        "crc32c",
        compressed.len() as u64,
        costs::CRC_NS_PER_BYTE,
    );
    meter.charge_bytes(
        DatacenterTax::DataMovement,
        "memcpy",
        raw_len,
        costs::MEMCPY_NS_PER_BYTE,
    );
    (compressed, raw_len)
}

/// Charges the filesystem-client write taxes for a new run of `bytes`.
fn charge_run_write(meter: &mut WorkMeter, bytes: u64) {
    meter.charge_ops(
        SystemTax::FileSystems,
        "dfs_write",
        1,
        costs::FS_CLIENT_NS_PER_OP,
    );
    meter.charge_bytes(
        SystemTax::FileSystems,
        "dfs_write",
        bytes,
        costs::FS_CLIENT_NS_PER_BYTE,
    );
    meter.charge_ops(
        SystemTax::OperatingSystems,
        "sys_write",
        1,
        costs::SYSCALL_NS,
    );
}

/// One unit of LSM maintenance work, executable on any pool worker. Jobs
/// are pure CPU over owned data: all tiered-store traffic stays on the
/// coordinating tablet (in canonical order), which is what keeps the batch
/// schedule-invariant.
enum LsmJob {
    /// Encode a drained memtable snapshot into a new level-0 run.
    Flush { entries: Vec<Entry> },
    /// Merge one level's runs (oldest-first, with each run's encoded size
    /// for the decode charge) into a single run for the next level.
    Merge { runs: Vec<(u64, Vec<Entry>)> },
}

/// A finished LSM job: the new run's content plus the CPU work the job
/// metered, returned for canonical reassembly by the coordinator.
struct LsmJobOutput {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    bloom: Bloom,
    encoded_bytes: u64,
    input_entries: u64,
    items: Vec<CpuWorkItem>,
}

/// Runs one LSM job on a private meter rooted at the triggering query's
/// frame stack, so the returned items splice into the query's profile with
/// the stacks a single-threaded run would have produced.
fn run_lsm_job(job: LsmJob, parent_frames: &[&'static str]) -> LsmJobOutput {
    let mut meter = WorkMeter::new();
    for frame in parent_frames {
        meter.push_frame(frame);
    }
    let (entries, encoded_bytes, input_entries) = match job {
        LsmJob::Flush { entries } => {
            let mut scope = meter.scope("flush");
            let scope = &mut scope;
            scope.charge_ops(
                CoreComputeOp::Write,
                "memtable_flush",
                entries.len() as u64,
                costs::BTREE_OP_NS,
            );
            scope.charge_ops(
                SystemTax::Stl,
                "btreemap_drain",
                entries.len() as u64,
                costs::STL_NS_PER_ENTRY,
            );
            let (encoded, _raw) = encode_sstable(scope, &entries);
            charge_run_write(scope, encoded.len() as u64);
            (entries, encoded.len() as u64, 0)
        }
        LsmJob::Merge { runs } => {
            let mut scope = meter.scope("compaction");
            let scope = &mut scope;
            let total_entries: u64 = runs.iter().map(|(_, run)| run.len() as u64).sum();
            for (encoded_bytes, _) in &runs {
                scope.charge_bytes(
                    DatacenterTax::Compression,
                    "block_decompress",
                    *encoded_bytes,
                    costs::DECOMPRESS_NS_PER_BYTE,
                );
                scope.charge_ops(
                    SystemTax::FileSystems,
                    "dfs_read",
                    1,
                    costs::FS_CLIENT_NS_PER_OP,
                );
            }
            // K-way loser-tree merge, newest run wins on duplicate keys.
            // Runs arrive oldest-first; `merge_sorted_runs` resolves
            // duplicates toward the highest run index (see `crate::merge`).
            let entries =
                crate::merge::merge_sorted_runs(runs.into_iter().map(|(_, run)| run).collect());
            scope.charge_ops(
                CoreComputeOp::Compaction,
                "merge_runs",
                total_entries,
                costs::MERGE_NS_PER_ENTRY,
            );
            scope.charge_ops(
                SystemTax::Stl,
                "kway_merge_heap",
                total_entries,
                costs::STL_NS_PER_ENTRY,
            );
            let (encoded, _raw) = encode_sstable(scope, &entries);
            charge_run_write(scope, encoded.len() as u64);
            (entries, encoded.len() as u64, total_entries)
        }
    };
    let mut bloom = Bloom::new(entries.len());
    for (k, _) in &entries {
        bloom.insert(k);
    }
    LsmJobOutput {
        entries,
        bloom,
        encoded_bytes,
        input_entries,
        items: meter.take(),
    }
}

/// Common query tail: lay the CPU/IO/remote spans on the instance timeline
/// and package the execution record.
#[allow(clippy::too_many_arguments)]
fn finish_query(
    clock: &mut SimTime,
    tracer: &mut Tracer,
    telemetry: &mut MetricsRegistry,
    trace: TraceId,
    root: OpenSpan,
    meter: WorkMeter,
    io_time: SimDuration,
    remote_time: SimDuration,
    label: &'static str,
    request: RequestId,
) -> QueryExecution {
    let started = *clock;
    let cpu_time = meter.total();
    let cpu_span = tracer.start(trace, Some(root.id()), "cpu", SpanKind::Cpu, *clock);
    *clock += cpu_time;
    tracer.finish(cpu_span, *clock);
    if !io_time.is_zero() {
        let io_span = tracer.start(trace, Some(root.id()), "storage_io", SpanKind::Io, *clock);
        *clock += io_time;
        tracer.finish(io_span, *clock);
    }
    if !remote_time.is_zero() {
        let remote_span = tracer.start(
            trace,
            Some(root.id()),
            "compaction_wait",
            SpanKind::RemoteWork,
            *clock,
        );
        *clock += remote_time;
        tracer.finish(remote_span, *clock);
    }
    tracer.finish(root, *clock);
    telemetry.counter_add(("bigtable", "queries", label), 1);
    telemetry.record_duration_tagged(
        ("bigtable", "query_latency_ns", label),
        clock.since(started),
        request,
    );
    crate::meter::record_cpu_items(telemetry, meter.items());
    let spans: Vec<_> = tracer
        .take_spans()
        .into_iter()
        .filter(|s| s.trace == trace)
        .collect();
    let mut meter = meter;
    let mut exec = QueryExecution {
        platform: Platform::BigTable,
        label,
        spans,
        cpu_work: meter.take(),
        request: RequestId::UNTAGGED,
    };
    exec.stamp_request(request);
    exec
}

/// One tablet: an independent LSM instance over its own clock, tracer, and
/// tiered storage slice. The fleet driver schedules tablets as independent
/// pool jobs; [`BigTable`] drives them inline behind the key router.
#[derive(Debug)]
pub(crate) struct Tablet {
    config: BigTableConfig,
    id: usize,
    flush_bytes: usize,
    clock: SimTime,
    tracer: Tracer,
    store: TieredStore,
    net: LatencyModel,
    memtable: BTreeMap<Vec<u8>, Vec<u8>>,
    memtable_bytes: usize,
    /// `levels[0]` holds flush runs; `levels[n]` holds runs produced by
    /// merging level `n-1`. Within a level, runs are oldest-first; every
    /// run in a level is newer than every run in deeper levels.
    levels: Vec<Vec<SsTable>>,
    next_sst_id: u64,
    compactions: u64,
    rng_seed: u64,
    telemetry: MetricsRegistry,
    current_request: RequestId,
}

impl Tablet {
    /// A fresh tablet with its `1/config.tablets` share of the instance's
    /// memtable and storage budgets. `seed` is the tablet's engine seed
    /// (see [`tablet_seed`]).
    #[must_use]
    pub(crate) fn new(config: &BigTableConfig, id: usize, seed: u64) -> Self {
        let share = config.tablets.max(1) as u64;
        let (ram, ssd, hdd) = config.tier_bytes;
        Tablet {
            config: *config,
            id,
            flush_bytes: (config.memtable_flush_bytes / config.tablets.max(1)).max(512),
            clock: SimTime::ZERO,
            tracer: Tracer::new(),
            store: TieredStore::new(
                (ram / share).max(64 * 1024),
                (ssd / share).max(256 * 1024),
                (hdd / share).max(1 << 20),
                config.policy,
            ),
            net: LatencyModel::intra_cluster(),
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            levels: Vec::new(),
            next_sst_id: 1,
            compactions: 0,
            rng_seed: seed,
            telemetry: MetricsRegistry::disabled(),
            current_request: RequestId::UNTAGGED,
        }
    }

    pub(crate) fn set_telemetry(&mut self, registry: MetricsRegistry) {
        self.telemetry = registry;
    }

    /// Sets the request identity stamped onto subsequent query executions.
    pub(crate) fn set_request(&mut self, request: RequestId) {
        self.current_request = request;
    }

    pub(crate) fn take_telemetry(&mut self) -> MetricsRegistry {
        std::mem::replace(&mut self.telemetry, MetricsRegistry::disabled())
    }

    #[must_use]
    pub(crate) fn open_spans(&self) -> usize {
        self.tracer.open_count()
    }

    #[must_use]
    pub(crate) fn now(&self) -> SimTime {
        self.clock
    }

    #[must_use]
    pub(crate) fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Live runs across all levels.
    #[must_use]
    pub(crate) fn run_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Run count per level, shallowest first.
    #[must_use]
    pub(crate) fn run_histogram(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Reads a key's current value without simulation side effects — the
    /// verification hook behind the LSM reference-model property tests.
    /// Search order is newest-first: memtable, then level 0 newest run
    /// backwards, then deeper levels.
    #[must_use]
    pub(crate) fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(value) = self.memtable.get(key) {
            return Some(value.clone());
        }
        for level in &self.levels {
            for table in level.iter().rev() {
                if table.bloom.may_contain(key) {
                    if let Some(value) = table.get(key) {
                        return Some(value.to_vec());
                    }
                }
            }
        }
        None
    }

    /// Installs a finished LSM job output as a new run at `level`:
    /// allocates the run id, writes it through the tiered store (warming
    /// its blocks), and splices the job's metered CPU work into the
    /// triggering query's meter. All of this runs on the coordinator in
    /// canonical job order, never on a pool worker. Returns the
    /// storage-write time.
    fn install_run(
        &mut self,
        level: usize,
        out: LsmJobOutput,
        meter: &mut WorkMeter,
    ) -> SimDuration {
        let id = self.next_sst_id;
        self.next_sst_id += 1;
        let io = self.store.write_fast(id, out.encoded_bytes);
        // Freshly written data is hot: its blocks sit in the write-path
        // buffers.
        let blocks = (out.entries.len() / 16).max(1) as u64;
        for block_idx in 0..blocks {
            self.store
                .warm(id << 20 | block_idx, (out.encoded_bytes / blocks).max(1));
        }
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        self.levels[level].push(SsTable {
            id,
            entries: out.entries,
            bloom: out.bloom,
            encoded_bytes: out.encoded_bytes,
        });
        meter.extend(out.items);
        io
    }

    /// Drains the memtable and runs the due LSM maintenance as one batch of
    /// independent pool jobs: the level-0 flush encode plus one merge job
    /// per level that reached `compaction_fanin` runs *before* this flush
    /// (merge inputs never include the incoming run, so the jobs share no
    /// data). Storage reads for merge inputs happen here first, in
    /// canonical ascending-level order; job outputs are reinstalled in the
    /// same canonical order (flush, then merges by level), so the tablet
    /// ends in the same state at any parallelism and under any
    /// perturbation.
    ///
    /// Returns `(flush_io, compaction_wait)`: the flush's storage-write
    /// time (IO the query absorbs) and the slowest merge's read + compute +
    /// write time — concurrent merges overlap, so the remote wait the
    /// triggering query observes is a max, not a sum.
    fn flush_and_compact(&mut self, meter: &mut WorkMeter) -> (SimDuration, SimDuration) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        let mut jobs = vec![LsmJob::Flush { entries }];
        let mut merges: Vec<(usize, SimDuration)> = Vec::new();
        for level in 0..self.levels.len() {
            if self.levels[level].len() < self.config.compaction_fanin {
                continue;
            }
            let inputs: Vec<SsTable> = std::mem::take(&mut self.levels[level]);
            let mut read_io = SimDuration::ZERO;
            let mut runs = Vec::with_capacity(inputs.len());
            for table in inputs {
                read_io += self.store.read(table.id, table.encoded_bytes).latency;
                let blocks = (table.entries.len() / 16).max(1) as u64;
                for block_idx in 0..blocks {
                    self.store.invalidate(table.id << 20 | block_idx);
                }
                self.store.invalidate(table.id);
                runs.push((table.encoded_bytes, table.entries));
            }
            merges.push((level, read_io));
            jobs.push(LsmJob::Merge { runs });
        }

        let parent: Vec<&'static str> = meter.frames().to_vec();
        let thunks: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                let parent = parent.clone();
                move || run_lsm_job(job, &parent)
            })
            .collect();
        let outputs = pool::run_jobs_perturbed(
            self.config.compaction_parallelism.max(1),
            thunks,
            self.config.perturb,
        );

        let mut outputs = outputs.into_iter();
        let mut flush_io = SimDuration::ZERO;
        if let Some(out) = outputs.next() {
            flush_io = self.install_run(0, out, meter);
            self.telemetry
                .counter_add(("bigtable", "memtable_flushes", ""), 1);
            self.telemetry
                .counter_add(("bigtable", "tablet_flushes", tablet_label(self.id)), 1);
            self.telemetry
                .record_duration(("bigtable", "flush_io_ns", ""), flush_io);
        }
        let mut wait = SimDuration::ZERO;
        for ((level, read_io), out) in merges.into_iter().zip(outputs) {
            let cpu: SimDuration = out.items.iter().map(|item| item.time).sum();
            let input_entries = out.input_entries;
            let write_io = self.install_run(level + 1, out, meter);
            self.compactions += 1;
            wait = wait.max(read_io + cpu + write_io);
            self.telemetry
                .counter_add(("bigtable", "compactions", ""), 1);
            self.telemetry
                .counter_add(("bigtable", "level_merges", level_label(level)), 1);
            self.telemetry
                .counter_add(("bigtable", "compaction_entries", ""), input_entries);
            self.telemetry
                .record_duration(("bigtable", "compaction_io_ns", ""), read_io + write_io);
        }
        self.telemetry
            .gauge_max(("bigtable", "sstables_peak", ""), self.run_count() as u64);
        (flush_io, wait)
    }

    /// Executes a put, producing its execution record.
    pub(crate) fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let start = self.clock;
        let root = self
            .tracer
            .start(trace, None, "bigtable.put", SpanKind::Container, start);

        let (io_time, remote_time) = {
            let mut op = meter.scope("bigtable.put");
            // The trace starts at server receipt, as Dapper server spans do.
            let request_bytes = (key.len() + value.len() + 40) as u64;

            // Decode + apply.
            charge_rpc(&mut op, request_bytes, "rpc_ingress");
            charge_proto(&mut op, request_bytes, true);
            op.charge_ops(
                CoreComputeOp::Write,
                "memtable_insert",
                1,
                costs::BTREE_OP_NS,
            );
            op.charge_ops(
                SystemTax::Stl,
                "btreemap_insert",
                1,
                costs::STL_NS_PER_ENTRY,
            );
            self.memtable_bytes += key.len() + value.len();
            self.memtable.insert(key, value);

            // Flush / compaction if thresholds crossed.
            let mut io_time = SimDuration::ZERO;
            // Durability: the commit-log append replicates through the
            // distributed file system before the put acknowledges. Group
            // commit amortizes the wait: the put that lands first in a batch
            // waits a full round, later arrivals piggyback almost for free.
            let batch_position = {
                let mut z = (self.rng_seed ^ trace.0).wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut remote_time = self
                .net
                .one_way(request_bytes, self.rng_seed ^ trace.0 ^ 0x106)
                .scaled(0.05 + 0.75 * batch_position);
            if self.memtable_bytes > self.flush_bytes {
                // The blocked query absorbs the flush IO and waits out the
                // slowest concurrent level merge as remote work; the merge
                // compute cycles still profile as Compaction core compute.
                let (flush_io, compaction_wait) = self.flush_and_compact(&mut op);
                io_time += flush_io;
                remote_time += compaction_wait;
            }

            // Respond.
            op.charge_ops(
                DatacenterTax::MemAllocation,
                "malloc",
                1,
                costs::MALLOC_NS_PER_OP,
            );
            charge_proto(&mut op, 32, false);
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            (io_time, remote_time)
        };

        finish_query(
            &mut self.clock,
            &mut self.tracer,
            &mut self.telemetry,
            trace,
            root,
            meter,
            io_time,
            remote_time,
            "put",
            self.current_request,
        )
    }

    /// Executes a get.
    pub(crate) fn get(&mut self, key: &[u8]) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let root = self
            .tracer
            .start(trace, None, "bigtable.get", SpanKind::Container, self.clock);

        let io_time = {
            let mut op = meter.scope("bigtable.get");
            let request_bytes = (key.len() + 32) as u64;
            charge_rpc(&mut op, request_bytes, "rpc_ingress");
            charge_proto(&mut op, request_bytes, true);

            // Memtable first.
            op.charge_ops(
                CoreComputeOp::Read,
                "memtable_lookup",
                1,
                costs::BTREE_OP_NS,
            );
            let mut io_time = SimDuration::ZERO;
            let mut found = self.memtable.get(key).map(Vec::len);

            if found.is_none() {
                let mut lsm = op.scope("lsm_read");
                let store = &mut self.store;
                // Newest run first (level 0 backwards, then deeper levels),
                // bloom-gated.
                'levels: for level in &self.levels {
                    for table in level.iter().rev() {
                        lsm.charge_ops(CoreComputeOp::Read, "bloom_probe", 1, 60.0);
                        if !table.bloom.may_contain(key) {
                            continue;
                        }
                        // Touch storage for the specific block holding the
                        // key: caching is block-granular, so rare keys stay
                        // cold.
                        let blocks = (table.entries.len() / 16).max(1) as u64;
                        let block_bytes = (table.encoded_bytes / blocks).clamp(512, 64 * 1024);
                        let block_idx = key
                            .iter()
                            .fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(u64::from(b)))
                            % blocks;
                        io_time += store.read(table.id << 20 | block_idx, block_bytes).latency;
                        lsm.charge_ops(
                            SystemTax::FileSystems,
                            "dfs_read",
                            1,
                            costs::FS_CLIENT_NS_PER_OP,
                        );
                        lsm.charge_ops(
                            SystemTax::OperatingSystems,
                            "sys_read",
                            1,
                            costs::SYSCALL_NS,
                        );
                        lsm.charge_bytes(
                            DatacenterTax::Compression,
                            "block_decompress",
                            block_bytes,
                            costs::DECOMPRESS_NS_PER_BYTE,
                        );
                        lsm.charge_ops(
                            CoreComputeOp::Read,
                            "sstable_search",
                            (table.entries.len().max(2) as f64).log2() as u64 + 1,
                            costs::BTREE_OP_NS,
                        );
                        lsm.charge_ops(
                            CoreComputeOp::Read,
                            "block_parse",
                            (table.entries.len() as u64 / 16).max(4),
                            costs::MERGE_NS_PER_ENTRY,
                        );
                        if let Some(value) = table.get(key) {
                            found = Some(value.len());
                            break 'levels;
                        }
                    }
                }
            }

            let response_bytes = found.unwrap_or(0) as u64 + 32;
            charge_proto(&mut op, response_bytes, false);
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            io_time
        };

        finish_query(
            &mut self.clock,
            &mut self.tracer,
            &mut self.telemetry,
            trace,
            root,
            meter,
            io_time,
            SimDuration::ZERO,
            "get",
            self.current_request,
        )
    }

    /// Collects this tablet's first `limit` rows at or after `start_key`
    /// (newest value per key), without simulation side effects. Components
    /// are visited oldest-first — deepest level up, then the memtable — so
    /// newer writes overwrite older ones, the same resolution order the
    /// retained BTreeMap merge oracle uses. Also returns the candidate
    /// entry count examined (the scan's merge cost driver).
    fn collect_scan_rows(&self, start_key: &[u8], limit: usize) -> (Vec<(Vec<u8>, usize)>, u64) {
        let mut rows: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
        let mut scanned = 0u64;
        for level in (0..self.levels.len()).rev() {
            for table in &self.levels[level] {
                let from = table
                    .entries
                    .partition_point(|(k, _)| k.as_slice() < start_key);
                for (k, v) in table.entries.iter().skip(from).take(limit) {
                    rows.insert(k.clone(), v.len());
                    scanned += 1;
                }
            }
        }
        for (k, v) in self.memtable.range(start_key.to_vec()..).take(limit) {
            rows.insert(k.clone(), v.len());
            scanned += 1;
        }
        (rows.into_iter().take(limit).collect(), scanned)
    }

    /// This tablet's contribution to a range scan: its first `limit` rows
    /// at or after `start_key`, the storage IO spent finding them, and the
    /// CPU work metered along the way. The [`ScanAssembler`] folds partials
    /// from all tablets into the final scan execution.
    pub(crate) fn scan_partial(&mut self, start_key: &[u8], limit: usize) -> ScanPartial {
        let (rows, scanned) = self.collect_scan_rows(start_key, limit);
        let mut meter = WorkMeter::new();
        let mut io = SimDuration::ZERO;
        {
            let mut op = meter.scope("bigtable.scan");
            let mut merge = op.scope("tablet_scan");
            let merge = &mut merge;
            let store = &mut self.store;
            for level in &self.levels {
                for table in level {
                    let blocks = (table.entries.len() / 16).max(1) as u64;
                    let block = (table.encoded_bytes / blocks).clamp(512, 64 * 1024);
                    // A short scan touches a few consecutive blocks.
                    let first = start_key
                        .iter()
                        .fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(u64::from(b)))
                        % blocks;
                    for i in 0..4u64.min(blocks) {
                        io += store
                            .read((table.id << 20) | ((first + i) % blocks), block)
                            .latency;
                    }
                    merge.charge_bytes(
                        DatacenterTax::Compression,
                        "block_decompress",
                        block,
                        costs::DECOMPRESS_NS_PER_BYTE,
                    );
                    merge.charge_ops(
                        SystemTax::FileSystems,
                        "dfs_read",
                        1,
                        costs::FS_CLIENT_NS_PER_OP,
                    );
                }
            }
            merge.charge_ops(
                CoreComputeOp::Read,
                "scan_merge",
                scanned,
                costs::MERGE_NS_PER_ENTRY,
            );
            merge.charge_ops(
                SystemTax::Stl,
                "range_iter",
                scanned,
                costs::STL_NS_PER_ENTRY,
            );
        }
        ScanPartial {
            rows,
            io,
            items: meter.take(),
            limit,
        }
    }
}

/// The sorted rows one tablet contributes to a range scan, with the IO it
/// spent and the CPU work it metered. Partials are produced per tablet
/// (possibly by different fleet jobs) and folded by [`ScanAssembler`] in
/// canonical tablet order.
#[derive(Debug)]
pub struct ScanPartial {
    rows: Vec<(Vec<u8>, usize)>,
    io: SimDuration,
    items: Vec<CpuWorkItem>,
    limit: usize,
}

/// Folds per-tablet scan partials into one scan [`QueryExecution`] on the
/// scan coordinator's own clock, tracer, and telemetry. Tablet key ranges
/// are disjoint, so the fold is a merge of disjoint sorted row sets —
/// order-insensitive in content, but partials must arrive in canonical
/// tablet order so the metered work lands in a deterministic sequence.
#[derive(Debug, Default)]
pub struct ScanAssembler {
    clock: SimTime,
    tracer: Tracer,
    telemetry: MetricsRegistry,
    current_request: RequestId,
}

impl ScanAssembler {
    /// A fresh scan coordinator (telemetry off).
    #[must_use]
    pub fn new() -> Self {
        ScanAssembler {
            clock: SimTime::ZERO,
            tracer: Tracer::new(),
            telemetry: MetricsRegistry::disabled(),
            current_request: RequestId::UNTAGGED,
        }
    }

    /// Replaces the telemetry registry.
    pub fn set_telemetry(&mut self, registry: MetricsRegistry) {
        self.telemetry = registry;
    }

    /// Sets the request identity stamped onto subsequently assembled scans.
    pub fn set_request(&mut self, request: RequestId) {
        self.current_request = request;
    }

    /// Takes the telemetry collected so far, leaving recording disabled.
    pub fn take_telemetry(&mut self) -> MetricsRegistry {
        std::mem::replace(&mut self.telemetry, MetricsRegistry::disabled())
    }

    /// Spans still open in the coordinator's tracer.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.tracer.open_count()
    }

    /// Assembles one scan from its per-tablet partials (canonical tablet
    /// order), producing the query's execution record.
    pub fn assemble(&mut self, partials: Vec<ScanPartial>) -> QueryExecution {
        let limit = partials.first().map_or(0, |p| p.limit);
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let root = self.tracer.start(
            trace,
            None,
            "bigtable.scan",
            SpanKind::Container,
            self.clock,
        );

        let io_time = {
            let mut op = meter.scope("bigtable.scan");
            charge_rpc(&mut op, 64, "rpc_ingress");
            charge_proto(&mut op, 64, true);

            let mut io_time = SimDuration::ZERO;
            let mut rows: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
            let mut gathered = 0u64;
            for partial in partials {
                io_time += partial.io;
                gathered += partial.rows.len() as u64;
                op.extend(partial.items);
                for (key, len) in partial.rows {
                    rows.insert(key, len);
                }
            }
            let returned: Vec<usize> = rows.values().copied().take(limit).collect();
            {
                let mut merge = op.scope("scan_assemble");
                merge.charge_ops(
                    CoreComputeOp::Read,
                    "scan_merge",
                    gathered,
                    costs::MERGE_NS_PER_ENTRY,
                );
                merge.charge_ops(
                    SystemTax::Stl,
                    "range_iter",
                    gathered,
                    costs::STL_NS_PER_ENTRY,
                );
            }

            let response_bytes: u64 = returned.iter().map(|&l| l as u64 + 16).sum::<u64>() + 32;
            charge_proto(&mut op, response_bytes, false);
            charge_rpc(&mut op, response_bytes, "rpc_egress");
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            io_time
        };

        finish_query(
            &mut self.clock,
            &mut self.tracer,
            &mut self.telemetry,
            trace,
            root,
            meter,
            io_time,
            SimDuration::ZERO,
            "scan",
            self.current_request,
        )
    }
}

/// The tablet-server simulator: `config.tablets` independent [`Tablet`]
/// LSM instances behind the [`route_key`] router, plus the scan coordinator
/// that fans scans out across tablets and folds their partials.
#[derive(Debug)]
pub struct BigTable {
    tablets: Vec<Tablet>,
    scans: ScanAssembler,
}

impl BigTable {
    /// A fresh tablet server: each tablet derives its engine seed from
    /// `seed` via [`tablet_seed`].
    #[must_use]
    pub fn new(config: BigTableConfig, seed: u64) -> Self {
        let count = config.tablets.max(1);
        BigTable {
            tablets: (0..count)
                .map(|t| Tablet::new(&config, t, tablet_seed(seed, t)))
                .collect(),
            scans: ScanAssembler::new(),
        }
    }

    /// Turns telemetry on or off for every tablet and the scan coordinator
    /// (pass [`MetricsRegistry::new`] to turn recording on; it is off by
    /// default). Each component records into its own registry;
    /// [`BigTable::take_telemetry`] merges them.
    pub fn set_telemetry(&mut self, registry: MetricsRegistry) {
        let enabled = registry.is_enabled();
        for tablet in &mut self.tablets {
            tablet.set_telemetry(if enabled {
                MetricsRegistry::new()
            } else {
                MetricsRegistry::disabled()
            });
        }
        self.scans.set_telemetry(if enabled {
            registry
        } else {
            MetricsRegistry::disabled()
        });
    }

    /// Takes the telemetry collected so far (tablet registries merged in
    /// tablet order, then the scan coordinator's), leaving recording
    /// disabled.
    pub fn take_telemetry(&mut self) -> MetricsRegistry {
        let mut parts: Vec<MetricsRegistry> = self
            .tablets
            .iter_mut()
            .map(Tablet::take_telemetry)
            .collect();
        parts.push(self.scans.take_telemetry());
        if parts.iter().any(MetricsRegistry::is_enabled) {
            let mut merged = MetricsRegistry::new();
            for part in &parts {
                merged.merge(part);
            }
            merged
        } else {
            MetricsRegistry::disabled()
        }
    }

    /// Sets the request identity stamped onto subsequent query executions
    /// by every tablet and the scan coordinator.
    pub fn set_request(&mut self, request: RequestId) {
        for tablet in &mut self.tablets {
            tablet.set_request(request);
        }
        self.scans.set_request(request);
    }

    /// Spans still open across all tablets and the scan coordinator — zero
    /// between queries; asserted at end-of-run by the fleet driver.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.tablets.iter().map(Tablet::open_spans).sum::<usize>() + self.scans.open_spans()
    }

    /// The furthest simulated clock across tablets and the scan
    /// coordinator.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.tablets
            .iter()
            .map(Tablet::now)
            .chain(std::iter::once(self.scans.clock))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Number of level merges performed across all tablets.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.tablets.iter().map(Tablet::compactions).sum()
    }

    /// Number of live runs across all tablets and levels.
    #[must_use]
    pub fn sstable_count(&self) -> usize {
        self.tablets.iter().map(Tablet::run_count).sum()
    }

    /// Number of tablets.
    #[must_use]
    pub fn tablet_count(&self) -> usize {
        self.tablets.len()
    }

    /// Run count per level, summed across tablets, shallowest level first —
    /// the observability hook the leveled-compaction tests assert against.
    #[must_use]
    pub fn run_histogram(&self) -> Vec<usize> {
        let mut histogram = Vec::new();
        for tablet in &self.tablets {
            for (level, runs) in tablet.run_histogram().into_iter().enumerate() {
                if histogram.len() <= level {
                    histogram.resize(level + 1, 0);
                }
                histogram[level] += runs;
            }
        }
        histogram
    }

    /// Reads a key's current value without simulation side effects.
    #[must_use]
    pub fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        let tablet = route_key(key, self.tablets.len());
        self.tablets[tablet].lookup(key)
    }

    /// The first `limit` rows at or after `start_key` in key order, as
    /// `(key, value length)` pairs, without simulation side effects — the
    /// cross-tablet scan oracle. Tablet key ranges are disjoint, so the
    /// global first-`limit` is the merge of per-tablet first-`limit`s.
    #[must_use]
    pub fn scan_model(&self, start_key: &[u8], limit: usize) -> Vec<(Vec<u8>, usize)> {
        let mut rows: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
        for tablet in &self.tablets {
            for (key, len) in tablet.collect_scan_rows(start_key, limit).0 {
                rows.insert(key, len);
            }
        }
        rows.into_iter().take(limit).collect()
    }

    /// Executes a put on the owning tablet.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> QueryExecution {
        let tablet = route_key(&key, self.tablets.len());
        self.tablets[tablet].put(key, value)
    }

    /// Executes a get on the owning tablet.
    pub fn get(&mut self, key: &[u8]) -> QueryExecution {
        let tablet = route_key(key, self.tablets.len());
        self.tablets[tablet].get(key)
    }

    /// Executes a short range scan of up to `limit` rows from `start_key`:
    /// every tablet contributes a partial (ranges span tablets), and the
    /// scan coordinator folds them into one execution.
    pub fn scan(&mut self, start_key: &[u8], limit: usize) -> QueryExecution {
        let partials: Vec<ScanPartial> = self
            .tablets
            .iter_mut()
            .map(|tablet| tablet.scan_partial(start_key, limit))
            .collect();
        self.scans.assemble(partials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_core::category::{BroadCategory, CpuCategory};

    fn tiny() -> BigTable {
        BigTable::new(
            BigTableConfig {
                memtable_flush_bytes: 2_000,
                compaction_fanin: 3,
                ..BigTableConfig::default()
            },
            42,
        )
    }

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key-{i:06}").into_bytes(),
            format!("value-{i:06}-{}", "x".repeat(80)).into_bytes(),
        )
    }

    /// Byte-level equality of two execution records.
    fn exec_eq(a: &QueryExecution, b: &QueryExecution) -> bool {
        a.platform == b.platform
            && a.label == b.label
            && a.spans == b.spans
            && a.cpu_work == b.cpu_work
    }

    #[test]
    fn put_then_get_from_memtable() {
        let mut bt = tiny();
        let (k, v) = kv(1);
        let put = bt.put(k.clone(), v);
        assert_eq!(put.label, "put");
        assert!(!put.cpu_work.is_empty());
        let get = bt.get(&k);
        let d = get.decomposition();
        assert!(d.io.is_zero(), "memtable hit needs no storage IO");
        assert!(!d.cpu.is_zero());
    }

    #[test]
    fn flush_creates_sstables_and_gets_read_them() {
        let mut bt = tiny();
        for i in 0..40 {
            let (k, v) = kv(i);
            bt.put(k, v);
        }
        assert!(bt.sstable_count() >= 1, "flushes happened");
        // A flushed key is no longer in the memtable: the get does IO.
        let get = bt.get(&kv(0).0);
        let d = get.decomposition();
        assert!(!d.io.is_zero(), "sstable read requires storage IO");
    }

    #[test]
    fn compaction_triggers_and_counts_as_remote_work() {
        let mut bt = tiny();
        let mut saw_remote_compaction = false;
        for i in 0..400 {
            let (k, v) = kv(i % 97);
            let exec = bt.put(k, v);
            let d = exec.decomposition();
            if d.remote.as_nanos() > 20_000 {
                saw_remote_compaction = true;
            }
        }
        assert!(bt.compactions() > 0, "level merges ran");
        let histogram = bt.run_histogram();
        assert!(
            histogram.len() >= 2,
            "merges cascaded runs into deeper levels: {histogram:?}"
        );
        assert!(
            histogram[0] < 3 + 1,
            "level 0 stays below fan-in plus the in-flight flush: {histogram:?}"
        );
        assert!(
            saw_remote_compaction,
            "some unlucky put observed a long compaction wait"
        );
    }

    #[test]
    fn compaction_preserves_newest_values() {
        let mut bt = tiny();
        for round in 0..5 {
            for i in 0..30 {
                let k = format!("key-{i:06}").into_bytes();
                let v = format!("round-{round}-{}", "y".repeat(60)).into_bytes();
                bt.put(k, v);
            }
        }
        // The newest round's value must win through flushes and merges.
        for i in 0..30 {
            let k = format!("key-{i:06}").into_bytes();
            let got = bt.lookup(&k).unwrap_or_default();
            assert!(
                got.starts_with(b"round-4-"),
                "key {i}: newest value survives compaction"
            );
        }
    }

    #[test]
    fn scans_touch_all_runs() {
        let mut bt = tiny();
        for i in 0..120 {
            let (k, v) = kv(i);
            bt.put(k, v);
        }
        let scan = bt.scan(b"key-", 10);
        assert_eq!(scan.label, "scan");
        let d = scan.decomposition();
        assert!(!d.io.is_zero());
    }

    #[test]
    fn tax_categories_are_charged() {
        let mut bt = tiny();
        let mut breakdown = hsdp_core::component::CpuBreakdown::new();
        for i in 0..200 {
            let (k, v) = kv(i);
            let exec = bt.put(k, v);
            breakdown.merge(&crate::meter::items_breakdown(&exec.cpu_work));
        }
        // All three broad categories show up. Puts are tax-dominated (the
        // paper's point), so core compute only needs to be present.
        for broad in BroadCategory::ALL {
            assert!(
                breakdown.broad_share(broad) > 0.02,
                "{broad}: {}",
                breakdown.broad_share(broad)
            );
        }
        // Compression is a major datacenter tax for BigTable (Figure 5).
        let compression = breakdown.share(CpuCategory::from(DatacenterTax::Compression));
        assert!(compression > 0.02, "compression share {compression}");
    }

    #[test]
    fn missing_key_returns_without_panic() {
        let mut bt = tiny();
        for i in 0..50 {
            let (k, v) = kv(i);
            bt.put(k, v);
        }
        let exec = bt.get(b"absent-key");
        assert_eq!(exec.label, "get");
    }

    #[test]
    fn tablet_partitioning_agrees_with_single_tablet_oracle() {
        let config = BigTableConfig {
            memtable_flush_bytes: 2_000,
            compaction_fanin: 3,
            ..BigTableConfig::default()
        };
        let mut sharded = BigTable::new(
            BigTableConfig {
                tablets: 3,
                ..config
            },
            42,
        );
        let mut oracle = BigTable::new(config, 42);
        for round in 0..4 {
            for i in 0..60 {
                let k = format!("key-{i:06}").into_bytes();
                let v = format!("round-{round}-{i:04}-{}", "z".repeat(50)).into_bytes();
                sharded.put(k.clone(), v.clone());
                oracle.put(k, v);
            }
        }
        assert_eq!(sharded.tablet_count(), 3);
        for i in 0..60 {
            let k = format!("key-{i:06}").into_bytes();
            assert_eq!(sharded.lookup(&k), oracle.lookup(&k), "key {i}");
        }
        assert_eq!(sharded.lookup(b"missing"), None);
        // Cross-tablet scans: first-limit rows match the one-LSM oracle.
        for (start, limit) in [(&b"key-"[..], 10), (&b"key-000030"[..], 25), (&b""[..], 7)] {
            assert_eq!(
                sharded.scan_model(start, limit),
                oracle.scan_model(start, limit),
                "scan from {start:?}"
            );
        }
    }

    #[test]
    fn pipelined_compaction_is_schedule_invariant() {
        // The same op stream, replayed at compaction parallelism 1 and 4
        // and under perturbed LSM job schedules, must produce byte-equal
        // execution records — the pipelined merge batch may not leak its
        // schedule into any artifact.
        let run = |compaction_parallelism: usize, perturb: Option<Perturbation>| {
            let mut bt = BigTable::new(
                BigTableConfig {
                    memtable_flush_bytes: 2_000,
                    compaction_fanin: 3,
                    tablets: 2,
                    compaction_parallelism,
                    perturb,
                    ..BigTableConfig::default()
                },
                7,
            );
            let mut execs = Vec::new();
            for i in 0..300u32 {
                let (k, v) = kv(i % 83);
                execs.push(bt.put(k, v));
                if i % 17 == 0 {
                    execs.push(bt.get(&kv(i % 41).0));
                }
                if i % 29 == 0 {
                    execs.push(bt.scan(b"key-0000", 8));
                }
            }
            (execs, bt.compactions())
        };
        let (baseline, compactions) = run(1, None);
        assert!(compactions > 0, "the workload must exercise merges");
        for (parallelism, seed) in [(4, None), (1, Some(3)), (4, Some(11)), (3, Some(0xD15))] {
            let (execs, _) = run(parallelism, seed.map(Perturbation::new));
            assert_eq!(execs.len(), baseline.len());
            for (a, b) in baseline.iter().zip(&execs) {
                assert!(
                    exec_eq(a, b),
                    "records diverged at parallelism {parallelism} seed {seed:?}"
                );
            }
        }
    }

    #[test]
    fn leveled_merge_matches_reference_merge() {
        // The pipeline's loser-tree output equals the retained BTreeMap
        // oracle on every level's merge inputs.
        let runs: Vec<Vec<(Vec<u8>, Vec<u8>)>> = (0..4)
            .map(|run| {
                (0..50u32)
                    .map(|i| {
                        (
                            format!("k-{:04}", (i * 7 + run * 3) % 120).into_bytes(),
                            format!("v-{run}-{i}").into_bytes(),
                        )
                    })
                    .collect::<std::collections::BTreeMap<_, _>>()
                    .into_iter()
                    .collect()
            })
            .collect();
        let merged = crate::merge::merge_sorted_runs(runs.clone());
        let reference = crate::merge::merge_runs_reference(runs);
        assert_eq!(merged, reference);
    }

    #[test]
    fn route_key_is_stable_and_in_range() {
        for tablets in [1, 2, 3, 7] {
            for i in 0..200u32 {
                let (k, _) = kv(i);
                let t = route_key(&k, tablets);
                assert!(t < tablets);
                assert_eq!(t, route_key(&k, tablets), "routing is pure");
            }
        }
        assert_eq!(route_key(b"anything", 1), 0);
        assert_eq!(route_key(b"anything", 0), 0);
    }
}
