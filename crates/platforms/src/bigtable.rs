//! A BigTable-class tablet server: an LSM tree (memtable + SSTables with
//! bloom filters) over tiered storage, with size-tiered compaction.
//!
//! Matches the paper's characterization hooks: point reads/writes dominate
//! core compute (Figure 4), compression sits on the critical path (SSTable
//! blocks are compressed, Figure 5), and compaction appears as *remote
//! work* that can block unlucky queries (Section 4.1: "compaction in remote
//! storage for BigTable").

use std::collections::BTreeMap;

use hsdp_core::category::{CoreComputeOp, DatacenterTax, Platform, SystemTax};
use hsdp_rng::StdRng;
use hsdp_rpc::latency::LatencyModel;
use hsdp_rpc::span::SpanKind;
use hsdp_rpc::tracer::Tracer;
use hsdp_simcore::time::{SimDuration, SimTime};
use hsdp_storage::cache::PolicyKind;
use hsdp_storage::tiered::TieredStore;
use hsdp_taxes::crc::crc32c;
use hsdp_taxes::varint::encode_varint;
use hsdp_telemetry::MetricsRegistry;

use crate::bloom::Bloom;
use crate::costs;
use crate::exec::QueryExecution;
use crate::meter::WorkMeter;

/// Tablet-server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BigTableConfig {
    /// Memtable bytes before a flush to SSTable.
    pub memtable_flush_bytes: usize,
    /// SSTable count that triggers a size-tiered compaction.
    pub compaction_fanin: usize,
    /// RAM / SSD / HDD capacities of the tablet's storage stack.
    pub tier_bytes: (u64, u64, u64),
    /// Cache policy for the storage stack.
    pub policy: PolicyKind,
}

impl Default for BigTableConfig {
    fn default() -> Self {
        BigTableConfig {
            memtable_flush_bytes: 64 * 1024,
            compaction_fanin: 4,
            tier_bytes: (1 << 20, 8 << 20, 1 << 40),
            policy: PolicyKind::Lru,
        }
    }
}

/// An immutable sorted run.
#[derive(Debug)]
struct SsTable {
    id: u64,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    bloom: Bloom,
    encoded_bytes: u64,
}

impl SsTable {
    fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|idx| self.entries[idx].1.as_slice())
    }
}

/// The tablet-server simulator.
#[derive(Debug)]
pub struct BigTable {
    config: BigTableConfig,
    clock: SimTime,
    tracer: Tracer,
    store: TieredStore,
    net: LatencyModel,
    memtable: BTreeMap<Vec<u8>, Vec<u8>>,
    memtable_bytes: usize,
    sstables: Vec<SsTable>,
    next_sst_id: u64,
    compactions: u64,
    rng_seed: u64,
    _rng: StdRng,
    telemetry: MetricsRegistry,
}

impl BigTable {
    /// A fresh tablet server.
    #[must_use]
    pub fn new(config: BigTableConfig, seed: u64) -> Self {
        let (ram, ssd, hdd) = config.tier_bytes;
        BigTable {
            config,
            clock: SimTime::ZERO,
            tracer: Tracer::new(),
            store: TieredStore::new(ram, ssd, hdd, config.policy),
            net: LatencyModel::intra_cluster(),
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            sstables: Vec::new(),
            next_sst_id: 1,
            compactions: 0,
            rng_seed: seed,
            _rng: StdRng::seed_from_u64(seed),
            telemetry: MetricsRegistry::disabled(),
        }
    }

    /// Replaces the telemetry registry (pass [`MetricsRegistry::new`] to
    /// turn recording on; it is off by default).
    pub fn set_telemetry(&mut self, registry: MetricsRegistry) {
        self.telemetry = registry;
    }

    /// Takes the telemetry collected so far, leaving recording disabled.
    pub fn take_telemetry(&mut self) -> MetricsRegistry {
        std::mem::replace(&mut self.telemetry, MetricsRegistry::disabled())
    }

    /// Spans still open in the tracer — zero between queries; asserted at
    /// end-of-run by the fleet driver.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.tracer.open_count()
    }

    /// The simulated clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of compactions performed.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Number of live SSTables.
    #[must_use]
    pub fn sstable_count(&self) -> usize {
        self.sstables.len()
    }

    /// Reads a key's current value without simulation side effects — the
    /// verification hook behind the LSM reference-model property tests.
    #[must_use]
    pub fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(value) = self.memtable.get(key) {
            return Some(value.clone());
        }
        for table in self.sstables.iter().rev() {
            if table.bloom.may_contain(key) {
                if let Some(value) = table.get(key) {
                    return Some(value.to_vec());
                }
            }
        }
        None
    }

    /// Charges the RPC ingress taxes for a request of `bytes`.
    fn charge_rpc(&self, meter: &mut WorkMeter, bytes: u64, leaf: &'static str) {
        let mut meter = meter.scope("rpc");
        meter.charge_ops(DatacenterTax::Rpc, leaf, 1, costs::RPC_FIXED_NS);
        meter.charge_bytes(DatacenterTax::Rpc, leaf, bytes, costs::RPC_NS_PER_BYTE);
        meter.charge_ops(
            SystemTax::Networking,
            "tcp_process",
            1,
            costs::NET_PROCESS_NS_PER_MSG,
        );
        meter.charge_ops(
            SystemTax::OperatingSystems,
            "sys_recvmsg",
            3,
            costs::SYSCALL_NS,
        );
        meter.charge_ops(
            SystemTax::Multithreading,
            "task_wakeup",
            1,
            costs::THREAD_HANDOFF_NS,
        );
        meter.charge_ops(
            SystemTax::Stl,
            "string_buffer_ops",
            2,
            costs::STL_NS_PER_MSG,
        );
        meter.charge_ops(
            DatacenterTax::Cryptography,
            "auth_check",
            1,
            costs::AUTH_CRYPTO_NS_PER_REQ,
        );
        meter.charge_ops(
            SystemTax::OtherMemoryOps,
            "page_ops",
            1,
            costs::OTHER_MEM_NS_PER_QUERY,
        );
    }

    /// Charges the protobuf taxes for handling a message of `bytes`.
    fn charge_proto(&self, meter: &mut WorkMeter, bytes: u64, decode: bool) {
        let mut meter = meter.scope("proto");
        let (leaf, per_byte) = if decode {
            ("proto_decode", costs::PROTO_DECODE_NS_PER_BYTE)
        } else {
            ("proto_encode", costs::PROTO_ENCODE_NS_PER_BYTE)
        };
        meter.charge_bytes(DatacenterTax::Protobuf, leaf, bytes, per_byte);
        meter.charge_ops(
            DatacenterTax::Protobuf,
            "proto_setup",
            1,
            costs::PROTO_PER_MESSAGE_NS,
        );
        meter.charge_ops(
            DatacenterTax::MemAllocation,
            "malloc",
            costs::ALLOCS_PER_MESSAGE,
            costs::MALLOC_NS_PER_OP,
        );
        meter.charge_bytes(
            DatacenterTax::DataMovement,
            "memcpy",
            bytes,
            costs::MEMCPY_NS_PER_BYTE,
        );
    }

    /// Encodes SSTable entries: varint-length-prefixed pairs, compressed,
    /// checksummed. Returns (encoded bytes, raw bytes) and charges the work.
    fn encode_sstable(meter: &mut WorkMeter, entries: &[(Vec<u8>, Vec<u8>)]) -> (Vec<u8>, u64) {
        let mut meter = meter.scope("sstable_encode");
        let mut raw = Vec::new();
        for (k, v) in entries {
            encode_varint(k.len() as u64, &mut raw);
            raw.extend_from_slice(k);
            encode_varint(v.len() as u64, &mut raw);
            raw.extend_from_slice(v);
        }
        let raw_len = raw.len() as u64;
        let compressed = hsdp_taxes::compress::compress(&raw);
        let _ = crc32c(&compressed);
        meter.charge_bytes(
            DatacenterTax::Compression,
            "block_compress",
            raw_len,
            costs::COMPRESS_NS_PER_BYTE,
        );
        meter.charge_bytes(
            SystemTax::Edac,
            "crc32c",
            compressed.len() as u64,
            costs::CRC_NS_PER_BYTE,
        );
        meter.charge_bytes(
            DatacenterTax::DataMovement,
            "memcpy",
            raw_len,
            costs::MEMCPY_NS_PER_BYTE,
        );
        (compressed, raw_len)
    }

    /// Flushes the memtable into a new SSTable; returns the IO time.
    fn flush_memtable(&mut self, meter: &mut WorkMeter) -> SimDuration {
        let mut meter = meter.scope("flush");
        let meter = &mut meter;
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        let mut bloom = Bloom::new(entries.len());
        for (k, _) in &entries {
            bloom.insert(k);
        }
        meter.charge_ops(
            CoreComputeOp::Write,
            "memtable_flush",
            entries.len() as u64,
            costs::BTREE_OP_NS,
        );
        meter.charge_ops(
            SystemTax::Stl,
            "btreemap_drain",
            entries.len() as u64,
            costs::STL_NS_PER_ENTRY,
        );
        let (encoded, _raw) = Self::encode_sstable(meter, &entries);
        let id = self.next_sst_id;
        self.next_sst_id += 1;
        let io = self.store.write_fast(id, encoded.len() as u64);
        // Freshly flushed data is hot: its blocks sit in the write-path
        // buffers.
        let blocks = (entries.len() / 16).max(1) as u64;
        for block_idx in 0..blocks {
            self.store
                .warm(id << 20 | block_idx, (encoded.len() as u64 / blocks).max(1));
        }
        meter.charge_ops(
            SystemTax::FileSystems,
            "dfs_write",
            1,
            costs::FS_CLIENT_NS_PER_OP,
        );
        meter.charge_bytes(
            SystemTax::FileSystems,
            "dfs_write",
            encoded.len() as u64,
            costs::FS_CLIENT_NS_PER_BYTE,
        );
        meter.charge_ops(
            SystemTax::OperatingSystems,
            "sys_write",
            1,
            costs::SYSCALL_NS,
        );
        self.sstables.push(SsTable {
            id,
            entries,
            bloom,
            encoded_bytes: encoded.len() as u64,
        });
        self.telemetry
            .counter_add(("bigtable", "memtable_flushes", ""), 1);
        self.telemetry
            .record_duration(("bigtable", "flush_io_ns", ""), io);
        self.telemetry.gauge_max(
            ("bigtable", "sstables_peak", ""),
            self.sstables.len() as u64,
        );
        io
    }

    /// Merges all SSTables into one (size-tiered compaction); returns the
    /// remote-work time the triggering query observes.
    fn compact(&mut self, meter: &mut WorkMeter) -> SimDuration {
        let mut meter = meter.scope("compaction");
        let meter = &mut meter;
        self.compactions += 1;
        let inputs: Vec<SsTable> = std::mem::take(&mut self.sstables);
        let total_entries: usize = inputs.iter().map(|s| s.entries.len()).sum();
        let mut io = SimDuration::ZERO;
        // Read every input run back from storage.
        for table in &inputs {
            io += self.store.read(table.id, table.encoded_bytes).latency;
            meter.charge_bytes(
                DatacenterTax::Compression,
                "block_decompress",
                table.encoded_bytes,
                costs::DECOMPRESS_NS_PER_BYTE,
            );
            meter.charge_ops(
                SystemTax::FileSystems,
                "dfs_read",
                1,
                costs::FS_CLIENT_NS_PER_OP,
            );
            let blocks = (table.entries.len() / 16).max(1) as u64;
            for block_idx in 0..blocks {
                self.store.invalidate(table.id << 20 | block_idx);
            }
            self.store.invalidate(table.id);
        }
        // K-way loser-tree merge, newest run wins on duplicate keys. Runs
        // are pushed oldest-first; `merge_sorted_runs` resolves duplicates
        // toward the highest run index (see `crate::merge`).
        let runs: Vec<Vec<(Vec<u8>, Vec<u8>)>> =
            inputs.into_iter().map(|table| table.entries).collect();
        let entries = crate::merge::merge_sorted_runs(runs);
        meter.charge_ops(
            CoreComputeOp::Compaction,
            "merge_runs",
            total_entries as u64,
            costs::MERGE_NS_PER_ENTRY,
        );
        meter.charge_ops(
            SystemTax::Stl,
            "kway_merge_heap",
            total_entries as u64,
            costs::STL_NS_PER_ENTRY,
        );
        let mut bloom = Bloom::new(entries.len());
        for (k, _) in &entries {
            bloom.insert(k);
        }
        let (encoded, _) = Self::encode_sstable(meter, &entries);
        let id = self.next_sst_id;
        self.next_sst_id += 1;
        io += self.store.write_fast(id, encoded.len() as u64);
        let blocks = (entries.len() / 16).max(1) as u64;
        for block_idx in 0..blocks {
            self.store
                .warm(id << 20 | block_idx, (encoded.len() as u64 / blocks).max(1));
        }
        self.sstables.push(SsTable {
            id,
            entries,
            bloom,
            encoded_bytes: encoded.len() as u64,
        });
        self.telemetry
            .counter_add(("bigtable", "compactions", ""), 1);
        self.telemetry
            .counter_add(("bigtable", "compaction_entries", ""), total_entries as u64);
        self.telemetry
            .record_duration(("bigtable", "compaction_io_ns", ""), io);
        io
    }

    /// Executes a put, producing its execution record.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let start = self.clock;
        let root = self
            .tracer
            .start(trace, None, "bigtable.put", SpanKind::Container, start);

        let (io_time, remote_time) = {
            let mut op = meter.scope("bigtable.put");
            // The trace starts at server receipt, as Dapper server spans do.
            let request_bytes = (key.len() + value.len() + 40) as u64;

            // Decode + apply.
            self.charge_rpc(&mut op, request_bytes, "rpc_ingress");
            self.charge_proto(&mut op, request_bytes, true);
            op.charge_ops(
                CoreComputeOp::Write,
                "memtable_insert",
                1,
                costs::BTREE_OP_NS,
            );
            op.charge_ops(
                SystemTax::Stl,
                "btreemap_insert",
                1,
                costs::STL_NS_PER_ENTRY,
            );
            self.memtable_bytes += key.len() + value.len();
            self.memtable.insert(key, value);

            // Flush / compaction if thresholds crossed.
            let mut io_time = SimDuration::ZERO;
            // Durability: the commit-log append replicates through the
            // distributed file system before the put acknowledges. Group
            // commit amortizes the wait: the put that lands first in a batch
            // waits a full round, later arrivals piggyback almost for free.
            let batch_position = {
                let mut z = (self.rng_seed ^ trace.0).wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut remote_time = self
                .net
                .one_way(request_bytes, self.rng_seed ^ trace.0 ^ 0x106)
                .scaled(0.05 + 0.75 * batch_position);
            if self.memtable_bytes > self.config.memtable_flush_bytes {
                io_time += self.flush_memtable(&mut op);
                if self.sstables.len() >= self.config.compaction_fanin {
                    // The blocked query waits for the remote storage workers'
                    // full compaction (their compute + IO); the compute
                    // cycles still profile as Compaction core compute.
                    let cpu_before = op.total();
                    let compaction_io = self.compact(&mut op);
                    remote_time += compaction_io + (op.total() - cpu_before);
                }
            }

            // Respond.
            op.charge_ops(
                DatacenterTax::MemAllocation,
                "malloc",
                1,
                costs::MALLOC_NS_PER_OP,
            );
            self.charge_proto(&mut op, 32, false);
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            (io_time, remote_time)
        };

        self.finish_query(trace, root, meter, io_time, remote_time, "put")
    }

    /// Executes a get.
    pub fn get(&mut self, key: &[u8]) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let root = self
            .tracer
            .start(trace, None, "bigtable.get", SpanKind::Container, self.clock);

        let io_time = {
            let mut op = meter.scope("bigtable.get");
            let request_bytes = (key.len() + 32) as u64;
            self.charge_rpc(&mut op, request_bytes, "rpc_ingress");
            self.charge_proto(&mut op, request_bytes, true);

            // Memtable first.
            op.charge_ops(
                CoreComputeOp::Read,
                "memtable_lookup",
                1,
                costs::BTREE_OP_NS,
            );
            let mut io_time = SimDuration::ZERO;
            let mut found = self.memtable.get(key).map(|v| v.len());

            if found.is_none() {
                let mut lsm = op.scope("lsm_read");
                // Newest SSTable first, bloom-gated.
                for idx in (0..self.sstables.len()).rev() {
                    lsm.charge_ops(CoreComputeOp::Read, "bloom_probe", 1, 60.0);
                    if !self.sstables[idx].bloom.may_contain(key) {
                        continue;
                    }
                    let (id, encoded_bytes, value_len, blocks) = {
                        let table = &self.sstables[idx];
                        (
                            table.id,
                            table.encoded_bytes,
                            table.get(key).map(<[u8]>::len),
                            (table.entries.len() / 16).max(1) as u64,
                        )
                    };
                    // Touch storage for the specific block holding the key:
                    // caching is block-granular, so rare keys stay cold.
                    let block_bytes = (encoded_bytes / blocks).clamp(512, 64 * 1024);
                    let block_idx = key
                        .iter()
                        .fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(u64::from(b)))
                        % blocks;
                    io_time += self.store.read(id << 20 | block_idx, block_bytes).latency;
                    lsm.charge_ops(
                        SystemTax::FileSystems,
                        "dfs_read",
                        1,
                        costs::FS_CLIENT_NS_PER_OP,
                    );
                    lsm.charge_ops(
                        SystemTax::OperatingSystems,
                        "sys_read",
                        1,
                        costs::SYSCALL_NS,
                    );
                    lsm.charge_bytes(
                        DatacenterTax::Compression,
                        "block_decompress",
                        block_bytes,
                        costs::DECOMPRESS_NS_PER_BYTE,
                    );
                    lsm.charge_ops(
                        CoreComputeOp::Read,
                        "sstable_search",
                        (self.sstables[idx].entries.len().max(2) as f64).log2() as u64 + 1,
                        costs::BTREE_OP_NS,
                    );
                    lsm.charge_ops(
                        CoreComputeOp::Read,
                        "block_parse",
                        (self.sstables[idx].entries.len() as u64 / 16).max(4),
                        costs::MERGE_NS_PER_ENTRY,
                    );
                    if value_len.is_some() {
                        found = value_len;
                        break;
                    }
                }
            }

            let response_bytes = found.unwrap_or(0) as u64 + 32;
            self.charge_proto(&mut op, response_bytes, false);
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            io_time
        };

        self.finish_query(trace, root, meter, io_time, SimDuration::ZERO, "get")
    }

    /// Executes a short range scan of up to `limit` rows from `start_key`.
    pub fn scan(&mut self, start_key: &[u8], limit: usize) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let root = self.tracer.start(
            trace,
            None,
            "bigtable.scan",
            SpanKind::Container,
            self.clock,
        );

        let io_time = {
            let mut op = meter.scope("bigtable.scan");
            self.charge_rpc(&mut op, 64, "rpc_ingress");
            self.charge_proto(&mut op, 64, true);

            // Merge memtable + all sstables over the range.
            let mut rows: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
            for table in &self.sstables {
                for (k, v) in &table.entries {
                    if k.as_slice() >= start_key && rows.len() < limit * 2 {
                        rows.insert(k.clone(), v.len());
                    }
                }
            }
            for (k, v) in self.memtable.range(start_key.to_vec()..) {
                if rows.len() >= limit * 2 {
                    break;
                }
                rows.insert(k.clone(), v.len());
            }
            let returned: Vec<usize> = rows.values().copied().take(limit).collect();
            let scanned = rows.len() as u64;

            let mut io_time = SimDuration::ZERO;
            {
                let mut merge = op.scope("run_merge");
                for table in &self.sstables {
                    let blocks = (table.entries.len() / 16).max(1) as u64;
                    let block = (table.encoded_bytes / blocks).clamp(512, 64 * 1024);
                    // A short scan touches a few consecutive blocks.
                    let first = start_key
                        .iter()
                        .fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(u64::from(b)))
                        % blocks;
                    for i in 0..4u64.min(blocks) {
                        io_time += self
                            .store
                            .read((table.id << 20) | ((first + i) % blocks), block)
                            .latency;
                    }
                    merge.charge_bytes(
                        DatacenterTax::Compression,
                        "block_decompress",
                        block,
                        costs::DECOMPRESS_NS_PER_BYTE,
                    );
                    merge.charge_ops(
                        SystemTax::FileSystems,
                        "dfs_read",
                        1,
                        costs::FS_CLIENT_NS_PER_OP,
                    );
                }
                merge.charge_ops(
                    CoreComputeOp::Read,
                    "scan_merge",
                    scanned,
                    costs::MERGE_NS_PER_ENTRY,
                );
                merge.charge_ops(
                    SystemTax::Stl,
                    "range_iter",
                    scanned,
                    costs::STL_NS_PER_ENTRY,
                );
            }

            let response_bytes: u64 = returned.iter().map(|&l| l as u64 + 16).sum::<u64>() + 32;
            self.charge_proto(&mut op, response_bytes, false);
            self.charge_rpc(&mut op, response_bytes, "rpc_egress");
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            io_time
        };

        self.finish_query(trace, root, meter, io_time, SimDuration::ZERO, "scan")
    }

    /// Common tail: lay the CPU/IO/remote spans on the timeline and package
    /// the execution record.
    fn finish_query(
        &mut self,
        trace: hsdp_rpc::span::TraceId,
        root: hsdp_rpc::tracer::OpenSpan,
        meter: WorkMeter,
        io_time: SimDuration,
        remote_time: SimDuration,
        _label: &'static str,
    ) -> QueryExecution {
        let started = self.clock;
        let cpu_time = meter.total();
        let cpu_span = self
            .tracer
            .start(trace, Some(root.id()), "cpu", SpanKind::Cpu, self.clock);
        self.clock += cpu_time;
        self.tracer.finish(cpu_span, self.clock);
        if !io_time.is_zero() {
            let io_span = self.tracer.start(
                trace,
                Some(root.id()),
                "storage_io",
                SpanKind::Io,
                self.clock,
            );
            self.clock += io_time;
            self.tracer.finish(io_span, self.clock);
        }
        if !remote_time.is_zero() {
            let remote_span = self.tracer.start(
                trace,
                Some(root.id()),
                "compaction_wait",
                SpanKind::RemoteWork,
                self.clock,
            );
            self.clock += remote_time;
            self.tracer.finish(remote_span, self.clock);
        }
        self.tracer.finish(root, self.clock);
        self.telemetry
            .counter_add(("bigtable", "queries", _label), 1);
        self.telemetry.record_duration(
            ("bigtable", "query_latency_ns", _label),
            self.clock.since(started),
        );
        crate::meter::record_cpu_items(&mut self.telemetry, meter.items());
        let spans: Vec<_> = self
            .tracer
            .take_spans()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        let mut meter = meter;
        QueryExecution {
            platform: Platform::BigTable,
            label: _label,
            spans,
            cpu_work: meter.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_core::category::{BroadCategory, CpuCategory};

    fn tiny() -> BigTable {
        BigTable::new(
            BigTableConfig {
                memtable_flush_bytes: 2_000,
                compaction_fanin: 3,
                ..BigTableConfig::default()
            },
            42,
        )
    }

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key-{i:06}").into_bytes(),
            format!("value-{i:06}-{}", "x".repeat(80)).into_bytes(),
        )
    }

    #[test]
    fn put_then_get_from_memtable() {
        let mut bt = tiny();
        let (k, v) = kv(1);
        let put = bt.put(k.clone(), v);
        assert_eq!(put.label, "put");
        assert!(!put.cpu_work.is_empty());
        let get = bt.get(&k);
        let d = get.decomposition();
        assert!(d.io.is_zero(), "memtable hit needs no storage IO");
        assert!(!d.cpu.is_zero());
    }

    #[test]
    fn flush_creates_sstables_and_gets_read_them() {
        let mut bt = tiny();
        for i in 0..40 {
            let (k, v) = kv(i);
            bt.put(k, v);
        }
        assert!(bt.sstable_count() >= 1, "flushes happened");
        // A flushed key is no longer in the memtable: the get does IO.
        let get = bt.get(&kv(0).0);
        let d = get.decomposition();
        assert!(!d.io.is_zero(), "sstable read requires storage IO");
    }

    #[test]
    fn compaction_triggers_and_counts_as_remote_work() {
        let mut bt = tiny();
        let mut saw_remote_compaction = false;
        for i in 0..400 {
            let (k, v) = kv(i % 97);
            let exec = bt.put(k, v);
            let d = exec.decomposition();
            if d.remote.as_nanos() > 100_000 {
                saw_remote_compaction = true;
            }
        }
        assert!(bt.compactions() > 0, "compactions ran");
        assert!(bt.sstable_count() < 3, "compaction merged runs");
        assert!(
            saw_remote_compaction,
            "some unlucky put observed a long compaction wait"
        );
    }

    #[test]
    fn compaction_preserves_newest_values() {
        let mut bt = tiny();
        for round in 0..5 {
            for i in 0..30 {
                let k = format!("key-{i:06}").into_bytes();
                let v = format!("round-{round}-{}", "y".repeat(60)).into_bytes();
                bt.put(k, v);
            }
        }
        // Find key-000000 via a scan: the newest value should win.
        let all: Vec<(Vec<u8>, Vec<u8>)> = bt
            .sstables
            .iter()
            .flat_map(|t| t.entries.iter().cloned())
            .collect();
        for (k, v) in &all {
            if k == b"key-000000" {
                assert!(v.starts_with(b"round-"), "value present");
            }
        }
    }

    #[test]
    fn scans_touch_all_runs() {
        let mut bt = tiny();
        for i in 0..120 {
            let (k, v) = kv(i);
            bt.put(k, v);
        }
        let scan = bt.scan(b"key-", 10);
        assert_eq!(scan.label, "scan");
        let d = scan.decomposition();
        assert!(!d.io.is_zero());
    }

    #[test]
    fn tax_categories_are_charged() {
        let mut bt = tiny();
        let mut breakdown = hsdp_core::component::CpuBreakdown::new();
        for i in 0..200 {
            let (k, v) = kv(i);
            let exec = bt.put(k, v);
            breakdown.merge(&crate::meter::items_breakdown(&exec.cpu_work));
        }
        // All three broad categories show up. Puts are tax-dominated (the
        // paper's point), so core compute only needs to be present.
        for broad in BroadCategory::ALL {
            assert!(
                breakdown.broad_share(broad) > 0.02,
                "{broad}: {}",
                breakdown.broad_share(broad)
            );
        }
        // Compression is a major datacenter tax for BigTable (Figure 5).
        let compression = breakdown.share(CpuCategory::from(DatacenterTax::Compression));
        assert!(compression > 0.02, "compression share {compression}");
    }

    #[test]
    fn missing_key_returns_without_panic() {
        let mut bt = tiny();
        for i in 0..50 {
            let (k, v) = kv(i);
            bt.put(k, v);
        }
        let exec = bt.get(b"absent-key");
        assert_eq!(exec.label, "get");
    }
}
