//! A Spanner-class replicated transactional store: a leader-led consensus
//! group replicating a write log across regions, with strong reads and
//! SQL-style scans.
//!
//! Matches the paper's characterization hooks: consensus appears both as
//! core compute (Figure 4's `Consensus` category) and as *remote work*
//! (Section 4.1: "consensus protocols for Spanner"), RPC is a heavy
//! datacenter tax (23% in Figure 5), and cross-region round trips dominate
//! remote-heavy queries.

use std::collections::BTreeMap;
use std::sync::Arc;

use hsdp_core::category::{CoreComputeOp, DatacenterTax, Platform, SystemTax};
use hsdp_core::request::RequestId;
use hsdp_rpc::latency::LatencyModel;
use hsdp_rpc::span::SpanKind;
use hsdp_rpc::tracer::Tracer;
use hsdp_simcore::time::{SimDuration, SimTime};
use hsdp_storage::cache::PolicyKind;
use hsdp_storage::tiered::TieredStore;
use hsdp_taxes::crc::crc32c;
use hsdp_taxes::protowire::{FieldDescriptor, FieldType, Message, MessageDescriptor, Value};
use hsdp_telemetry::MetricsRegistry;

use crate::costs;
use crate::exec::QueryExecution;
use crate::meter::WorkMeter;

/// Consensus-group configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannerConfig {
    /// Number of replicas (including the leader).
    pub replicas: usize,
    /// Votes needed to commit (majority by default).
    pub quorum: usize,
    /// Tier capacities of the leader's storage stack.
    pub tier_bytes: (u64, u64, u64),
}

impl Default for SpannerConfig {
    fn default() -> Self {
        SpannerConfig {
            replicas: 5,
            quorum: 3,
            tier_bytes: (8 << 20, 64 << 20, 1 << 40),
        }
    }
}

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Log position.
    pub index: u64,
    /// Affected key.
    pub key: Vec<u8>,
    /// CRC of the value (the log stores digests in this model).
    pub value_crc: u32,
}

/// The consensus-group simulator (leader's view).
#[derive(Debug)]
pub struct Spanner {
    config: SpannerConfig,
    clock: SimTime,
    tracer: Tracer,
    store: TieredStore,
    state: BTreeMap<Vec<u8>, Vec<u8>>,
    log: Vec<LogEntry>,
    net_region: LatencyModel,
    txn_desc: Arc<MessageDescriptor>,
    seed: u64,
    telemetry: MetricsRegistry,
    current_request: RequestId,
}

impl Spanner {
    /// A fresh group.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= quorum <= replicas`.
    #[must_use]
    pub fn new(config: SpannerConfig, seed: u64) -> Self {
        assert!(
            (1..=config.replicas).contains(&config.quorum),
            "quorum must be within the replica set"
        );
        let (ram, ssd, hdd) = config.tier_bytes;
        let txn_desc = Arc::new(
            MessageDescriptor::new(
                "TxnRequest",
                vec![
                    FieldDescriptor::required(1, "key", FieldType::Bytes),
                    FieldDescriptor::optional(2, "value", FieldType::Bytes),
                    FieldDescriptor::required(3, "timestamp", FieldType::Fixed64),
                ],
            )
            // audit: allow(panic, the schema literal above is statically valid)
            .expect("static schema is valid"),
        );
        Spanner {
            config,
            clock: SimTime::ZERO,
            tracer: Tracer::new(),
            store: TieredStore::new(ram, ssd, hdd, PolicyKind::Lru),
            state: BTreeMap::new(),
            log: Vec::new(),
            // Regional quorums: replicas in nearby zones, not continents.
            net_region: LatencyModel {
                base: hsdp_simcore::time::SimDuration::from_micros(250),
                bandwidth: 2e9,
                jitter_frac: 0.3,
            },
            txn_desc,
            seed,
            telemetry: MetricsRegistry::disabled(),
            current_request: RequestId::UNTAGGED,
        }
    }

    /// Sets the request identity stamped onto subsequent query executions
    /// (their spans, CPU work, and latency exemplars). The runner calls
    /// this before each traffic query; [`RequestId::UNTAGGED`] marks
    /// background work.
    pub fn set_request(&mut self, request: RequestId) {
        self.current_request = request;
    }

    /// Replaces the telemetry registry (pass [`MetricsRegistry::new`] to
    /// turn recording on; it is off by default).
    pub fn set_telemetry(&mut self, registry: MetricsRegistry) {
        self.telemetry = registry;
    }

    /// Takes the telemetry collected so far, leaving recording disabled.
    pub fn take_telemetry(&mut self) -> MetricsRegistry {
        std::mem::replace(&mut self.telemetry, MetricsRegistry::disabled())
    }

    /// Spans still open in the tracer — zero between queries; asserted at
    /// end-of-run by the fleet driver.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.tracer.open_count()
    }

    /// The committed log length.
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Number of live keys.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.state.len()
    }

    /// The simulated clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    fn charge_rpc(&self, meter: &mut WorkMeter, bytes: u64) {
        let mut meter = meter.scope("rpc");
        meter.charge_ops(DatacenterTax::Rpc, "rpc_dispatch", 1, costs::RPC_FIXED_NS);
        meter.charge_bytes(
            DatacenterTax::Rpc,
            "rpc_dispatch",
            bytes,
            costs::RPC_NS_PER_BYTE,
        );
        meter.charge_ops(
            SystemTax::Networking,
            "tcp_process",
            1,
            costs::NET_PROCESS_NS_PER_MSG,
        );
        meter.charge_ops(
            SystemTax::OperatingSystems,
            "sys_sendmsg",
            3,
            costs::SYSCALL_NS,
        );
        meter.charge_ops(
            SystemTax::Stl,
            "string_buffer_ops",
            3,
            costs::STL_NS_PER_MSG,
        );
        meter.charge_ops(
            SystemTax::Multithreading,
            "executor_handoff",
            2,
            costs::THREAD_HANDOFF_NS,
        );
        meter.charge_ops(
            DatacenterTax::MemAllocation,
            "malloc",
            costs::ALLOCS_PER_MESSAGE,
            costs::MALLOC_NS_PER_OP,
        );
        meter.charge_ops(
            DatacenterTax::Cryptography,
            "auth_check",
            1,
            costs::AUTH_CRYPTO_NS_PER_REQ,
        );
        meter.charge_ops(
            SystemTax::OtherMemoryOps,
            "page_ops",
            2,
            costs::OTHER_MEM_NS_PER_QUERY,
        );
    }

    fn encode_txn(&self, meter: &mut WorkMeter, key: &[u8], value: Option<&[u8]>) -> Vec<u8> {
        let mut meter = meter.scope("txn_encode");
        let mut msg = Message::new(Arc::clone(&self.txn_desc));
        msg.set(1, Value::Bytes(key.to_vec()))
            // audit: allow(panic, field ids match the static schema defined in new())
            .expect("schema field");
        if let Some(v) = value {
            // audit: allow(panic, field ids match the static schema defined in new())
            msg.set(2, Value::Bytes(v.to_vec())).expect("schema field");
        }
        msg.set(3, Value::Fixed64(self.clock.as_nanos()))
            // audit: allow(panic, field ids match the static schema defined in new())
            .expect("schema field");
        let bytes = msg.encode_to_vec();
        meter.charge_bytes(
            DatacenterTax::Protobuf,
            "proto_encode",
            bytes.len() as u64,
            costs::PROTO_ENCODE_NS_PER_BYTE,
        );
        meter.charge_ops(
            DatacenterTax::Protobuf,
            "proto_setup",
            1,
            costs::PROTO_PER_MESSAGE_NS,
        );
        meter.charge_ops(
            DatacenterTax::MemAllocation,
            "malloc",
            3,
            costs::MALLOC_NS_PER_OP,
        );
        meter.charge_bytes(
            DatacenterTax::DataMovement,
            "memcpy",
            bytes.len() as u64,
            costs::MEMCPY_NS_PER_BYTE,
        );
        bytes
    }

    /// The consensus round: replicate `bytes` to followers, wait for a
    /// quorum of acks. Returns the remote-work wait.
    fn consensus_round(&mut self, meter: &mut WorkMeter, bytes: u64, salt: u64) -> SimDuration {
        let mut meter = meter.scope("consensus");
        let followers = self.config.replicas - 1;
        let needed_acks = self.config.quorum - 1; // leader votes for itself
        let mut round_trips: Vec<SimDuration> = (0..followers)
            .map(|i| {
                self.net_region.round_trip(
                    bytes,
                    64,
                    self.seed ^ salt.wrapping_add(i as u64 * 7919),
                )
            })
            .collect();
        round_trips.sort_unstable();
        // CPU cost of forming/handling each replica message.
        meter.charge_ops(
            CoreComputeOp::Consensus,
            "paxos_propose",
            followers as u64,
            costs::CONSENSUS_NS_PER_MSG,
        );
        meter.charge_ops(
            DatacenterTax::Rpc,
            "rpc_replicate",
            followers as u64,
            costs::RPC_FIXED_NS,
        );
        meter.charge_bytes(
            DatacenterTax::Rpc,
            "rpc_replicate",
            bytes * followers as u64,
            costs::RPC_NS_PER_BYTE,
        );
        meter.charge_ops(
            SystemTax::Networking,
            "tcp_process",
            followers as u64 * 2,
            costs::NET_PROCESS_NS_PER_MSG,
        );
        meter.charge_ops(
            SystemTax::OperatingSystems,
            "sys_sendmsg",
            followers as u64 * 2,
            costs::SYSCALL_NS,
        );
        let wait = if needed_acks == 0 {
            SimDuration::ZERO
        } else {
            round_trips[needed_acks - 1]
        };
        self.telemetry
            .counter_add(("spanner", "consensus_rounds", ""), 1);
        self.telemetry.counter_add(
            ("spanner", "consensus_replicated_bytes", ""),
            bytes * followers as u64,
        );
        self.telemetry
            .record_duration(("spanner", "consensus_quorum_wait_ns", ""), wait);
        wait
    }

    /// Replicates one record through the group's consensus and applies it,
    /// charging CPU work into the caller's meter. Returns the quorum wait.
    ///
    /// This is the building block the two-phase-commit coordinator
    /// ([`crate::twopc`]) composes across groups; [`Spanner::commit`] is the
    /// single-group client-facing path.
    pub fn replicate_record(
        &mut self,
        meter: &mut WorkMeter,
        key: &[u8],
        value: Option<&[u8]>,
        salt: u64,
    ) -> SimDuration {
        let mut meter = meter.scope("replicate");
        let encoded = self.encode_txn(&mut meter, key, value);
        let crc = crc32c(&encoded);
        meter.charge_bytes(
            SystemTax::Edac,
            "crc32c",
            encoded.len() as u64,
            costs::CRC_NS_PER_BYTE,
        );
        let wait = self.consensus_round(&mut meter, encoded.len() as u64, salt);
        self.log.push(LogEntry {
            index: self.log.len() as u64 + 1,
            key: key.to_vec(),
            value_crc: crc,
        });
        meter.charge_ops(
            CoreComputeOp::Write,
            "apply_write",
            1,
            costs::BTREE_OP_NS * 2.0,
        );
        if let Some(v) = value {
            self.state.insert(key.to_vec(), v.to_vec());
        }
        wait
    }

    /// Reads a key's current value without simulation side effects (the
    /// verification hook for tests).
    #[must_use]
    pub fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.state.get(key).cloned()
    }

    /// Advances the group's clock to at least `at` (used by the 2PC
    /// coordinator to keep participant clocks coherent).
    pub fn advance_clock_to(&mut self, at: SimTime) {
        self.clock = self.clock.max(at);
    }

    /// Commits a write transaction.
    pub fn commit(&mut self, key: Vec<u8>, value: Vec<u8>) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let root = self.tracer.start(
            trace,
            None,
            "spanner.commit",
            SpanKind::Container,
            self.clock,
        );

        let (io, remote) = {
            let mut op = meter.scope("spanner.commit");
            let request_bytes = (key.len() + value.len() + 64) as u64;
            self.charge_rpc(&mut op, request_bytes);
            let encoded = self.encode_txn(&mut op, &key, Some(&value));
            let crc = crc32c(&encoded);
            {
                let mut integrity = op.scope("integrity");
                integrity.charge_bytes(
                    SystemTax::Edac,
                    "crc32c",
                    encoded.len() as u64,
                    costs::CRC_NS_PER_BYTE,
                );
                let _digest = hsdp_taxes::sha3::Sha3_256::digest(&encoded);
                integrity.charge_bytes(
                    DatacenterTax::Cryptography,
                    "txn_digest",
                    encoded.len() as u64,
                    costs::SHA3_NS_PER_BYTE,
                );
            }

            // Replicate through consensus.
            let remote = self.consensus_round(&mut op, encoded.len() as u64, trace.0);

            // Apply to the state machine and persist.
            self.log.push(LogEntry {
                index: self.log.len() as u64 + 1,
                key: key.clone(),
                value_crc: crc,
            });
            let io = {
                let mut apply = op.scope("apply");
                apply.charge_ops(
                    CoreComputeOp::Write,
                    "apply_write",
                    1,
                    costs::BTREE_OP_NS * 2.0,
                );
                apply.charge_ops(
                    SystemTax::Stl,
                    "btreemap_insert",
                    1,
                    costs::STL_NS_PER_ENTRY,
                );
                let storage_key = Self::key_hash(&key);
                let io = self
                    .store
                    .write_fast(storage_key, (key.len() + value.len()) as u64);
                apply.charge_ops(
                    SystemTax::FileSystems,
                    "log_append",
                    1,
                    costs::FS_CLIENT_NS_PER_OP,
                );
                apply.charge_ops(
                    SystemTax::OperatingSystems,
                    "sys_write",
                    1,
                    costs::SYSCALL_NS,
                );
                io
            };
            self.state.insert(key, value);

            self.charge_rpc(&mut op, 64);
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            (io, remote)
        };

        self.finish_query(trace, root, meter, io, remote, "commit")
    }

    /// A strong (leader-lease) point read.
    pub fn read(&mut self, key: &[u8]) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let root = self
            .tracer
            .start(trace, None, "spanner.read", SpanKind::Container, self.clock);

        let io = {
            let mut op = meter.scope("spanner.read");
            let request_bytes = (key.len() + 48) as u64;
            self.charge_rpc(&mut op, request_bytes);
            op.charge_bytes(
                DatacenterTax::Protobuf,
                "proto_decode",
                request_bytes,
                costs::PROTO_DECODE_NS_PER_BYTE,
            );
            // Lease validation: cheap consensus bookkeeping, no round trip.
            op.charge_ops(
                CoreComputeOp::Consensus,
                "lease_check",
                1,
                costs::CONSENSUS_NS_PER_MSG / 4.0,
            );

            // Session management, SQL binding, and row assembly: the read
            // path is far more than one tree lookup in a SQL database.
            let io = {
                let mut read_path = op.scope("read_path");
                read_path.charge_ops(CoreComputeOp::Query, "session_and_bind", 1, 20_000.0);
                read_path.charge_ops(CoreComputeOp::Read, "row_deserialize", 1, 8_000.0);
                read_path.charge_ops(
                    CoreComputeOp::Read,
                    "btree_lookup",
                    1,
                    costs::BTREE_OP_NS * 2.0,
                );
                read_path.charge_ops(SystemTax::Stl, "btreemap_get", 1, costs::STL_NS_PER_ENTRY);
                let value_len = self.state.get(key).map_or(0, Vec::len) as u64;
                // Touch storage (cache-hit most of the time for hot keys).
                let io = self
                    .store
                    .read(Self::key_hash(key), value_len.max(64))
                    .latency;
                read_path.charge_ops(
                    SystemTax::FileSystems,
                    "dfs_read",
                    1,
                    costs::FS_CLIENT_NS_PER_OP,
                );
                read_path.charge_ops(
                    SystemTax::OperatingSystems,
                    "sys_read",
                    1,
                    costs::SYSCALL_NS,
                );
                io
            };

            let value_len = self.state.get(key).map_or(0, Vec::len) as u64;
            let response_bytes = value_len + 48;
            {
                let mut response = op.scope("response_encode");
                response.charge_bytes(
                    DatacenterTax::Protobuf,
                    "proto_encode",
                    response_bytes,
                    costs::PROTO_ENCODE_NS_PER_BYTE,
                );
                response.charge_ops(
                    DatacenterTax::MemAllocation,
                    "malloc",
                    2,
                    costs::MALLOC_NS_PER_OP,
                );
                response.charge_bytes(
                    DatacenterTax::DataMovement,
                    "memcpy",
                    response_bytes,
                    costs::MEMCPY_NS_PER_BYTE,
                );
            }
            self.charge_rpc(&mut op, response_bytes);
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            io
        };

        self.finish_query(trace, root, meter, io, SimDuration::ZERO, "read")
    }

    /// A SQL-style scan: filter up to `limit` rows whose value length
    /// exceeds `min_len` starting at `start_key`.
    pub fn query(&mut self, start_key: &[u8], limit: usize, min_len: usize) -> QueryExecution {
        let mut meter = WorkMeter::new();
        let trace = self.tracer.new_trace();
        let root = self.tracer.start(
            trace,
            None,
            "spanner.query",
            SpanKind::Container,
            self.clock,
        );

        let io = {
            let mut op = meter.scope("spanner.query");
            self.charge_rpc(&mut op, 128);

            let mut scanned = 0u64;
            let mut matched: u64 = 0;
            let mut response_bytes = 64u64;
            for (k, v) in self.state.range(start_key.to_vec()..) {
                scanned += 1;
                if v.len() >= min_len {
                    matched += 1;
                    response_bytes += (k.len() + v.len()) as u64;
                }
                if matched as usize >= limit || scanned >= (limit as u64) * 20 {
                    break;
                }
            }
            {
                let mut scan = op.scope("sql_scan");
                scan.charge_ops(
                    CoreComputeOp::Query,
                    "sql_predicate_eval",
                    scanned,
                    costs::QUERY_EVAL_NS_PER_ROW,
                );
                scan.charge_ops(
                    CoreComputeOp::Read,
                    "row_fetch",
                    matched,
                    costs::BTREE_OP_NS,
                );
                scan.charge_ops(
                    SystemTax::Stl,
                    "range_iter",
                    scanned,
                    costs::STL_NS_PER_ENTRY,
                );
                scan.charge_ops(CoreComputeOp::MiscCore, "plan_and_bind", 1, 8_000.0);
            }

            // Matched rows may hit storage for cold values.
            let io = self
                .store
                .read(Self::key_hash(start_key) ^ 0x51ca, response_bytes.max(256))
                .latency;
            op.charge_ops(
                SystemTax::FileSystems,
                "dfs_read",
                1,
                costs::FS_CLIENT_NS_PER_OP,
            );

            {
                let mut response = op.scope("response_encode");
                response.charge_bytes(
                    DatacenterTax::Protobuf,
                    "proto_encode",
                    response_bytes,
                    costs::PROTO_ENCODE_NS_PER_BYTE,
                );
                response.charge_bytes(
                    DatacenterTax::Compression,
                    "response_compress",
                    response_bytes,
                    costs::COMPRESS_NS_PER_BYTE,
                );
            }
            self.charge_rpc(&mut op, response_bytes);
            op.charge_ops(
                SystemTax::MiscSystem,
                "misc",
                1,
                costs::MISC_SYSTEM_NS_PER_QUERY,
            );
            io
        };

        self.finish_query(trace, root, meter, io, SimDuration::ZERO, "query")
    }

    /// A read-modify-write transaction: strong read + conditional commit.
    pub fn read_modify_write(&mut self, key: Vec<u8>, new_value: Vec<u8>) -> QueryExecution {
        // Compose from the primitives, merging the execution records.
        let read_exec = self.read(&key);
        let commit_exec = self.commit(key, new_value);
        let mut spans = read_exec.spans;
        spans.extend(commit_exec.spans);
        let mut cpu_work = read_exec.cpu_work;
        cpu_work.extend(commit_exec.cpu_work);
        QueryExecution {
            platform: Platform::Spanner,
            label: "read-modify-write",
            spans,
            cpu_work,
            request: self.current_request,
        }
    }

    fn key_hash(key: &[u8]) -> u64 {
        key.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        })
    }

    fn finish_query(
        &mut self,
        trace: hsdp_rpc::span::TraceId,
        root: hsdp_rpc::tracer::OpenSpan,
        mut meter: WorkMeter,
        io_time: SimDuration,
        remote_time: SimDuration,
        label: &'static str,
    ) -> QueryExecution {
        let started = self.clock;
        let cpu_span = self
            .tracer
            .start(trace, Some(root.id()), "cpu", SpanKind::Cpu, self.clock);
        self.clock += meter.total();
        self.tracer.finish(cpu_span, self.clock);
        if !remote_time.is_zero() {
            let remote_span = self.tracer.start(
                trace,
                Some(root.id()),
                "consensus_wait",
                SpanKind::RemoteWork,
                self.clock,
            );
            self.clock += remote_time;
            self.tracer.finish(remote_span, self.clock);
        }
        if !io_time.is_zero() {
            let io_span = self.tracer.start(
                trace,
                Some(root.id()),
                "storage_io",
                SpanKind::Io,
                self.clock,
            );
            self.clock += io_time;
            self.tracer.finish(io_span, self.clock);
        }
        self.tracer.finish(root, self.clock);
        self.telemetry.counter_add(("spanner", "queries", label), 1);
        self.telemetry.record_duration_tagged(
            ("spanner", "query_latency_ns", label),
            self.clock.since(started),
            self.current_request,
        );
        self.telemetry
            .gauge_max(("spanner", "log_len_peak", ""), self.log.len() as u64);
        crate::meter::record_cpu_items(&mut self.telemetry, meter.items());
        let spans: Vec<_> = self
            .tracer
            .take_spans()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        let mut exec = QueryExecution {
            platform: Platform::Spanner,
            label,
            spans,
            cpu_work: meter.take(),
            request: RequestId::UNTAGGED,
        };
        exec.stamp_request(self.current_request);
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_core::category::CpuCategory;

    fn db() -> Spanner {
        Spanner::new(SpannerConfig::default(), 7)
    }

    #[test]
    fn commit_replicates_and_waits_on_quorum() {
        let mut s = db();
        let exec = s.commit(b"k1".to_vec(), b"v1".to_vec());
        let d = exec.decomposition();
        // Regional quorum wait: hundreds of microseconds of remote work.
        assert!(d.remote.as_secs_f64() > 2e-4, "remote {}", d.remote);
        assert_eq!(s.log_len(), 1);
        assert_eq!(s.key_count(), 1);
        // Consensus CPU was charged.
        let b = crate::meter::items_breakdown(&exec.cpu_work);
        assert!(b.share(CpuCategory::from(CoreComputeOp::Consensus)) > 0.0);
    }

    #[test]
    fn read_after_commit_is_fast_and_local() {
        let mut s = db();
        s.commit(b"k1".to_vec(), b"hello".to_vec());
        let exec = s.read(b"k1");
        let d = exec.decomposition();
        assert!(
            d.remote.as_secs_f64() < 1e-4,
            "strong leader reads avoid quorum waits"
        );
        assert!(!d.cpu.is_zero());
    }

    #[test]
    fn query_scans_and_filters() {
        let mut s = db();
        for i in 0..50 {
            let v = if i % 2 == 0 {
                vec![b'x'; 100]
            } else {
                vec![b'y'; 10]
            };
            s.commit(format!("row-{i:04}").into_bytes(), v);
        }
        let exec = s.query(b"row-", 10, 50);
        assert_eq!(exec.label, "query");
        let b = crate::meter::items_breakdown(&exec.cpu_work);
        assert!(b.share(CpuCategory::from(CoreComputeOp::Query)) > 0.0);
    }

    #[test]
    fn rmw_composes_read_and_commit() {
        let mut s = db();
        s.commit(b"ctr".to_vec(), b"1".to_vec());
        let exec = s.read_modify_write(b"ctr".to_vec(), b"2".to_vec());
        assert_eq!(exec.label, "read-modify-write");
        let d = exec.decomposition();
        assert!(
            d.remote.as_secs_f64() > 2e-4,
            "the commit leg pays consensus"
        );
        assert_eq!(s.log_len(), 2);
    }

    #[test]
    fn quorum_wait_uses_kth_fastest_replica() {
        // With quorum 2 of 5, the wait is the fastest follower; quorum 5
        // waits for the slowest. Larger quorums never wait less.
        let mut fast = Spanner::new(
            SpannerConfig {
                quorum: 2,
                ..SpannerConfig::default()
            },
            7,
        );
        let mut slow = Spanner::new(
            SpannerConfig {
                quorum: 5,
                ..SpannerConfig::default()
            },
            7,
        );
        let f = fast
            .commit(b"k".to_vec(), b"v".to_vec())
            .decomposition()
            .remote;
        let s = slow
            .commit(b"k".to_vec(), b"v".to_vec())
            .decomposition()
            .remote;
        assert!(s >= f, "quorum-5 wait {s} >= quorum-2 wait {f}");
    }

    #[test]
    #[should_panic(expected = "quorum must be within")]
    fn invalid_quorum_panics() {
        let _ = Spanner::new(
            SpannerConfig {
                replicas: 3,
                quorum: 4,
                ..SpannerConfig::default()
            },
            1,
        );
    }
}
