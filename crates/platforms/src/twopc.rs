//! Two-phase commit across consensus groups — Spanner's distributed
//! transactions.
//!
//! A multi-group transaction prepares on every participant (one consensus
//! round each, in parallel), then commits (a second round). The coordinator
//! waits for the *slowest* participant in each phase, which is exactly the
//! remote-work pattern that makes distributed writes the paper's
//! remote-heavy query class.

use hsdp_core::category::{CoreComputeOp, DatacenterTax, Platform, SystemTax};
use hsdp_core::request::RequestId;
use hsdp_rpc::span::{Span, SpanId, SpanKind, TraceId};
use hsdp_simcore::time::{SimDuration, SimTime};

use crate::costs;
use crate::exec::QueryExecution;
use crate::meter::WorkMeter;
use crate::spanner::Spanner;

/// One write of a distributed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnWrite {
    /// Index of the participant group.
    pub group: usize,
    /// Key to write.
    pub key: Vec<u8>,
    /// Value to write.
    pub value: Vec<u8>,
}

/// Executes a two-phase commit across `groups`.
///
/// Phase 1 replicates a prepare record in every participant group; phase 2
/// replicates the commit record and applies the writes. Each phase's
/// remote-work wait is the slowest participant's quorum wait (the phases
/// fan out in parallel).
///
/// # Panics
///
/// Panics if `writes` is empty or references a group out of range.
pub fn distributed_commit(
    groups: &mut [&mut Spanner],
    writes: &[TxnWrite],
    txn_id: u64,
) -> QueryExecution {
    assert!(!writes.is_empty(), "a transaction needs at least one write");
    let mut participants: Vec<usize> = writes.iter().map(|w| w.group).collect();
    participants.sort_unstable();
    participants.dedup();
    assert!(
        participants.iter().all(|&g| g < groups.len()),
        "write references an unknown group"
    );

    let mut meter = WorkMeter::new();
    let (prepare_wait, commit_wait, start) = {
        let mut op = meter.scope("spanner.2pc");
        {
            let mut coord = op.scope("coordinator");
            // Coordinator bookkeeping: transaction record, participant
            // tracking.
            coord.charge_ops(
                CoreComputeOp::Consensus,
                "txn_coordinator",
                participants.len() as u64,
                costs::CONSENSUS_NS_PER_MSG,
            );
            coord.charge_ops(
                DatacenterTax::Rpc,
                "rpc_dispatch",
                participants.len() as u64 * 2,
                costs::RPC_FIXED_NS,
            );
            coord.charge_ops(
                SystemTax::OperatingSystems,
                "sys_sendmsg",
                participants.len() as u64 * 2,
                costs::SYSCALL_NS,
            );
            coord.charge_ops(
                SystemTax::Multithreading,
                "fanout_tasks",
                participants.len() as u64,
                costs::THREAD_HANDOFF_NS,
            );
        }

        // Keep participant clocks coherent with the coordinator's view.
        let start = groups
            .iter()
            .map(|g| g.now())
            .fold(SimTime::ZERO, SimTime::max);
        for group in groups.iter_mut() {
            group.advance_clock_to(start);
        }

        // Phase 1: prepare everywhere; wait for the slowest group.
        let mut prepare_wait = SimDuration::ZERO;
        {
            let mut prepare = op.scope("prepare");
            for &g in &participants {
                let wait = groups[g].replicate_record(
                    &mut prepare,
                    format!("txn:{txn_id}:prepare").as_bytes(),
                    None,
                    txn_id ^ (g as u64) << 8,
                );
                prepare_wait = prepare_wait.max(wait);
            }
        }

        // Phase 2: commit records carry the actual writes.
        let mut commit_wait = SimDuration::ZERO;
        {
            let mut commit = op.scope("commit");
            for write in writes {
                let wait = groups[write.group].replicate_record(
                    &mut commit,
                    &write.key,
                    Some(&write.value),
                    txn_id ^ 0xC0 ^ (write.group as u64) << 8,
                );
                commit_wait = commit_wait.max(wait);
            }
        }
        (prepare_wait, commit_wait, start)
    };

    // Assemble the coordinator's trace.
    let trace = TraceId(u64::MAX ^ txn_id);
    let cpu_end = start + meter.total();
    let prepare_end = cpu_end + prepare_wait;
    let commit_end = prepare_end + commit_wait;
    let spans = vec![
        Span {
            trace,
            id: SpanId(1),
            parent: None,
            name: "spanner.2pc".to_owned(),
            kind: SpanKind::Container,
            start,
            end: commit_end,
            request: RequestId::UNTAGGED,
        },
        Span {
            trace,
            id: SpanId(2),
            parent: Some(SpanId(1)),
            name: "cpu".to_owned(),
            kind: SpanKind::Cpu,
            start,
            end: cpu_end,
            request: RequestId::UNTAGGED,
        },
        Span {
            trace,
            id: SpanId(3),
            parent: Some(SpanId(1)),
            name: "prepare_quorums".to_owned(),
            kind: SpanKind::RemoteWork,
            start: cpu_end,
            end: prepare_end,
            request: RequestId::UNTAGGED,
        },
        Span {
            trace,
            id: SpanId(4),
            parent: Some(SpanId(1)),
            name: "commit_quorums".to_owned(),
            kind: SpanKind::RemoteWork,
            start: prepare_end,
            end: commit_end,
            request: RequestId::UNTAGGED,
        },
    ];
    for group in groups.iter_mut() {
        group.advance_clock_to(commit_end);
    }

    QueryExecution {
        platform: Platform::Spanner,
        label: "2pc-commit",
        spans,
        cpu_work: meter.take(),
        request: RequestId::UNTAGGED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spanner::SpannerConfig;

    fn groups(n: usize) -> Vec<Spanner> {
        (0..n)
            .map(|i| Spanner::new(SpannerConfig::default(), 100 + i as u64))
            .collect()
    }

    #[test]
    fn writes_land_in_every_group() {
        let mut gs = groups(3);
        let mut refs: Vec<&mut Spanner> = gs.iter_mut().collect();
        let writes = vec![
            TxnWrite {
                group: 0,
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            },
            TxnWrite {
                group: 2,
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            },
        ];
        let exec = distributed_commit(&mut refs, &writes, 7);
        assert_eq!(exec.label, "2pc-commit");
        assert_eq!(gs[0].lookup(b"a"), Some(b"1".to_vec()));
        assert_eq!(gs[2].lookup(b"b"), Some(b"2".to_vec()));
        assert_eq!(gs[1].lookup(b"a"), None, "uninvolved group untouched");
        // Both phases appear in the log of each participant.
        assert_eq!(gs[0].log_len(), 2, "prepare + commit records");
    }

    #[test]
    fn two_pc_pays_two_quorum_rounds() {
        let mut single = Spanner::new(SpannerConfig::default(), 5);
        let single_remote = single
            .commit(b"k".to_vec(), b"v".to_vec())
            .decomposition()
            .remote;

        let mut gs = groups(2);
        let mut refs: Vec<&mut Spanner> = gs.iter_mut().collect();
        let writes = vec![
            TxnWrite {
                group: 0,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            TxnWrite {
                group: 1,
                key: b"k2".to_vec(),
                value: b"v".to_vec(),
            },
        ];
        let exec = distributed_commit(&mut refs, &writes, 9);
        let d = exec.decomposition();
        // Two serialized phases, each waiting on the slowest group: clearly
        // more remote work than a single-group commit.
        assert!(
            d.remote.as_nanos() > single_remote.as_nanos() * 3 / 2,
            "2pc {} vs single {}",
            d.remote,
            single_remote
        );
        assert_eq!(d.remote_share() + d.cpu_share() + d.io_share(), 1.0);
    }

    #[test]
    fn classified_remote_heavy() {
        let mut gs = groups(2);
        let mut refs: Vec<&mut Spanner> = gs.iter_mut().collect();
        let writes = vec![TxnWrite {
            group: 1,
            key: b"x".to_vec(),
            value: b"y".to_vec(),
        }];
        let exec = distributed_commit(&mut refs, &writes, 11);
        let d = exec.decomposition();
        assert!(
            d.remote_share() > 0.3,
            "2pc is remote-work heavy: {}",
            d.remote_share()
        );
    }

    #[test]
    #[should_panic(expected = "at least one write")]
    fn empty_transaction_panics() {
        let mut gs = groups(1);
        let mut refs: Vec<&mut Spanner> = gs.iter_mut().collect();
        let _ = distributed_commit(&mut refs, &[], 1);
    }

    #[test]
    #[should_panic(expected = "unknown group")]
    fn out_of_range_group_panics() {
        let mut gs = groups(1);
        let mut refs: Vec<&mut Spanner> = gs.iter_mut().collect();
        let writes = vec![TxnWrite {
            group: 5,
            key: b"x".to_vec(),
            value: b"y".to_vec(),
        }];
        let _ = distributed_commit(&mut refs, &writes, 1);
    }
}
