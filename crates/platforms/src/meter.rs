//! CPU work metering: how the simulated platforms charge labeled CPU time.
//!
//! Platforms execute *real* code (protobuf encoding, compression, LSM
//! merges, hash joins) but run under a simulated clock. The [`WorkMeter`]
//! bridges the two: every unit of work is charged simulated time from the
//! calibrated cost model ([`crate::costs`]) and labeled with the fine
//! [`CpuCategory`] and a leaf-function name, exactly the shape GWP samples
//! arrive in (Section 5.1).

use hsdp_core::category::CpuCategory;
use hsdp_core::component::CpuBreakdown;
use hsdp_core::request::RequestId;
use hsdp_core::stack::{empty_path, FramePath};
use hsdp_core::units::Seconds;
use hsdp_simcore::time::SimDuration;
use hsdp_telemetry::{category_key, MetricsRegistry};

/// One labeled unit of CPU work.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuWorkItem {
    /// Fine-grained cycle category.
    pub category: CpuCategory,
    /// Leaf function name, as a GWP sample would report it.
    pub leaf: &'static str,
    /// Enclosing call-frame path (outermost first), excluding the leaf.
    pub stack: FramePath,
    /// Simulated CPU time charged.
    pub time: SimDuration,
    /// The traffic request this work serves ([`RequestId::UNTAGGED`] for
    /// background work; stamped by the platform at query finish).
    pub request: RequestId,
}

/// Accumulates labeled CPU work during query execution.
///
/// Besides the flat item list, the meter maintains a *frame stack*: scopes
/// pushed via [`WorkMeter::scope`] (or [`WorkMeter::push_frame`]) tag every
/// subsequent charge with the enclosing frame path, so each
/// [`CpuWorkItem`] carries the full stack a GWP interrupt would see. Each
/// push snapshots the path into an `Arc` once; charges then clone the
/// `Arc`, keeping the per-charge cost constant regardless of depth.
#[derive(Debug, Default)]
pub struct WorkMeter {
    items: Vec<CpuWorkItem>,
    frames: Vec<&'static str>,
    /// `paths[d]` is the shared snapshot of `frames[..=d]`, so popping is a
    /// truncation and the current path is always `paths.last()`.
    paths: Vec<FramePath>,
}

impl WorkMeter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The call-frame path charges are currently attributed to.
    #[must_use]
    pub fn current_path(&self) -> FramePath {
        self.paths.last().cloned().unwrap_or_else(empty_path)
    }

    /// The current frame stack, outermost first.
    #[must_use]
    pub fn frames(&self) -> &[&'static str] {
        &self.frames
    }

    /// Pushes a call frame; prefer the RAII [`WorkMeter::scope`] guard.
    pub fn push_frame(&mut self, name: &'static str) {
        self.frames.push(name);
        self.paths.push(FramePath::from(self.frames.as_slice()));
    }

    /// Pops the innermost call frame (no-op when the stack is empty).
    pub fn pop_frame(&mut self) {
        self.frames.pop();
        self.paths.pop();
    }

    /// Enters a named call frame for the guard's lifetime. The guard derefs
    /// to the meter, so charging through it attributes work to the frame:
    ///
    /// ```
    /// # use hsdp_platforms::meter::WorkMeter;
    /// # use hsdp_core::category::CoreComputeOp;
    /// # use hsdp_simcore::time::SimDuration;
    /// let mut meter = WorkMeter::new();
    /// {
    ///     let mut m = meter.scope("consensus");
    ///     m.charge(CoreComputeOp::Write, "paxos_propose", SimDuration::from_nanos(5));
    /// }
    /// assert_eq!(&*meter.items()[0].stack, &["consensus"]);
    /// assert!(meter.frames().is_empty());
    /// ```
    pub fn scope(&mut self, name: &'static str) -> FrameScope<'_> {
        self.push_frame(name);
        FrameScope { meter: self }
    }

    /// Charges `time` of CPU work.
    pub fn charge(
        &mut self,
        category: impl Into<CpuCategory>,
        leaf: &'static str,
        time: SimDuration,
    ) {
        if time.is_zero() {
            return;
        }
        self.items.push(CpuWorkItem {
            category: category.into(),
            leaf,
            stack: self.current_path(),
            time,
            request: RequestId::UNTAGGED,
        });
    }

    /// Charges byte-proportional work (`bytes * ns_per_byte`).
    pub fn charge_bytes(
        &mut self,
        category: impl Into<CpuCategory>,
        leaf: &'static str,
        bytes: u64,
        ns_per_byte: f64,
    ) {
        self.charge(
            category,
            leaf,
            // audit: allow(cast, u64 byte count to f64 for per-byte costing is exact below 2^53)
            SimDuration::from_nanos((bytes as f64 * ns_per_byte).round() as u64),
        );
    }

    /// Charges per-operation work (`ops * ns_per_op`).
    pub fn charge_ops(
        &mut self,
        category: impl Into<CpuCategory>,
        leaf: &'static str,
        ops: u64,
        ns_per_op: f64,
    ) {
        self.charge(
            category,
            leaf,
            SimDuration::from_nanos((ops as f64 * ns_per_op).round() as u64),
        );
    }

    /// Total CPU time charged.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.items.iter().map(|i| i.time).sum()
    }

    /// The items charged so far.
    #[must_use]
    pub fn items(&self) -> &[CpuWorkItem] {
        &self.items
    }

    /// Drains the items, leaving the meter empty.
    pub fn take(&mut self) -> Vec<CpuWorkItem> {
        std::mem::take(&mut self.items)
    }

    /// Appends pre-metered items (from a pool job's private meter) as-is,
    /// keeping the stacks they were charged under.
    pub fn extend(&mut self, items: Vec<CpuWorkItem>) {
        self.items.extend(items);
    }

    /// Rolls the charged work up into a model-ready [`CpuBreakdown`].
    #[must_use]
    pub fn breakdown(&self) -> CpuBreakdown {
        self.items
            .iter()
            .map(|i| (i.category, Seconds::new(i.time.as_secs_f64())))
            .collect()
    }
}

/// RAII guard for a meter call frame: created by [`WorkMeter::scope`],
/// pops the frame on drop. Derefs (mutably) to the underlying meter, so
/// scopes nest naturally — calling `.scope(..)` on a guard pushes a child
/// frame onto the same meter.
#[derive(Debug)]
pub struct FrameScope<'a> {
    meter: &'a mut WorkMeter,
}

impl std::ops::Deref for FrameScope<'_> {
    type Target = WorkMeter;

    fn deref(&self) -> &WorkMeter {
        self.meter
    }
}

impl std::ops::DerefMut for FrameScope<'_> {
    fn deref_mut(&mut self) -> &mut WorkMeter {
        self.meter
    }
}

impl Drop for FrameScope<'_> {
    fn drop(&mut self) {
        self.meter.pop_frame();
    }
}

/// Mirrors charged CPU work into telemetry counters, one nanosecond counter
/// per `("cpu", category, leaf)` key, so the registry's `"cpu"` subsystem
/// sum equals the meter total *exactly* — the invariant the telemetry unit
/// tests pin.
pub fn record_cpu_items(registry: &mut MetricsRegistry, items: &[CpuWorkItem]) {
    if !registry.is_enabled() {
        return;
    }
    for item in items {
        registry.counter_add(
            ("cpu", category_key(item.category), item.leaf),
            item.time.as_nanos(),
        );
    }
}

/// Converts a list of work items into a breakdown (for drained items).
#[must_use]
pub fn items_breakdown(items: &[CpuWorkItem]) -> CpuBreakdown {
    items
        .iter()
        .map(|i| (i.category, Seconds::new(i.time.as_secs_f64())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_core::category::{CoreComputeOp, DatacenterTax};

    #[test]
    fn charge_accumulates_and_labels() {
        let mut meter = WorkMeter::new();
        meter.charge(
            CoreComputeOp::Read,
            "btree_lookup",
            SimDuration::from_micros(2),
        );
        meter.charge_bytes(DatacenterTax::Protobuf, "proto_encode", 1000, 2.0);
        meter.charge_ops(DatacenterTax::MemAllocation, "arena_alloc", 10, 50.0);
        assert_eq!(meter.items().len(), 3);
        assert_eq!(meter.total().as_nanos(), 2_000 + 2_000 + 500);
        let b = meter.breakdown();
        assert!(b.share(CpuCategory::from(CoreComputeOp::Read)) > 0.4);
    }

    #[test]
    fn zero_charges_are_dropped() {
        let mut meter = WorkMeter::new();
        meter.charge(CoreComputeOp::Read, "noop", SimDuration::ZERO);
        meter.charge_bytes(CoreComputeOp::Read, "noop", 0, 5.0);
        assert!(meter.items().is_empty());
        assert_eq!(meter.total(), SimDuration::ZERO);
    }

    #[test]
    fn telemetry_cpu_total_equals_meter_total() {
        let mut meter = WorkMeter::new();
        meter.charge(
            CoreComputeOp::Read,
            "btree_lookup",
            SimDuration::from_nanos(1_234),
        );
        meter.charge_bytes(DatacenterTax::Protobuf, "proto_encode", 777, 1.5);
        meter.charge_ops(DatacenterTax::MemAllocation, "malloc", 9, 51.0);
        let mut registry = MetricsRegistry::new();
        record_cpu_items(&mut registry, meter.items());
        assert_eq!(
            registry.counter_subsystem_sum("cpu"),
            meter.total().as_nanos(),
            "telemetry cpu counters must mirror the meter exactly"
        );
        // Per-leaf counters carry the category key.
        assert_eq!(
            registry.counter(("cpu", "core.read", "btree_lookup")),
            1_234
        );
    }

    #[test]
    fn record_cpu_items_respects_disabled_registry() {
        let mut meter = WorkMeter::new();
        meter.charge(CoreComputeOp::Write, "put", SimDuration::from_nanos(10));
        let mut registry = MetricsRegistry::disabled();
        record_cpu_items(&mut registry, meter.items());
        assert_eq!(registry.counter_subsystem_sum("cpu"), 0);
    }

    #[test]
    fn scopes_tag_charges_with_frame_paths() {
        let mut meter = WorkMeter::new();
        meter.charge(CoreComputeOp::Read, "outside", SimDuration::from_nanos(1));
        {
            let mut op = meter.scope("spanner.commit");
            op.charge(
                CoreComputeOp::Write,
                "apply_write",
                SimDuration::from_nanos(2),
            );
            {
                let mut consensus = op.scope("consensus");
                consensus.charge(
                    DatacenterTax::Rpc,
                    "paxos_propose",
                    SimDuration::from_nanos(3),
                );
            }
            op.charge(
                CoreComputeOp::Write,
                "log_append",
                SimDuration::from_nanos(4),
            );
        }
        let stacks: Vec<Vec<&str>> = meter.items().iter().map(|i| i.stack.to_vec()).collect();
        assert_eq!(
            stacks,
            vec![
                vec![],
                vec!["spanner.commit"],
                vec!["spanner.commit", "consensus"],
                vec!["spanner.commit"],
            ]
        );
        assert!(meter.frames().is_empty(), "all scopes popped on drop");
    }

    #[test]
    fn sibling_scopes_share_parent_path_storage() {
        let mut meter = WorkMeter::new();
        let mut op = meter.scope("op");
        op.charge(CoreComputeOp::Read, "a", SimDuration::from_nanos(1));
        {
            let mut inner = op.scope("stage");
            inner.charge(CoreComputeOp::Read, "b", SimDuration::from_nanos(1));
        }
        op.charge(CoreComputeOp::Read, "c", SimDuration::from_nanos(1));
        drop(op);
        // Charges at the same depth reuse the same Arc snapshot.
        let items = meter.items();
        assert!(std::sync::Arc::ptr_eq(&items[0].stack, &items[2].stack));
        assert_eq!(&*items[1].stack, &["op", "stage"]);
    }

    #[test]
    fn pop_on_empty_stack_is_safe() {
        let mut meter = WorkMeter::new();
        meter.pop_frame();
        meter.charge(CoreComputeOp::Read, "x", SimDuration::from_nanos(1));
        assert!(meter.items()[0].stack.is_empty());
    }

    #[test]
    fn take_drains() {
        let mut meter = WorkMeter::new();
        meter.charge(CoreComputeOp::Write, "put", SimDuration::from_nanos(10));
        let items = meter.take();
        assert_eq!(items.len(), 1);
        assert!(meter.items().is_empty());
        assert_eq!(items_breakdown(&items).total().as_secs(), 1e-8);
    }
}
