//! # hsdp-accelsim
//!
//! The executable side of the sea-of-accelerators study (Section 6.3–6.4):
//!
//! - [`pipeline`] — a real multi-threaded chained pipeline (stages on
//!   worker threads connected by FIFOs), the software analogue of chained
//!   accelerators.
//! - [`modeled`] — an event-level simulator of synchronous / asynchronous /
//!   chained accelerator execution, cross-checking the closed-form
//!   Equations 5–12.
//! - [`validate`] — the Table 8 experiment: replaying the paper's RTL
//!   measurements through the model, and measuring our own
//!   protobuf-serialize → SHA3 pipeline against the model's estimate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod modeled;
pub mod pipeline;
pub mod validate;

pub use modeled::{
    analytic_chained, simulate_asynchronous, simulate_chained, simulate_synchronous, StageSpec,
};
pub use pipeline::{run_chained, run_sequential, FnStage, PipelineRun, PipelineStage};
pub use validate::{paper_replay, software_validation, PaperReplay, SoftwareValidation};
