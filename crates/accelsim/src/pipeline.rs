//! A real multi-threaded chained pipeline: stages connected by FIFOs, each
//! on its own worker thread — the software analogue of the paper's chained
//! accelerators streaming results to one another without core coordination
//! (Section 6.3).

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// One pipeline stage: transforms byte payloads.
pub trait PipelineStage: Send {
    /// The stage's display name.
    fn name(&self) -> &'static str;

    /// Processes one item.
    fn process(&mut self, item: Vec<u8>) -> Vec<u8>;
}

/// A closure-backed stage.
pub struct FnStage<F> {
    name: &'static str,
    f: F,
}

impl<F> std::fmt::Debug for FnStage<F> {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt.debug_struct("FnStage")
            .field("name", &self.name)
            .finish()
    }
}

impl<F: FnMut(Vec<u8>) -> Vec<u8> + Send> FnStage<F> {
    /// Wraps a closure as a stage.
    pub fn new(name: &'static str, f: F) -> Self {
        FnStage { name, f }
    }
}

impl<F: FnMut(Vec<u8>) -> Vec<u8> + Send> PipelineStage for FnStage<F> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process(&mut self, item: Vec<u8>) -> Vec<u8> {
        (self.f)(item)
    }
}

/// The result of running a pipeline over a batch of items.
#[derive(Debug)]
pub struct PipelineRun {
    /// Final outputs, in input order.
    pub outputs: Vec<Vec<u8>>,
    /// Total wall-clock time.
    pub wall: Duration,
}

/// Runs items through the stages sequentially on the calling thread — the
/// unchained, core-coordinated baseline.
pub fn run_sequential(stages: Vec<Box<dyn PipelineStage>>, inputs: Vec<Vec<u8>>) -> PipelineRun {
    let mut stages = stages;
    // audit: allow(determinism, hardware-validation experiment: measures real host wall time by design; never feeds simulated fleet artifacts)
    let start = Instant::now();
    let outputs = inputs
        .into_iter()
        .map(|mut item| {
            for stage in &mut stages {
                item = stage.process(item);
            }
            item
        })
        .collect();
    PipelineRun {
        outputs,
        wall: start.elapsed(),
    }
}

/// Runs items through the stages as a chained pipeline: one thread per
/// stage, connected by FIFO channels. While stage `i` processes item `k`,
/// stage `i+1` processes item `k-1` — the paper's chained execution model.
pub fn run_chained(stages: Vec<Box<dyn PipelineStage>>, inputs: Vec<Vec<u8>>) -> PipelineRun {
    assert!(!stages.is_empty(), "pipeline needs at least one stage");
    let n = inputs.len();
    // audit: allow(determinism, hardware-validation experiment: measures real host wall time by design; never feeds simulated fleet artifacts)
    let start = Instant::now();

    let (first_tx, mut prev_rx) = mpsc::sync_channel::<Vec<u8>>(64);
    let mut handles = Vec::new();
    for mut stage in stages {
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(64);
        let input = prev_rx;
        handles.push(thread::spawn(move || {
            while let Ok(item) = input.recv() {
                let out = stage.process(item);
                if tx.send(out).is_err() {
                    break;
                }
            }
        }));
        prev_rx = rx;
    }

    // Feed inputs from this thread (the "core" only enqueues work).
    let feeder = thread::spawn(move || {
        for item in inputs {
            if first_tx.send(item).is_err() {
                break;
            }
        }
    });

    let mut outputs = Vec::with_capacity(n);
    for _ in 0..n {
        // audit: allow(panic, the feeder sends exactly n items and every stage forwards each one)
        outputs.push(prev_rx.recv().expect("pipeline produced all items"));
    }
    // audit: allow(panic, join only fails if the worker itself panicked; surfacing that is correct)
    feeder.join().expect("feeder thread");
    for handle in handles {
        // audit: allow(panic, join only fails if the worker itself panicked; surfacing that is correct)
        handle.join().expect("stage thread");
    }
    PipelineRun {
        outputs,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doubler() -> Box<dyn PipelineStage> {
        Box::new(FnStage::new("double", |mut v: Vec<u8>| {
            let copy = v.clone();
            v.extend(copy);
            v
        }))
    }

    fn len_tag() -> Box<dyn PipelineStage> {
        Box::new(FnStage::new("len", |v: Vec<u8>| {
            (v.len() as u64).to_le_bytes().to_vec()
        }))
    }

    #[test]
    fn sequential_and_chained_agree() {
        let inputs: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; (i as usize % 7) + 1]).collect();
        let seq = run_sequential(vec![doubler(), len_tag()], inputs.clone());
        let chained = run_chained(vec![doubler(), len_tag()], inputs);
        assert_eq!(seq.outputs, chained.outputs);
        assert_eq!(seq.outputs.len(), 50);
    }

    #[test]
    fn order_is_preserved() {
        let inputs: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i]).collect();
        let run = run_chained(
            vec![Box::new(FnStage::new("id", |v: Vec<u8>| v))],
            inputs.clone(),
        );
        assert_eq!(run.outputs, inputs);
    }

    #[test]
    fn empty_input_is_fine() {
        let run = run_chained(vec![doubler()], vec![]);
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn chained_overlaps_stage_work() {
        // Two stages that each burn CPU: chained wall should be well under
        // the sequential wall once the pipeline fills. Use a generous bound
        // to stay robust on loaded CI machines.
        let busy = |name| {
            Box::new(FnStage::new(name, |v: Vec<u8>| {
                let mut acc = 0u64;
                for i in 0..800_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                let mut out = v;
                out.push((acc & 0xff) as u8);
                out
            })) as Box<dyn PipelineStage>
        };
        let inputs: Vec<Vec<u8>> = (0..48u8).map(|i| vec![i]).collect();
        let seq = run_sequential(vec![busy("a"), busy("b")], inputs.clone());
        let chained = run_chained(vec![busy("a"), busy("b")], inputs);
        assert_eq!(seq.outputs, chained.outputs);
        // Ideal pipelining halves the wall time, but that requires real
        // hardware parallelism; on a single-core host only correctness (and
        // the absence of pathological slowdown) can be asserted.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 2 {
            assert!(
                chained.wall.as_secs_f64() < seq.wall.as_secs_f64() * 0.9,
                "chained {:?} should beat sequential {:?}",
                chained.wall,
                seq.wall
            );
        } else {
            assert!(
                chained.wall.as_secs_f64() < seq.wall.as_secs_f64() * 3.0,
                "chained {:?} should not collapse vs sequential {:?}",
                chained.wall,
                seq.wall
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let _ = run_chained(vec![], vec![vec![1]]);
    }
}
