//! The Table 8 model-validation experiment, reproduced in software.
//!
//! The paper chains a protobuf-serialization accelerator into a SHA3
//! accelerator on a RISC-V SoC and compares the measured chained time to the
//! Equations 9–10 estimate (6.1% difference). This module runs the same
//! experiment shape with our own primitives:
//!
//! 1. **Paper replay** — pushes the published RTL measurements through the
//!    chained model and reproduces Table 8's arithmetic exactly.
//! 2. **Software validation** — serializes a HyperProtoBench-style message
//!    corpus and SHA3-hashes the bytes, first sequentially (measuring the
//!    per-stage `t_sub`s), then as a real two-thread chained pipeline, and
//!    compares the measured pipeline wall time to the model estimate.

use std::time::Instant;

use hsdp_core::accel::{AcceleratorSpec, Speedup};
use hsdp_core::category::{CpuCategory, DatacenterTax};
use hsdp_core::chained::{chain_estimate, ChainStage};
use hsdp_core::paper::{Table8, TABLE8};
use hsdp_core::units::Seconds;
use hsdp_rng::StdRng;
use hsdp_taxes::sha3::Sha3_256;
use hsdp_workload::proto_corpus;

use crate::pipeline::{run_chained, run_sequential, FnStage, PipelineStage};

/// The paper-replay result: Table 8's arithmetic recomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperReplay {
    /// The published inputs.
    pub inputs: Table8,
    /// The chained time our Equations 9–12 produce (microseconds).
    pub recomputed_modeled_us: f64,
    /// Relative difference of the recomputed model vs the paper's measured
    /// chained execution time.
    pub model_vs_measured: f64,
}

/// Replays the published Table 8 numbers through the chained model.
#[must_use]
pub fn paper_replay() -> PaperReplay {
    let t8 = TABLE8;
    let stages = [
        ChainStage {
            category: CpuCategory::Datacenter(DatacenterTax::Protobuf),
            original: Seconds::from_micros(t8.proto_tsub_us),
            spec: AcceleratorSpec::builder(
                // audit: allow(panic, Table 8 publishes speedups >= 1 by construction)
                Speedup::new(t8.proto_speedup).expect("published speedup"),
            )
            .setup(Seconds::from_micros(t8.proto_setup_us))
            .build(),
        },
        ChainStage {
            category: CpuCategory::Datacenter(DatacenterTax::Cryptography),
            original: Seconds::from_micros(t8.sha3_tsub_us),
            spec: AcceleratorSpec::builder(
                // audit: allow(panic, Table 8 publishes speedups >= 1 by construction)
                Speedup::new(t8.sha3_speedup).expect("published speedup"),
            )
            .setup(Seconds::from_micros(t8.sha3_setup_us))
            .build(),
        },
    ];
    // audit: allow(panic, the stages array above is statically non-empty)
    let est = chain_estimate(&stages).expect("two stages");
    // Eq. 9: t'_cpu = t_chnd + t_nacc (no other accelerated components).
    let modeled_us = est.chained_time.as_micros() + t8.nacc_cpu_us;
    PaperReplay {
        inputs: t8,
        recomputed_modeled_us: modeled_us,
        model_vs_measured: (modeled_us - t8.measured_chained_us) / t8.measured_chained_us,
    }
}

/// The software-pipeline validation result (all times in microseconds of
/// real wall clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareValidation {
    /// Messages processed.
    pub messages: usize,
    /// Total serialization CPU time (`t_sub` of stage 1).
    pub serialize_us: f64,
    /// Total SHA3 CPU time (`t_sub` of stage 2).
    pub sha3_us: f64,
    /// Measured sequential (unchained) wall time.
    pub sequential_us: f64,
    /// Measured chained-pipeline wall time.
    pub chained_measured_us: f64,
    /// Model estimate for the chained pipeline
    /// (`max setup ≈ 0` software threads + slowest stage total + fill).
    pub chained_modeled_us: f64,
    /// Relative difference between the model and the measurement.
    pub model_vs_measured: f64,
}

fn serialize_stage(messages: Vec<hsdp_taxes::protowire::Message>) -> Box<dyn PipelineStage> {
    let mut iter = messages.into_iter();
    Box::new(FnStage::new("proto_serialize", move |_trigger: Vec<u8>| {
        iter.next().map(|m| m.encode_to_vec()).unwrap_or_default()
    }))
}

fn sha3_stage() -> Box<dyn PipelineStage> {
    Box::new(FnStage::new("sha3_256", |bytes: Vec<u8>| {
        Sha3_256::digest(&bytes).to_vec()
    }))
}

/// Runs the software chained-validation experiment over `messages`
/// fleet-representative protobuf messages.
///
/// # Panics
///
/// Panics if `messages` is zero.
#[must_use]
pub fn software_validation(messages: usize, seed: u64) -> SoftwareValidation {
    assert!(messages > 0, "need at least one message");
    let mut rng = StdRng::seed_from_u64(seed);
    let corpus = proto_corpus::corpus(messages, &mut rng);

    // Per-stage t_sub measurement (the paper's non-accelerated synchronous
    // benchmark).
    // audit: allow(determinism, software-validation benchmark: times real host execution of the stages by design; reported as measurements, not simulated artifacts)
    let start = Instant::now();
    let encoded: Vec<Vec<u8>> = corpus.iter().map(|m| m.encode_to_vec()).collect();
    let serialize_us = start.elapsed().as_secs_f64() * 1e6;
    // audit: allow(determinism, software-validation benchmark: times real host execution of the stages by design; reported as measurements, not simulated artifacts)
    let start = Instant::now();
    for bytes in &encoded {
        let _ = Sha3_256::digest(bytes);
    }
    let sha3_us = start.elapsed().as_secs_f64() * 1e6;

    // Sequential (unchained) end-to-end.
    let triggers: Vec<Vec<u8>> = vec![Vec::new(); messages];
    let sequential = run_sequential(
        vec![serialize_stage(corpus.clone()), sha3_stage()],
        triggers.clone(),
    );
    let sequential_us = sequential.wall.as_secs_f64() * 1e6;

    // Chained pipeline.
    let chained = run_chained(vec![serialize_stage(corpus), sha3_stage()], triggers);
    let chained_measured_us = chained.wall.as_secs_f64() * 1e6;

    // Eq. 10 estimate: software threads have negligible setup; the pipeline
    // is bounded by the slowest stage's total plus one fill of the other.
    // On a single-core host the stages time-slice instead of overlapping,
    // so the model degenerates to the serial sum — the equivalent of a
    // chained accelerator complex with only one execution unit.
    // audit: allow(determinism, Eq. 10 model selection needs the real core count of the measurement host; it qualifies the measurement, not a simulated artifact)
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let chained_modeled_us = if cores >= 2 {
        let slowest = serialize_us.max(sha3_us);
        let fill = (serialize_us.min(sha3_us)) / messages as f64;
        slowest + fill
    } else {
        serialize_us + sha3_us
    };

    SoftwareValidation {
        messages,
        serialize_us,
        sha3_us,
        sequential_us,
        chained_measured_us,
        chained_modeled_us,
        model_vs_measured: (chained_modeled_us - chained_measured_us) / chained_measured_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_replay_reproduces_table8() {
        let replay = paper_replay();
        // The recomputed model matches the paper's 6,459.3us within rounding.
        assert!(
            (replay.recomputed_modeled_us - replay.inputs.modeled_chained_us).abs() < 0.5,
            "recomputed {}",
            replay.recomputed_modeled_us
        );
        // And therefore the published 6.1% difference.
        assert!((replay.model_vs_measured - 0.061).abs() < 0.005);
    }

    #[test]
    fn software_validation_invariants() {
        let v = software_validation(400, 1234);
        // Both stages did real work.
        assert!(v.serialize_us > 0.0 && v.sha3_us > 0.0);
        // The chained pipeline never beats the slowest stage alone by much,
        // and never loses to sequential by much. On a single hardware
        // thread the two pipeline stages time-slice one core, so the
        // crossing-thread overhead dwarfs the compute and only a very
        // loose bound is meaningful (generous CI-safe bounds).
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let slowdown_bound = if cores >= 2 { 2.0 } else { 20.0 };
        assert!(
            v.chained_measured_us < v.sequential_us * slowdown_bound,
            "chained {} vs sequential {} (bound {slowdown_bound}x)",
            v.chained_measured_us,
            v.sequential_us
        );
        // The model estimate is in the right ballpark of the measurement.
        assert!(
            v.model_vs_measured.abs() < 1.0,
            "model {} vs measured {}",
            v.chained_modeled_us,
            v.chained_measured_us
        );
    }

    #[test]
    #[should_panic(expected = "at least one message")]
    fn zero_messages_panics() {
        let _ = software_validation(0, 1);
    }
}
