//! An executable, event-level simulator of accelerator execution models —
//! the cross-check for the closed-form Equations 5–12.
//!
//! Where `hsdp-core` computes sync/async/chained times analytically, this
//! module *simulates* them: synchronous execution serializes invocations,
//! asynchronous runs them concurrently, and chained execution evaluates the
//! classic pipeline recurrence over a stream of items. Agreement between
//! the two is asserted in tests and reported by the `table8_validation`
//! bench.

use hsdp_simcore::time::SimDuration;

/// One accelerator stage in the executable model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpec {
    /// Per-item processing time on the accelerator.
    pub per_item: SimDuration,
    /// One-time setup cost before the stage can accept items.
    pub setup: SimDuration,
}

/// Simulated synchronous execution: every stage processes the whole batch,
/// serialized with all other stages, paying its setup per invocation.
#[must_use]
pub fn simulate_synchronous(stages: &[StageSpec], items: usize) -> SimDuration {
    stages
        .iter()
        .map(|s| s.setup + s.per_item.scaled(items as f64))
        .sum()
}

/// Simulated asynchronous execution: all stages run fully in parallel; the
/// slowest stage (with its setup) bounds the batch.
#[must_use]
pub fn simulate_asynchronous(stages: &[StageSpec], items: usize) -> SimDuration {
    stages
        .iter()
        .map(|s| s.setup + s.per_item.scaled(items as f64))
        .fold(SimDuration::ZERO, SimDuration::max)
}

/// Simulated chained execution via the pipeline recurrence:
/// `finish[i][s] = max(finish[i-1][s], finish[i][s-1]) + t_s`, with stage
/// setups paid concurrently while the pipeline starts (Eq. 11's bound).
///
/// Returns the wall time for the whole batch.
#[must_use]
pub fn simulate_chained(stages: &[StageSpec], items: usize) -> SimDuration {
    if stages.is_empty() || items == 0 {
        return SimDuration::ZERO;
    }
    // All stages set up concurrently before the first item enters.
    let setup = stages
        .iter()
        .map(|s| s.setup)
        .fold(SimDuration::ZERO, SimDuration::max);
    // stage_free[s]: when stage s finished its previous item.
    let mut stage_free = vec![SimDuration::ZERO; stages.len()];
    let mut last_finish = SimDuration::ZERO;
    for _item in 0..items {
        let mut ready = SimDuration::ZERO; // when this item leaves the previous stage
        for (s, spec) in stages.iter().enumerate() {
            let start = ready.max(stage_free[s]);
            let finish = start + spec.per_item;
            stage_free[s] = finish;
            ready = finish;
        }
        last_finish = ready;
    }
    setup + last_finish
}

/// The closed-form chained estimate of Equations 10–12 for a whole batch:
/// `max setup + (items) * max per-item + fill` is bounded below by
/// `max setup + items * max per-item`; the analytical model reports the
/// per-batch time as `t_lpen + t_lsubnp` where `t_lsubnp` is the slowest
/// stage's total time over the batch.
#[must_use]
pub fn analytic_chained(stages: &[StageSpec], items: usize) -> SimDuration {
    let setup = stages
        .iter()
        .map(|s| s.setup)
        .fold(SimDuration::ZERO, SimDuration::max);
    let slowest_total = stages
        .iter()
        .map(|s| s.per_item.scaled(items as f64))
        .fold(SimDuration::ZERO, SimDuration::max);
    setup + slowest_total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn stages() -> Vec<StageSpec> {
        vec![
            StageSpec {
                per_item: us(10),
                setup: us(100),
            },
            StageSpec {
                per_item: us(25),
                setup: us(5),
            },
            StageSpec {
                per_item: us(15),
                setup: us(40),
            },
        ]
    }

    #[test]
    fn sync_is_sum_async_is_max() {
        let s = stages();
        let sync = simulate_synchronous(&s, 100);
        let async_ = simulate_asynchronous(&s, 100);
        assert_eq!(sync.as_micros(), 100 + 1000 + 5 + 2500 + 40 + 1500);
        assert_eq!(async_.as_micros(), 2505);
        assert!(async_ <= sync);
    }

    #[test]
    fn chained_between_async_and_sync() {
        let s = stages();
        for items in [1usize, 10, 100] {
            let sync = simulate_synchronous(&s, items);
            let async_ = simulate_asynchronous(&s, items);
            let chained = simulate_chained(&s, items);
            assert!(chained <= sync, "items {items}");
            // Chained cannot beat the slowest stage running alone.
            assert!(chained >= async_.max(us(0)), "items {items}");
        }
    }

    #[test]
    fn chained_converges_to_analytic_bound() {
        // As the batch grows, the simulated pipeline time approaches the
        // Eq. 10–12 closed form: fill cost amortizes away.
        let s = stages();
        let items = 10_000;
        let simulated = simulate_chained(&s, items).as_nanos() as f64;
        let analytic = analytic_chained(&s, items).as_nanos() as f64;
        let rel = (simulated - analytic) / analytic;
        assert!(rel >= 0.0, "simulation includes the fill cost");
        assert!(rel < 0.01, "relative gap {rel}");
    }

    #[test]
    fn single_stage_chain_equals_serial() {
        let s = vec![StageSpec {
            per_item: us(7),
            setup: us(3),
        }];
        assert_eq!(
            simulate_chained(&s, 10).as_micros(),
            simulate_synchronous(&s, 10).as_micros()
        );
    }

    #[test]
    fn empty_cases() {
        assert_eq!(simulate_chained(&[], 10), SimDuration::ZERO);
        assert_eq!(simulate_chained(&stages(), 0), SimDuration::ZERO);
        assert_eq!(simulate_synchronous(&[], 10), SimDuration::ZERO);
    }

    #[test]
    fn paper_table8_stages_match_model() {
        // The paper's stages: serialization 518.3us/31x, SHA3 1112.5us/51.3x
        // per batch, setups 1488.9us and 4.1us. Treat the batch as one item.
        let stages = vec![
            StageSpec {
                per_item: SimDuration::from_nanos((518_300.0 / 31.0 * 1000.0) as u64 / 1000),
                setup: SimDuration::from_nanos(1_488_900),
            },
            StageSpec {
                per_item: SimDuration::from_nanos((1_112_500.0 / 51.3) as u64),
                setup: SimDuration::from_nanos(4_100),
            },
        ];
        let chained = simulate_chained(&stages, 1);
        // One item: setup + both stage times (no overlap possible).
        let expected = 1_488_900 + stages[0].per_item.as_nanos() + stages[1].per_item.as_nanos();
        assert_eq!(chained.as_nanos(), expected);
        // Large batches converge to the analytic chained bound (Eq. 10).
        let big = simulate_chained(&stages, 1000).as_nanos() as f64;
        let analytic = analytic_chained(&stages, 1000).as_nanos() as f64;
        assert!((big - analytic) / analytic < 0.05);
    }
}
