//! Property tests over every cache policy: capacity safety, hit/miss
//! consistency, and zipf hit-rate sanity.

use hsdp_storage::cache::{build_cache, PolicyKind};
use proptest::prelude::*;

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::Lfu,
    PolicyKind::TwoQ,
    PolicyKind::Predictive,
];

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Access(u64),
    Remove(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..64, 1u64..40).prop_map(|(k, s)| Op::Insert(k, s)),
            (0u64..64).prop_map(Op::Access),
            (0u64..64).prop_map(Op::Remove),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Capacity is never exceeded and bookkeeping never underflows, for any
    /// operation sequence, under every policy.
    #[test]
    fn capacity_and_bookkeeping_invariants(ops in arb_ops(), capacity in 10u64..200) {
        for policy in POLICIES {
            let mut cache = build_cache(policy, capacity);
            for op in &ops {
                match *op {
                    Op::Insert(k, s) => cache.insert(k, s),
                    Op::Access(k) => {
                        let hit = cache.access(k);
                        prop_assert_eq!(hit, cache.contains(k), "{:?}", policy);
                    }
                    Op::Remove(k) => cache.remove(k),
                }
                prop_assert!(cache.used_bytes() <= cache.capacity(), "{:?}", policy);
                prop_assert_eq!(cache.is_empty(), cache.len() == 0, "{:?}", policy);
            }
        }
    }

    /// A removed key is gone under every policy.
    #[test]
    fn remove_is_definitive(key in 0u64..1000, size in 1u64..50) {
        for policy in POLICIES {
            let mut cache = build_cache(policy, 1_000);
            cache.insert(key, size);
            cache.remove(key);
            prop_assert!(!cache.contains(key), "{policy:?}");
            prop_assert_eq!(cache.used_bytes(), 0, "{:?}", policy);
        }
    }
}

/// On a zipf-skewed stream with capacity for the hot set, every policy
/// should achieve a solid steady-state hit rate.
#[test]
fn zipf_hit_rates_are_reasonable() {
    use hsdp_simcore::dist::{seeded_rng, Zipf};

    let zipf = Zipf::new(500, 0.99);
    for policy in POLICIES {
        let mut cache = build_cache(policy, 40 * 16); // room for ~40 hot keys
        let mut rng = seeded_rng(11);
        // Warm-up.
        for _ in 0..2_000 {
            let key = zipf.sample_rank(&mut rng);
            if !cache.access(key) {
                cache.insert(key, 16);
            }
        }
        // Measure.
        let mut hits = 0;
        let total = 4_000;
        for _ in 0..total {
            let key = zipf.sample_rank(&mut rng);
            if cache.access(key) {
                hits += 1;
            } else {
                cache.insert(key, 16);
            }
        }
        let rate = f64::from(hits) / f64::from(total);
        assert!(rate > 0.45, "{policy:?}: zipf hit rate {rate}");
    }
}
