//! Randomized tests over every cache policy: capacity safety, hit/miss
//! consistency, and zipf hit-rate sanity.
//!
//! Formerly `proptest` strategies; now driven by the in-repo deterministic
//! PRNG so the workspace stays dependency-free.

use hsdp_rng::{Rng, StdRng};
use hsdp_storage::cache::{build_cache, PolicyKind};

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::Lfu,
    PolicyKind::TwoQ,
    PolicyKind::Predictive,
];

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Access(u64),
    Remove(u64),
}

fn arb_ops(rng: &mut StdRng) -> Vec<Op> {
    let len = rng.random_range(1..200usize);
    (0..len)
        .map(|_| match rng.random_range(0..3u8) {
            0 => Op::Insert(rng.random_range(0u64..64), rng.random_range(1u64..40)),
            1 => Op::Access(rng.random_range(0u64..64)),
            _ => Op::Remove(rng.random_range(0u64..64)),
        })
        .collect()
}

/// Capacity is never exceeded and bookkeeping never underflows, for any
/// operation sequence, under every policy.
#[test]
fn capacity_and_bookkeeping_invariants() {
    let mut rng = StdRng::seed_from_u64(0xCAFE1);
    for _ in 0..48 {
        let ops = arb_ops(&mut rng);
        let capacity = rng.random_range(10u64..200);
        for policy in POLICIES {
            let mut cache = build_cache(policy, capacity);
            for op in &ops {
                match *op {
                    Op::Insert(k, s) => cache.insert(k, s),
                    Op::Access(k) => {
                        let hit = cache.access(k);
                        assert_eq!(hit, cache.contains(k), "{policy:?}");
                    }
                    Op::Remove(k) => cache.remove(k),
                }
                assert!(cache.used_bytes() <= cache.capacity(), "{policy:?}");
                if cache.is_empty() {
                    assert_eq!(cache.len(), 0, "{policy:?}");
                } else {
                    assert_ne!(cache.len(), 0, "{policy:?}");
                }
            }
        }
    }
}

/// A removed key is gone under every policy.
#[test]
fn remove_is_definitive() {
    let mut rng = StdRng::seed_from_u64(0xCAFE2);
    for _ in 0..256 {
        let key = rng.random_range(0u64..1000);
        let size = rng.random_range(1u64..50);
        for policy in POLICIES {
            let mut cache = build_cache(policy, 1_000);
            cache.insert(key, size);
            cache.remove(key);
            assert!(!cache.contains(key), "{policy:?}");
            assert_eq!(cache.used_bytes(), 0, "{policy:?}");
        }
    }
}

/// On a zipf-skewed stream with capacity for the hot set, every policy
/// should achieve a solid steady-state hit rate.
#[test]
fn zipf_hit_rates_are_reasonable() {
    use hsdp_simcore::dist::{seeded_rng, Zipf};

    let zipf = Zipf::new(500, 0.99);
    for policy in POLICIES {
        let mut cache = build_cache(policy, 40 * 16); // room for ~40 hot keys
        let mut rng = seeded_rng(11);
        // Warm-up.
        for _ in 0..2_000 {
            let key = zipf.sample_rank(&mut rng);
            if !cache.access(key) {
                cache.insert(key, 16);
            }
        }
        // Measure.
        let mut hits = 0;
        let total = 4_000;
        for _ in 0..total {
            let key = zipf.sample_rank(&mut rng);
            if cache.access(key) {
                hits += 1;
            } else {
                cache.insert(key, 16);
            }
        }
        let rate = f64::from(hits) / f64::from(total);
        assert!(rate > 0.45, "{policy:?}: zipf hit rate {rate}");
    }
}
