//! A predictive (frequency-learning) cache policy — the paper's Section 3
//! future-work direction: "using machine learning to place data between the
//! storage tiers".
//!
//! [`PredictiveCache`] keeps an exponentially-decayed access-frequency
//! estimate per key (including *ghost* entries for keys not currently
//! cached) and admits/evicts by predicted reuse: a newly seen key only
//! displaces a resident entry whose learned score is lower. One-shot scans
//! never build enough score to evict the hot set.

use std::collections::BTreeMap;

use crate::cache::CachePolicy;

/// Decay applied to every score per access event (half-life ≈ 700 events).
const DECAY: f64 = 0.999;
/// Score added on each access.
const HIT_BOOST: f64 = 1.0;
/// Maximum ghost entries remembered (bounded learning state).
const MAX_GHOSTS: usize = 4_096;

/// A byte-capacity cache with learned admission and eviction.
#[derive(Debug)]
pub struct PredictiveCache {
    capacity: u64,
    used: u64,
    clock: u64,
    // BTreeMap, not HashMap: eviction scans break float-score ties by
    // iteration order, and only a sorted map makes that order (lowest key
    // wins) deterministic across runs and schedules.
    resident: BTreeMap<u64, (u64, f64, u64)>, // key -> (size, score, last_tick)
    ghosts: BTreeMap<u64, (f64, u64)>,        // key -> (score, last_tick)
}

impl PredictiveCache {
    /// An empty predictive cache with the given byte capacity.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        PredictiveCache {
            capacity,
            used: 0,
            clock: 0,
            resident: BTreeMap::new(),
            ghosts: BTreeMap::new(),
        }
    }

    fn decayed(score: f64, last_tick: u64, now: u64) -> f64 {
        score * DECAY.powi((now - last_tick).min(100_000) as i32)
    }

    fn bump_ghost(&mut self, key: u64) -> f64 {
        let now = self.clock;
        let entry = self.ghosts.entry(key).or_insert((0.0, now));
        let score = Self::decayed(entry.0, entry.1, now) + HIT_BOOST;
        *entry = (score, now);
        if self.ghosts.len() > MAX_GHOSTS {
            // Forget the stalest ghost (linear scan is fine at this size).
            if let Some((&victim, _)) = self.ghosts.iter().min_by(|a, b| {
                Self::decayed(a.1 .0, a.1 .1, now).total_cmp(&Self::decayed(b.1 .0, b.1 .1, now))
            }) {
                self.ghosts.remove(&victim);
            }
        }
        score
    }

    /// The resident entry with the lowest current score.
    fn coldest_resident(&self) -> Option<(u64, f64)> {
        let now = self.clock;
        self.resident
            .iter()
            .map(|(&k, &(_, score, tick))| (k, Self::decayed(score, tick, now)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

impl CachePolicy for PredictiveCache {
    fn access(&mut self, key: u64) -> bool {
        self.clock += 1;
        let now = self.clock;
        if let Some(entry) = self.resident.get_mut(&key) {
            entry.1 = Self::decayed(entry.1, entry.2, now) + HIT_BOOST;
            entry.2 = now;
            true
        } else {
            self.bump_ghost(key);
            false
        }
    }

    fn insert(&mut self, key: u64, size: u64) {
        self.clock += 1;
        self.remove(key);
        if size > self.capacity {
            return;
        }
        // Learned admission: the candidate's score must beat the entries it
        // would displace.
        let candidate_score = self.bump_ghost(key);
        while self.used + size > self.capacity {
            let Some((victim, victim_score)) = self.coldest_resident() else {
                break;
            };
            if victim_score >= candidate_score {
                // The cache is full of provably hotter data: do not admit.
                return;
            }
            if let Some((vsize, vscore, vtick)) = self.resident.remove(&victim) {
                self.used -= vsize;
                self.ghosts.insert(victim, (vscore, vtick));
            }
        }
        self.ghosts.remove(&key);
        self.resident
            .insert(key, (size, candidate_score, self.clock));
        self.used += size;
    }

    fn remove(&mut self, key: u64) {
        if let Some((size, _, _)) = self.resident.remove(&key) {
            self.used -= size;
        }
        self.ghosts.remove(&key);
    }

    fn contains(&self, key: u64) -> bool {
        self.resident.contains_key(&key)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_access() {
        let mut c = PredictiveCache::new(100);
        c.insert(1, 40);
        assert!(c.contains(1));
        assert!(c.access(1));
        assert!(!c.access(2));
        assert_eq!(c.used_bytes(), 40);
        c.remove(1);
        assert!(!c.contains(1));
    }

    #[test]
    fn hot_entries_resist_one_shot_scans() {
        let mut c = PredictiveCache::new(100);
        // Build a hot set with repeated accesses.
        for _ in 0..20 {
            for key in 0..5 {
                if !c.access(key) {
                    c.insert(key, 20);
                }
            }
        }
        assert_eq!(c.len(), 5);
        // A long one-shot scan: each key seen once, never again.
        for key in 1_000..1_400 {
            if !c.access(key) {
                c.insert(key, 20);
            }
        }
        // The learned scores keep the hot set resident.
        let survivors = (0..5).filter(|&k| c.contains(k)).count();
        assert!(survivors >= 4, "hot set survived the scan: {survivors}/5");
    }

    #[test]
    fn repeated_misses_eventually_earn_admission() {
        let mut c = PredictiveCache::new(40);
        for _ in 0..10 {
            c.access(1);
            c.insert(1, 40);
        }
        assert!(c.contains(1));
        // A new key that keeps getting requested overtakes a decayed one.
        for _ in 0..2_000 {
            if !c.access(2) {
                c.insert(2, 40);
            }
        }
        assert!(c.contains(2), "persistent demand wins admission");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = PredictiveCache::new(100);
        for key in 0..50 {
            c.insert(key, 30);
            assert!(c.used_bytes() <= 100);
        }
        c.insert(99, 1_000); // larger than the cache: bypass
        assert!(!c.contains(99));
    }

    #[test]
    fn ghost_table_is_bounded() {
        let mut c = PredictiveCache::new(10);
        for key in 0..(MAX_GHOSTS as u64 * 2) {
            c.access(key);
        }
        assert!(c.ghosts.len() <= MAX_GHOSTS + 1);
    }
}
