//! Fleet storage provisioning — reproducing Table 1's storage-to-storage
//! ratios from first principles.
//!
//! The paper reports petabytes of RAM : SSD : HDD owned per platform
//! (Spanner 1:8:90, BigTable 1:16:164, BigQuery 1:7:777). Rather than
//! hardcoding the ratios, this module models the *provisioning rule* that
//! produces them: tiers are read caches sized to meet hit-rate targets
//! against a zipfian access distribution over the dataset. Each platform's
//! hit-rate targets (documented in [`paper_spec`]) are the calibration knob;
//! the resulting byte ratios are then *derived* and compared against
//! Table 1 in the bench.

/// A zipfian working-set model over `items` objects with skew `theta < 1`.
///
/// Uses the continuous approximation of the generalized harmonic number,
/// `H_k(θ) ≈ (k^(1-θ) - 1) / (1-θ)`, accurate for the large item counts of
/// fleet datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfWorkingSet {
    items: f64,
    theta: f64,
}

impl ZipfWorkingSet {
    /// Creates a working-set model.
    ///
    /// # Panics
    ///
    /// Panics unless `items >= 2` and `theta ∈ (0, 1)`.
    #[must_use]
    pub fn new(items: f64, theta: f64) -> Self {
        assert!(items >= 2.0, "need at least two items");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        ZipfWorkingSet { items, theta }
    }

    fn h(&self, k: f64) -> f64 {
        (k.powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta)
    }

    /// Expected hit rate when the most popular `fraction` of items is cached.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction ∈ [0, 1]`.
    #[must_use]
    pub fn hit_rate(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        if fraction <= 0.0 {
            return 0.0;
        }
        let k = (self.items * fraction).max(1.0);
        (self.h(k) / self.h(self.items)).min(1.0)
    }

    /// The smallest cached fraction achieving `target` hit rate (inverse of
    /// [`ZipfWorkingSet::hit_rate`]).
    ///
    /// # Panics
    ///
    /// Panics unless `target ∈ [0, 1)`.
    #[must_use]
    pub fn fraction_for_hit_rate(&self, target: f64) -> f64 {
        assert!((0.0..1.0).contains(&target), "target in [0, 1)");
        if target <= 0.0 {
            return 0.0;
        }
        let hn = self.h(self.items);
        // Invert H_k/H_n = target for k.
        let k = (target * hn * (1.0 - self.theta) + 1.0).powf(1.0 / (1.0 - self.theta));
        (k / self.items).clamp(0.0, 1.0)
    }
}

/// Inputs to the tier provisioner for one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisionSpec {
    /// Total logical dataset bytes (becomes the HDD capacity tier).
    pub dataset_bytes: f64,
    /// Access skew model over the dataset.
    pub working_set: ZipfWorkingSet,
    /// Hit-rate target the RAM tier must meet alone.
    pub ram_hit_target: f64,
    /// Cumulative hit-rate target RAM+SSD must meet together.
    pub ram_ssd_hit_target: f64,
}

/// Provisioned tier sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Provisioned {
    /// RAM bytes.
    pub ram: f64,
    /// SSD bytes.
    pub ssd: f64,
    /// HDD bytes.
    pub hdd: f64,
}

impl Provisioned {
    /// The Table 1-style ratio, normalized to RAM = 1.
    #[must_use]
    pub fn ratio(&self) -> (f64, f64, f64) {
        (1.0, self.ssd / self.ram, self.hdd / self.ram)
    }
}

/// Sizes the tiers for a spec: RAM caches the hottest items up to its hit
/// target, SSD extends coverage to the cumulative target, HDD holds the
/// full dataset.
///
/// # Panics
///
/// Panics if the cumulative target is below the RAM target.
#[must_use]
pub fn provision(spec: &ProvisionSpec) -> Provisioned {
    assert!(
        spec.ram_ssd_hit_target >= spec.ram_hit_target,
        "cumulative target cannot be below the RAM target"
    );
    let ram_fraction = spec.working_set.fraction_for_hit_rate(spec.ram_hit_target);
    let cum_fraction = spec
        .working_set
        .fraction_for_hit_rate(spec.ram_ssd_hit_target);
    Provisioned {
        ram: spec.dataset_bytes * ram_fraction,
        ssd: spec.dataset_bytes * (cum_fraction - ram_fraction).max(0.0),
        hdd: spec.dataset_bytes,
    }
}

/// Which platform class a provisioning spec describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformClass {
    /// Globally replicated transactional SQL store.
    Spanner,
    /// Cluster key-value store.
    BigTable,
    /// Analytics warehouse.
    BigQuery,
}

/// The calibrated per-platform specs whose derived ratios land near
/// Table 1.
///
/// All platforms share a zipf(0.9) popularity model over ~1e9 objects; what
/// differs is how aggressively each caches: the transactional databases
/// carry higher RAM hit targets (they serve point reads from cache), while
/// the analytics warehouse tolerates cold scans.
#[must_use]
pub fn paper_spec(class: PlatformClass) -> ProvisionSpec {
    let working_set = ZipfWorkingSet::new(1e9, 0.9);
    // One exabyte of logical data; the ratio is scale-free.
    let dataset_bytes = 1e18;
    match class {
        PlatformClass::Spanner => ProvisionSpec {
            dataset_bytes,
            working_set,
            ram_hit_target: 0.586,
            ram_ssd_hit_target: 0.765,
        },
        PlatformClass::BigTable => ProvisionSpec {
            dataset_bytes,
            working_set,
            ram_hit_target: 0.542,
            ram_ssd_hit_target: 0.766,
        },
        PlatformClass::BigQuery => ProvisionSpec {
            dataset_bytes,
            working_set,
            ram_hit_target: 0.444,
            ram_ssd_hit_target: 0.580,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_monotone_in_fraction() {
        let ws = ZipfWorkingSet::new(1e9, 0.9);
        let mut last = 0.0;
        for i in 0..=20 {
            let f = i as f64 / 20.0;
            let h = ws.hit_rate(f);
            assert!(h >= last - 1e-12, "hit rate must not decrease");
            assert!((0.0..=1.0).contains(&h));
            last = h;
        }
        assert_eq!(ws.hit_rate(0.0), 0.0);
        assert!((ws.hit_rate(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_concentrates_hits() {
        // 1% of items captures far more than 1% of accesses under zipf.
        let ws = ZipfWorkingSet::new(1e9, 0.9);
        assert!(ws.hit_rate(0.01) > 0.5);
    }

    #[test]
    fn fraction_inverts_hit_rate() {
        let ws = ZipfWorkingSet::new(1e9, 0.9);
        for target in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let f = ws.fraction_for_hit_rate(target);
            let back = ws.hit_rate(f);
            assert!((back - target).abs() < 0.01, "target {target} got {back}");
        }
        assert_eq!(ws.fraction_for_hit_rate(0.0), 0.0);
    }

    #[test]
    fn provision_reproduces_table1_shape() {
        // (class, paper SSD:RAM, paper HDD:RAM), tolerance 35%: the ratios
        // are derived from hit-rate targets, not hardcoded.
        let cases = [
            (PlatformClass::Spanner, 8.0, 90.0),
            (PlatformClass::BigTable, 16.0, 164.0),
            (PlatformClass::BigQuery, 7.0, 777.0),
        ];
        for (class, ssd_expected, hdd_expected) in cases {
            let p = provision(&paper_spec(class));
            let (_, ssd, hdd) = p.ratio();
            assert!(
                (ssd / ssd_expected - 1.0).abs() < 0.35,
                "{class:?} SSD ratio {ssd} vs paper {ssd_expected}"
            );
            assert!(
                (hdd / hdd_expected - 1.0).abs() < 0.35,
                "{class:?} HDD ratio {hdd} vs paper {hdd_expected}"
            );
        }
    }

    #[test]
    fn ssd_to_hdd_ratio_in_paper_band() {
        // "The SSD to HDD ratio is quite high (approx. 10x to 110x)".
        for class in [
            PlatformClass::Spanner,
            PlatformClass::BigTable,
            PlatformClass::BigQuery,
        ] {
            let p = provision(&paper_spec(class));
            let hdd_per_ssd = p.hdd / p.ssd;
            assert!(
                (5.0..=160.0).contains(&hdd_per_ssd),
                "{class:?}: {hdd_per_ssd}"
            );
        }
    }

    #[test]
    fn provision_is_scale_free() {
        let mut spec = paper_spec(PlatformClass::Spanner);
        let r1 = provision(&spec).ratio();
        spec.dataset_bytes *= 1000.0;
        let r2 = provision(&spec).ratio();
        assert!((r1.1 - r2.1).abs() < 1e-9);
        assert!((r1.2 - r2.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cumulative target")]
    fn inverted_targets_panic() {
        let spec = ProvisionSpec {
            dataset_bytes: 1e12,
            working_set: ZipfWorkingSet::new(1e6, 0.9),
            ram_hit_target: 0.9,
            ram_ssd_hit_target: 0.5,
        };
        let _ = provision(&spec);
    }
}
