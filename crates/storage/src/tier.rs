//! Storage tier models: RAM, SSD, HDD device characteristics.

use hsdp_simcore::time::SimDuration;

/// The three storage tiers of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TierKind {
    /// DRAM read caches / write buffers.
    Ram,
    /// Flash cache.
    Ssd,
    /// Spinning disk capacity tier.
    Hdd,
}

impl TierKind {
    /// The tiers from fastest to slowest.
    pub const ALL: [TierKind; 3] = [TierKind::Ram, TierKind::Ssd, TierKind::Hdd];

    /// The next slower tier, if any.
    #[must_use]
    pub fn slower(self) -> Option<TierKind> {
        match self {
            TierKind::Ram => Some(TierKind::Ssd),
            TierKind::Ssd => Some(TierKind::Hdd),
            TierKind::Hdd => None,
        }
    }
}

impl std::fmt::Display for TierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TierKind::Ram => "RAM",
            TierKind::Ssd => "SSD",
            TierKind::Hdd => "HDD",
        };
        f.write_str(name)
    }
}

/// Device characteristics of one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSpec {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Fixed per-access latency.
    pub access_latency: SimDuration,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl TierSpec {
    /// Time to service an access of `bytes` bytes: latency + transfer.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive (checked at construction via
    /// [`TierSpec::validated`]; direct struct literals are on the caller).
    #[must_use]
    pub fn access_time(&self, bytes: u64) -> SimDuration {
        assert!(self.bandwidth > 0.0, "tier bandwidth must be positive");
        // audit: allow(cast, u64 byte count to f64 for bandwidth division is exact below 2^53)
        self.access_latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics on non-positive bandwidth.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(self.bandwidth > 0.0, "tier bandwidth must be positive");
        self
    }

    /// Representative defaults per tier kind, scaled to `capacity` bytes:
    /// DRAM ~100 ns / 20 GB/s, SSD ~80 us / 2 GB/s, HDD ~8 ms / 200 MB/s.
    #[must_use]
    pub fn typical(kind: TierKind, capacity: u64) -> TierSpec {
        match kind {
            TierKind::Ram => TierSpec {
                capacity,
                access_latency: SimDuration::from_nanos(100),
                bandwidth: 20e9,
            },
            TierKind::Ssd => TierSpec {
                capacity,
                access_latency: SimDuration::from_micros(80),
                bandwidth: 2e9,
            },
            TierKind::Hdd => TierSpec {
                capacity,
                access_latency: SimDuration::from_millis(8),
                bandwidth: 200e6,
            },
        }
    }
}

/// Per-tier access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Accesses that hit this tier.
    pub hits: u64,
    /// Accesses that had to fall through to a slower tier.
    pub misses: u64,
    /// Bytes read from this tier.
    pub bytes_read: u64,
    /// Bytes written into this tier (fills + writes).
    pub bytes_written: u64,
}

impl TierStats {
    /// Hit rate among accesses that consulted this tier (0 when unused).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_and_slower_chain() {
        assert_eq!(TierKind::Ram.slower(), Some(TierKind::Ssd));
        assert_eq!(TierKind::Ssd.slower(), Some(TierKind::Hdd));
        assert_eq!(TierKind::Hdd.slower(), None);
        assert!(TierKind::Ram < TierKind::Hdd);
    }

    #[test]
    fn access_time_scales_with_size() {
        let spec = TierSpec::typical(TierKind::Ssd, 1 << 30);
        let small = spec.access_time(4 * 1024);
        let large = spec.access_time(4 * 1024 * 1024);
        assert!(large > small);
        // 4 MiB at 2 GB/s ~ 2.1 ms dominated by transfer.
        assert!(large.as_secs_f64() > 1.9e-3);
    }

    #[test]
    fn typical_latency_ordering() {
        let ram = TierSpec::typical(TierKind::Ram, 1).access_time(4096);
        let ssd = TierSpec::typical(TierKind::Ssd, 1).access_time(4096);
        let hdd = TierSpec::typical(TierKind::Hdd, 1).access_time(4096);
        assert!(ram < ssd && ssd < hdd);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let stats = TierStats {
            hits: 3,
            misses: 1,
            ..TierStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(TierStats::default().hit_rate(), 0.0);
    }
}
