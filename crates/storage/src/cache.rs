//! Byte-capacity cache policies: LRU, LFU, and 2Q.
//!
//! Caching is the performance backbone of all three platforms (Section 3:
//! "these platforms use large amounts of RAM for read caches and write
//! buffers"). The policies are pluggable so the cache-policy ablation bench
//! can compare their effect on the IO-heavy query fraction.

use std::collections::{BTreeMap, HashMap, VecDeque};

/// A byte-capacity cache over `u64` keys.
///
/// Implementations track entry sizes and evict to stay within capacity.
pub trait CachePolicy: std::fmt::Debug {
    /// Records an access; returns true on hit.
    fn access(&mut self, key: u64) -> bool;

    /// Inserts (or refreshes) an entry of `size` bytes, evicting as needed.
    fn insert(&mut self, key: u64, size: u64);

    /// Removes an entry if present.
    fn remove(&mut self, key: u64);

    /// True if the key is cached (without touching recency state).
    fn contains(&self, key: u64) -> bool;

    /// Bytes currently cached.
    fn used_bytes(&self) -> u64;

    /// Capacity in bytes.
    fn capacity(&self) -> u64;

    /// Number of entries.
    fn len(&self) -> usize;

    /// True when no entries are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Least-recently-used eviction.
#[derive(Debug)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    stamp: u64,
    entries: HashMap<u64, (u64, u64)>, // key -> (stamp, size)
    order: BTreeMap<u64, u64>,         // stamp -> key
}

impl LruCache {
    /// An empty LRU cache with the given byte capacity.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            stamp: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some((stamp, _)) = self.entries.get(&key).copied() {
            self.order.remove(&stamp);
            self.stamp += 1;
            self.order.insert(self.stamp, key);
            if let Some(entry) = self.entries.get_mut(&key) {
                entry.0 = self.stamp;
            }
        }
    }

    fn evict_to_fit(&mut self, incoming: u64) {
        while self.used + incoming > self.capacity {
            let Some((&oldest_stamp, &victim)) = self.order.iter().next() else {
                break;
            };
            self.order.remove(&oldest_stamp);
            if let Some((_, size)) = self.entries.remove(&victim) {
                self.used -= size;
            }
        }
    }
}

impl CachePolicy for LruCache {
    fn access(&mut self, key: u64) -> bool {
        if self.entries.contains_key(&key) {
            self.touch(key);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u64, size: u64) {
        self.remove(key);
        if size > self.capacity {
            return; // larger than the whole cache: bypass
        }
        self.evict_to_fit(size);
        self.stamp += 1;
        self.entries.insert(key, (self.stamp, size));
        self.order.insert(self.stamp, key);
        self.used += size;
    }

    fn remove(&mut self, key: u64) {
        if let Some((stamp, size)) = self.entries.remove(&key) {
            self.order.remove(&stamp);
            self.used -= size;
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Least-frequently-used eviction (ties broken by recency).
#[derive(Debug)]
pub struct LfuCache {
    capacity: u64,
    used: u64,
    stamp: u64,
    entries: HashMap<u64, (u64, u64, u64)>, // key -> (freq, stamp, size)
    order: BTreeMap<(u64, u64), u64>,       // (freq, stamp) -> key
}

impl LfuCache {
    /// An empty LFU cache with the given byte capacity.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        LfuCache {
            capacity,
            used: 0,
            stamp: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    fn bump(&mut self, key: u64) {
        if let Some((freq, stamp, size)) = self.entries.get(&key).copied() {
            self.order.remove(&(freq, stamp));
            self.stamp += 1;
            self.entries.insert(key, (freq + 1, self.stamp, size));
            self.order.insert((freq + 1, self.stamp), key);
        }
    }
}

impl CachePolicy for LfuCache {
    fn access(&mut self, key: u64) -> bool {
        if self.entries.contains_key(&key) {
            self.bump(key);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u64, size: u64) {
        self.remove(key);
        if size > self.capacity {
            return;
        }
        while self.used + size > self.capacity {
            let Some((&victim_key_pos, &victim)) = self.order.iter().next() else {
                break;
            };
            self.order.remove(&victim_key_pos);
            if let Some((_, _, vsize)) = self.entries.remove(&victim) {
                self.used -= vsize;
            }
        }
        self.stamp += 1;
        self.entries.insert(key, (1, self.stamp, size));
        self.order.insert((1, self.stamp), key);
        self.used += size;
    }

    fn remove(&mut self, key: u64) {
        if let Some((freq, stamp, size)) = self.entries.remove(&key) {
            self.order.remove(&(freq, stamp));
            self.used -= size;
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// 2Q: a small FIFO probation queue in front of a protected LRU main area —
/// scan-resistant, matching how production read caches avoid pollution from
/// large table scans.
#[derive(Debug)]
pub struct TwoQCache {
    probation: VecDeque<u64>,
    probation_sizes: HashMap<u64, u64>,
    probation_capacity: u64,
    probation_used: u64,
    main: LruCache,
}

impl TwoQCache {
    /// A 2Q cache: `probation_fraction` of capacity goes to the probation
    /// FIFO (typical: 0.25), the rest to the protected LRU.
    ///
    /// # Panics
    ///
    /// Panics unless `probation_fraction ∈ (0, 1)`.
    #[must_use]
    pub fn new(capacity: u64, probation_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&probation_fraction) && probation_fraction > 0.0,
            "probation fraction must be in (0, 1)"
        );
        let probation_capacity = (capacity as f64 * probation_fraction) as u64;
        TwoQCache {
            probation: VecDeque::new(),
            probation_sizes: HashMap::new(),
            probation_capacity,
            probation_used: 0,
            main: LruCache::new(capacity - probation_capacity),
        }
    }

    fn evict_probation_to_fit(&mut self, incoming: u64) {
        while self.probation_used + incoming > self.probation_capacity {
            let Some(victim) = self.probation.pop_front() else {
                break;
            };
            if let Some(size) = self.probation_sizes.remove(&victim) {
                self.probation_used -= size;
            }
        }
    }
}

impl CachePolicy for TwoQCache {
    fn access(&mut self, key: u64) -> bool {
        if self.main.access(key) {
            return true;
        }
        // A probation hit promotes to the protected area.
        if let Some(size) = self.probation_sizes.remove(&key) {
            self.probation.retain(|&k| k != key);
            self.probation_used -= size;
            self.main.insert(key, size);
            return true;
        }
        false
    }

    fn insert(&mut self, key: u64, size: u64) {
        self.remove(key);
        if size > self.probation_capacity {
            return;
        }
        self.evict_probation_to_fit(size);
        self.probation.push_back(key);
        self.probation_sizes.insert(key, size);
        self.probation_used += size;
    }

    fn remove(&mut self, key: u64) {
        self.main.remove(key);
        if let Some(size) = self.probation_sizes.remove(&key) {
            self.probation.retain(|&k| k != key);
            self.probation_used -= size;
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.main.contains(key) || self.probation_sizes.contains_key(&key)
    }

    fn used_bytes(&self) -> u64 {
        self.probation_used + self.main.used_bytes()
    }

    fn capacity(&self) -> u64 {
        self.probation_capacity + self.main.capacity()
    }

    fn len(&self) -> usize {
        self.probation_sizes.len() + self.main.len()
    }
}

/// The policy choices exposed to configuration and the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used.
    Lru,
    /// Least frequently used.
    Lfu,
    /// Scan-resistant two-queue.
    TwoQ,
    /// Learned admission/eviction (the paper's Section 3 future-work
    /// direction; see [`crate::predictive`]).
    Predictive,
}

/// Builds a boxed cache of the requested policy.
#[must_use]
pub fn build_cache(kind: PolicyKind, capacity: u64) -> Box<dyn CachePolicy + Send> {
    match kind {
        PolicyKind::Lru => Box::new(LruCache::new(capacity)),
        PolicyKind::Lfu => Box::new(LfuCache::new(capacity)),
        PolicyKind::TwoQ => Box::new(TwoQCache::new(capacity, 0.25)),
        PolicyKind::Predictive => Box::new(crate::predictive::PredictiveCache::new(capacity)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(cache: &mut impl CachePolicy, keys: std::ops::Range<u64>, size: u64) {
        for k in keys {
            cache.insert(k, size);
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = LruCache::new(30);
        fill(&mut c, 0..3, 10);
        assert_eq!(c.len(), 3);
        assert!(c.access(0)); // refresh key 0
        c.insert(3, 10); // evicts key 1 (oldest untouched)
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3));
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn lru_oversized_entry_bypasses() {
        let mut c = LruCache::new(10);
        c.insert(1, 100);
        assert!(!c.contains(1));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn lru_reinsert_updates_size() {
        let mut c = LruCache::new(100);
        c.insert(1, 40);
        c.insert(1, 10);
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lfu_keeps_hot_entries() {
        let mut c = LfuCache::new(30);
        fill(&mut c, 0..3, 10);
        for _ in 0..5 {
            c.access(0);
            c.access(1);
        }
        c.insert(3, 10); // key 2 has freq 1: evicted
        assert!(c.contains(0) && c.contains(1) && c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn two_q_resists_scans() {
        let mut c = TwoQCache::new(400, 0.25);
        // Establish a hot working set in the protected area.
        for k in 0..3 {
            c.insert(k, 10);
            assert!(c.access(k), "promotion on second touch");
        }
        // A scan of cold keys churns only the probation queue.
        for k in 100..200 {
            c.insert(k, 10);
        }
        for k in 0..3 {
            assert!(c.contains(k), "hot key {k} survived the scan");
        }
    }

    #[test]
    fn two_q_capacity_split() {
        let c = TwoQCache::new(400, 0.25);
        assert_eq!(c.capacity(), 400);
        assert_eq!(c.used_bytes(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_works_across_policies() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Lfu,
            PolicyKind::TwoQ,
            PolicyKind::Predictive,
        ] {
            let mut c = build_cache(kind, 100);
            c.insert(1, 10);
            assert!(c.contains(1), "{kind:?}");
            c.remove(1);
            assert!(!c.contains(1), "{kind:?}");
            assert_eq!(c.used_bytes(), 0, "{kind:?}");
            c.remove(999); // absent key is a no-op
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Lfu,
            PolicyKind::TwoQ,
            PolicyKind::Predictive,
        ] {
            let mut c = build_cache(kind, 100);
            for k in 0..1000 {
                c.insert(k, 7);
                assert!(c.used_bytes() <= 100, "{kind:?} at key {k}");
            }
        }
    }
}
