//! # hsdp-storage
//!
//! The distributed storage substrate of the reproduction: the "distributed
//! caching and file system layers" the paper's platforms sit on
//! (Section 2.2), plus the provisioning model behind Table 1.
//!
//! - [`tier`] — RAM/SSD/HDD device models and per-tier statistics.
//! - [`cache`] — pluggable byte-capacity cache policies (LRU, LFU, 2Q).
//! - [`tiered`] — a three-tier read-through / write-through stack.
//! - [`dfs`] — a chunked, replicated distributed file system with
//!   rendezvous-hash placement.
//! - [`provision`](mod@provision) — sizing tiers from zipfian hit-rate targets,
//!   reproducing Table 1's storage-to-storage ratios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dfs;
pub mod predictive;
pub mod provision;
pub mod tier;
pub mod tiered;

pub use cache::{CachePolicy, LfuCache, LruCache, PolicyKind, TwoQCache};
pub use dfs::{Dfs, DfsConfig, FileId};
pub use predictive::PredictiveCache;
pub use provision::{provision, PlatformClass, ProvisionSpec, Provisioned, ZipfWorkingSet};
pub use tier::{TierKind, TierSpec, TierStats};
pub use tiered::TieredStore;
