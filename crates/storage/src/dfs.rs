//! A replicated, chunked distributed file system model.
//!
//! The platforms access "data and metadata through the distributed caching
//! and file system layers" (Section 2.2). Files are split into fixed-size
//! chunks; each chunk is replicated across `R` storage servers chosen by
//! rendezvous hashing; reads go to the fastest replica (with a network hop),
//! writes must reach all replicas.

use std::collections::HashMap;

use hsdp_simcore::time::SimDuration;

use crate::cache::PolicyKind;
use crate::tiered::TieredStore;

/// Default chunk size (64 MiB, GFS/Colossus-style).
pub const DEFAULT_CHUNK: u64 = 64 * 1024 * 1024;

/// A file identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Configuration of the distributed file system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsConfig {
    /// Number of storage servers.
    pub servers: usize,
    /// Replication factor.
    pub replication: usize,
    /// Chunk size in bytes.
    pub chunk_size: u64,
    /// One-way network latency between any client and server.
    pub network_latency: SimDuration,
    /// Network bandwidth in bytes/sec.
    pub network_bandwidth: f64,
    /// Per-server tier capacities (RAM, SSD, HDD).
    pub tier_bytes: (u64, u64, u64),
    /// Cache policy on every server.
    pub policy: PolicyKind,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            servers: 8,
            replication: 3,
            chunk_size: DEFAULT_CHUNK,
            network_latency: SimDuration::from_micros(50),
            network_bandwidth: 5e9,
            tier_bytes: (1 << 28, 1 << 31, 1 << 40),
            policy: PolicyKind::Lru,
        }
    }
}

/// Metadata for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileMeta {
    size: u64,
}

/// Outcome of a DFS read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsReadOutcome {
    /// Total simulated latency (network + storage, per chunk serialized).
    pub latency: SimDuration,
    /// Chunks touched.
    pub chunks: u64,
    /// Bytes returned.
    pub bytes: u64,
}

/// The distributed file system.
#[derive(Debug)]
pub struct Dfs {
    config: DfsConfig,
    servers: Vec<TieredStore>,
    files: HashMap<FileId, FileMeta>,
}

impl Dfs {
    /// Builds a DFS.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= replication <= servers` and `chunk_size > 0`.
    #[must_use]
    pub fn new(config: DfsConfig) -> Self {
        assert!(config.servers >= 1, "need at least one server");
        assert!(
            (1..=config.servers).contains(&config.replication),
            "replication must be in 1..=servers"
        );
        assert!(config.chunk_size > 0, "chunk size must be positive");
        let (ram, ssd, hdd) = config.tier_bytes;
        let servers = (0..config.servers)
            .map(|_| TieredStore::new(ram, ssd, hdd, config.policy))
            .collect();
        Dfs {
            config,
            servers,
            files: HashMap::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// Per-server tiered stores (for statistics inspection).
    #[must_use]
    pub fn servers(&self) -> &[TieredStore] {
        &self.servers
    }

    /// Rendezvous-hash the replica set for a chunk.
    fn replicas(&self, file: FileId, chunk_index: u64) -> Vec<usize> {
        let mut scored: Vec<(u64, usize)> = (0..self.config.servers)
            .map(|server| {
                let mut h = file.0 ^ chunk_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h ^= (server as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                (h, server)
            })
            .collect();
        scored.sort_unstable();
        scored
            .into_iter()
            .take(self.config.replication)
            .map(|(_, s)| s)
            .collect()
    }

    fn chunk_key(file: FileId, chunk_index: u64) -> u64 {
        file.0
            .wrapping_mul(0x1000_0000_01b3)
            .wrapping_add(chunk_index)
    }

    fn network_time(&self, bytes: u64) -> SimDuration {
        self.config.network_latency
            // audit: allow(cast, u64 byte count to f64 for bandwidth division is exact below 2^53)
            + SimDuration::from_secs_f64(bytes as f64 / self.config.network_bandwidth)
    }

    /// Creates (or truncates) a file of `size` bytes, writing all replicas.
    /// Returns the simulated write latency (slowest replica per chunk,
    /// chunks pipelined — the max chunk cost plus per-chunk network).
    pub fn write_file(&mut self, file: FileId, size: u64) -> SimDuration {
        self.files.insert(file, FileMeta { size });
        let chunks = size.div_ceil(self.config.chunk_size).max(1);
        let mut total = SimDuration::ZERO;
        for chunk_index in 0..chunks {
            let chunk_bytes =
                if chunk_index == chunks - 1 && !size.is_multiple_of(self.config.chunk_size) {
                    size % self.config.chunk_size
                } else {
                    self.config.chunk_size.min(size.max(1))
                };
            let mut slowest = SimDuration::ZERO;
            for server in self.replicas(file, chunk_index) {
                let t = self.servers[server].write(Self::chunk_key(file, chunk_index), chunk_bytes);
                slowest = slowest.max(t);
            }
            total += self.network_time(chunk_bytes) + slowest;
        }
        total
    }

    /// Reads `bytes` starting at `offset`. Chunks are fetched serially from
    /// the first replica in rendezvous order.
    ///
    /// # Panics
    ///
    /// Panics if the file does not exist or the range exceeds its size.
    pub fn read(&mut self, file: FileId, offset: u64, bytes: u64) -> DfsReadOutcome {
        // audit: allow(panic, documented panic contract: reading an unknown file is a caller bug)
        let meta = self.files.get(&file).expect("file must exist");
        assert!(
            offset.saturating_add(bytes) <= meta.size,
            "read past end of file"
        );
        if bytes == 0 {
            return DfsReadOutcome {
                latency: self.network_time(0),
                chunks: 0,
                bytes: 0,
            };
        }
        let first_chunk = offset / self.config.chunk_size;
        let last_chunk = (offset + bytes - 1) / self.config.chunk_size;
        let mut latency = SimDuration::ZERO;
        for chunk_index in first_chunk..=last_chunk {
            let chunk_start = chunk_index * self.config.chunk_size;
            let chunk_end = chunk_start + self.config.chunk_size;
            let read_start = offset.max(chunk_start);
            let read_end = (offset + bytes).min(chunk_end);
            let span = read_end - read_start;
            let primary = self.replicas(file, chunk_index)[0];
            let outcome = self.servers[primary].read(Self::chunk_key(file, chunk_index), span);
            latency += self.network_time(span) + outcome.latency;
        }
        DfsReadOutcome {
            latency,
            chunks: last_chunk - first_chunk + 1,
            bytes,
        }
    }

    /// The size of a file, if it exists.
    #[must_use]
    pub fn file_size(&self, file: FileId) -> Option<u64> {
        self.files.get(&file).map(|m| m.size)
    }

    /// Deletes a file's metadata and invalidates its chunks in every cache.
    pub fn delete(&mut self, file: FileId) {
        if let Some(meta) = self.files.remove(&file) {
            let chunks = meta.size.div_ceil(self.config.chunk_size).max(1);
            for chunk_index in 0..chunks {
                let key = Self::chunk_key(file, chunk_index);
                for server in self.replicas(file, chunk_index) {
                    self.servers[server].invalidate(key);
                }
            }
        }
    }

    /// Number of live files.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::TierKind;

    fn small_dfs() -> Dfs {
        Dfs::new(DfsConfig {
            servers: 4,
            replication: 2,
            chunk_size: 1024,
            tier_bytes: (16 * 1024, 256 * 1024, 1 << 30),
            ..DfsConfig::default()
        })
    }

    #[test]
    fn replicas_are_distinct_and_stable() {
        let dfs = small_dfs();
        let r1 = dfs.replicas(FileId(1), 0);
        let r2 = dfs.replicas(FileId(1), 0);
        assert_eq!(r1, r2, "placement is deterministic");
        assert_eq!(r1.len(), 2);
        assert_ne!(r1[0], r1[1], "replicas on distinct servers");
    }

    #[test]
    fn placement_spreads_load() {
        let dfs = small_dfs();
        let mut counts = [0u32; 4];
        for f in 0..200 {
            for &s in &dfs.replicas(FileId(f), 0) {
                counts[s] += 1;
            }
        }
        // 400 placements over 4 servers: each should get a fair share.
        for (s, &c) in counts.iter().enumerate() {
            assert!((50..=150).contains(&c), "server {s} got {c}");
        }
    }

    #[test]
    fn write_then_read_roundtrip_latency() {
        let mut dfs = small_dfs();
        let write_latency = dfs.write_file(FileId(7), 4096);
        assert!(!write_latency.is_zero());
        assert_eq!(dfs.file_size(FileId(7)), Some(4096));

        let cold = dfs.read(FileId(7), 0, 4096);
        assert_eq!(cold.chunks, 4);
        assert_eq!(cold.bytes, 4096);
        // Written data sits in RAM write buffers: reads are warm.
        let warm = dfs.read(FileId(7), 0, 4096);
        assert!(warm.latency <= cold.latency);
    }

    #[test]
    fn partial_reads_touch_right_chunks() {
        let mut dfs = small_dfs();
        dfs.write_file(FileId(1), 10_000);
        let outcome = dfs.read(FileId(1), 1500, 1000);
        // Bytes 1500..2500 span chunks 1 and 2 (size 1024).
        assert_eq!(outcome.chunks, 2);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn read_past_end_panics() {
        let mut dfs = small_dfs();
        dfs.write_file(FileId(1), 100);
        let _ = dfs.read(FileId(1), 50, 100);
    }

    #[test]
    fn delete_invalidates() {
        let mut dfs = small_dfs();
        dfs.write_file(FileId(3), 2048);
        dfs.delete(FileId(3));
        assert_eq!(dfs.file_size(FileId(3)), None);
        assert_eq!(dfs.file_count(), 0);
    }

    #[test]
    fn cold_reads_hit_hdd() {
        let mut dfs = Dfs::new(DfsConfig {
            servers: 2,
            replication: 1,
            chunk_size: 1024,
            // Tiny caches: everything spills.
            tier_bytes: (64, 128, 1 << 30),
            ..DfsConfig::default()
        });
        dfs.write_file(FileId(5), 8192);
        dfs.read(FileId(5), 0, 8192);
        let hdd_reads: u64 = dfs
            .servers()
            .iter()
            .map(|s| s.stats(TierKind::Hdd).bytes_read)
            .sum();
        assert!(hdd_reads > 0, "tiny caches force HDD reads");
    }

    #[test]
    #[should_panic(expected = "replication must be in")]
    fn invalid_replication_panics() {
        let _ = Dfs::new(DfsConfig {
            servers: 2,
            replication: 3,
            ..DfsConfig::default()
        });
    }
}
