//! The tiered store: a RAM cache over an SSD cache over HDD capacity.
//!
//! Models the storage stack under one storage server: reads probe RAM, then
//! SSD, then fall through to HDD, filling the faster tiers on the way back
//! (read-through, write-through-to-HDD with cache fill). Every access
//! returns the simulated service time so the platforms can charge IO time.

use hsdp_simcore::time::SimDuration;

use crate::cache::{build_cache, CachePolicy, PolicyKind};
use crate::tier::{TierKind, TierSpec, TierStats};

/// Outcome of one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The tier that served the data.
    pub served_by: TierKind,
    /// Total simulated service time (probes + transfer + fills).
    pub latency: SimDuration,
}

/// A three-tier storage stack.
#[derive(Debug)]
pub struct TieredStore {
    ram_spec: TierSpec,
    ssd_spec: TierSpec,
    hdd_spec: TierSpec,
    ram: Box<dyn CachePolicy + Send>,
    ssd: Box<dyn CachePolicy + Send>,
    ram_stats: TierStats,
    ssd_stats: TierStats,
    hdd_stats: TierStats,
}

impl TieredStore {
    /// Builds a store with typical device characteristics, the given tier
    /// capacities, and one cache policy for both cache tiers.
    #[must_use]
    pub fn new(ram_bytes: u64, ssd_bytes: u64, hdd_bytes: u64, policy: PolicyKind) -> Self {
        TieredStore {
            ram_spec: TierSpec::typical(TierKind::Ram, ram_bytes),
            ssd_spec: TierSpec::typical(TierKind::Ssd, ssd_bytes),
            hdd_spec: TierSpec::typical(TierKind::Hdd, hdd_bytes),
            ram: build_cache(policy, ram_bytes),
            ssd: build_cache(policy, ssd_bytes),
            ram_stats: TierStats::default(),
            ssd_stats: TierStats::default(),
            hdd_stats: TierStats::default(),
        }
    }

    /// Reads `bytes` at `key`, returning which tier served it and the
    /// simulated latency. Misses fill the faster tiers (read-through).
    pub fn read(&mut self, key: u64, bytes: u64) -> ReadOutcome {
        if self.ram.access(key) {
            self.ram_stats.hits += 1;
            self.ram_stats.bytes_read += bytes;
            return ReadOutcome {
                served_by: TierKind::Ram,
                latency: self.ram_spec.access_time(bytes),
            };
        }
        self.ram_stats.misses += 1;

        if self.ssd.access(key) {
            self.ssd_stats.hits += 1;
            self.ssd_stats.bytes_read += bytes;
            // Fill RAM on the way back.
            self.ram.insert(key, bytes);
            self.ram_stats.bytes_written += bytes;
            return ReadOutcome {
                served_by: TierKind::Ssd,
                latency: self.ram_spec.access_time(0) + self.ssd_spec.access_time(bytes),
            };
        }
        self.ssd_stats.misses += 1;

        // HDD always has the data (capacity tier).
        self.hdd_stats.hits += 1;
        self.hdd_stats.bytes_read += bytes;
        self.ssd.insert(key, bytes);
        self.ssd_stats.bytes_written += bytes;
        self.ram.insert(key, bytes);
        self.ram_stats.bytes_written += bytes;
        ReadOutcome {
            served_by: TierKind::Hdd,
            latency: self.ram_spec.access_time(0)
                + self.ssd_spec.access_time(0)
                + self.hdd_spec.access_time(bytes),
        }
    }

    /// Writes `bytes` at `key`: lands in the RAM write buffer and is charged
    /// the HDD persistence cost (write-through), matching the synchronously
    /// replicated durability the platforms require.
    pub fn write(&mut self, key: u64, bytes: u64) -> SimDuration {
        self.ram.insert(key, bytes);
        self.ram_stats.bytes_written += bytes;
        self.hdd_stats.bytes_written += bytes;
        self.ram_spec.access_time(bytes) + self.hdd_spec.access_time(bytes)
    }

    /// Writes `bytes` at `key` with SSD-class persistence: sequential log
    /// and SSTable writes land on flash, not the HDD capacity tier (they
    /// reach HDD later via background migration the queries never wait on).
    pub fn write_fast(&mut self, key: u64, bytes: u64) -> SimDuration {
        self.ram.insert(key, bytes);
        self.ram_stats.bytes_written += bytes;
        self.ssd.insert(key, bytes);
        self.ssd_stats.bytes_written += bytes;
        self.ram_spec.access_time(bytes) + self.ssd_spec.access_time(bytes)
    }

    /// Marks a key as cached (RAM + SSD) without charging IO time — used
    /// when freshly written data passes through the write path's buffers
    /// (e.g. compaction output that is immediately hot).
    pub fn warm(&mut self, key: u64, bytes: u64) {
        self.ram.insert(key, bytes);
        self.ssd.insert(key, bytes);
    }

    /// Invalidates a key everywhere (e.g. post-compaction).
    pub fn invalidate(&mut self, key: u64) {
        self.ram.remove(key);
        self.ssd.remove(key);
    }

    /// Statistics for one tier.
    #[must_use]
    pub fn stats(&self, tier: TierKind) -> TierStats {
        match tier {
            TierKind::Ram => self.ram_stats,
            TierKind::Ssd => self.ssd_stats,
            TierKind::Hdd => self.hdd_stats,
        }
    }

    /// The device spec of one tier.
    #[must_use]
    pub fn spec(&self, tier: TierKind) -> TierSpec {
        match tier {
            TierKind::Ram => self.ram_spec,
            TierKind::Ssd => self.ssd_spec,
            TierKind::Hdd => self.hdd_spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TieredStore {
        TieredStore::new(1000, 10_000, 1_000_000, PolicyKind::Lru)
    }

    #[test]
    fn cold_read_comes_from_hdd_then_warms() {
        let mut s = store();
        let first = s.read(1, 100);
        assert_eq!(first.served_by, TierKind::Hdd);
        let second = s.read(1, 100);
        assert_eq!(second.served_by, TierKind::Ram);
        assert!(second.latency < first.latency);
    }

    #[test]
    fn ram_eviction_falls_back_to_ssd() {
        let mut s = store();
        s.read(1, 800); // warm key 1 into RAM+SSD
                        // Push key 1 out of the 1000-byte RAM with other traffic.
        for k in 2..5 {
            s.read(k, 800);
        }
        let outcome = s.read(1, 800);
        assert_eq!(
            outcome.served_by,
            TierKind::Ssd,
            "evicted from RAM, kept in SSD"
        );
    }

    #[test]
    fn stats_account_hits_and_misses() {
        let mut s = store();
        s.read(1, 100);
        s.read(1, 100);
        s.read(2, 100);
        let ram = s.stats(TierKind::Ram);
        assert_eq!(ram.hits, 1);
        assert_eq!(ram.misses, 2);
        let hdd = s.stats(TierKind::Hdd);
        assert_eq!(hdd.hits, 2);
        assert!((s.stats(TierKind::Ram).hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn write_charges_persistence() {
        let mut s = store();
        let latency = s.write(9, 100);
        // HDD latency floor is ~8ms.
        assert!(latency.as_secs_f64() > 7e-3);
        // The write buffer serves subsequent reads.
        assert_eq!(s.read(9, 100).served_by, TierKind::Ram);
    }

    #[test]
    fn invalidate_forces_slow_path() {
        let mut s = store();
        s.read(5, 100);
        s.invalidate(5);
        assert_eq!(s.read(5, 100).served_by, TierKind::Hdd);
    }

    #[test]
    fn latency_ordering_ram_ssd_hdd() {
        let mut s = store();
        let hdd = s.read(7, 100).latency;
        let ram = s.read(7, 100).latency;
        s.invalidate(7);
        // Re-warm SSD only: read once from HDD (fills both), evict from RAM.
        s.read(7, 100);
        for k in 100..104 {
            s.read(k, 800);
        }
        let ssd = s.read(7, 100).latency;
        assert!(ram < ssd && ssd < hdd, "ram {ram} ssd {ssd} hdd {hdd}");
    }
}
