//! Merge-order invariance of the metrics registry: folding N per-shard
//! registries in *any* order must serialize byte-identically, because the
//! fleet driver's determinism guarantee ("`parallelism` changes nothing but
//! wall-clock") extends to the telemetry artifacts.

use hsdp_simcore::time::SimDuration;
use hsdp_telemetry::MetricsRegistry;

/// Builds a synthetic per-shard registry whose contents vary by shard.
fn shard_registry(shard: u64) -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    registry.counter_add(("rpc", "requests", "read"), 10 + shard);
    registry.counter_add(("rpc", "requests", "write"), 3 * shard);
    registry.gauge_max(("storage", "log_len_peak", ""), 100 * (shard + 1) % 7);
    // Latencies spread across histogram buckets, shard-dependent.
    for i in 0..50 {
        let nanos = (shard + 1) * 1_000 + i * i * 37;
        registry.record_duration(
            ("rpc", "latency_ns", "read"),
            SimDuration::from_nanos(nanos),
        );
    }
    if shard.is_multiple_of(2) {
        // Keys present in only some shards must still merge canonically.
        registry.counter_add(("compaction", "runs", ""), shard + 1);
    }
    registry
}

/// Merges the given shards into a fresh registry, in the order given.
fn merge_in_order(order: &[u64]) -> String {
    let mut merged = MetricsRegistry::new();
    for &shard in order {
        merged.merge(&shard_registry(shard));
    }
    merged.to_json()
}

/// All permutations of `items` (small N — test helper only).
fn permutations(items: &[u64]) -> Vec<Vec<u64>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

#[test]
fn merge_is_order_invariant_over_all_permutations() {
    let shards: Vec<u64> = (0..4).collect();
    let canonical = merge_in_order(&shards);
    assert!(canonical.contains("rpc/requests/read"), "merge lost keys");
    for order in permutations(&shards) {
        assert_eq!(
            merge_in_order(&order),
            canonical,
            "merge order {order:?} produced different bytes"
        );
    }
}

#[test]
fn merge_is_associative_under_grouping() {
    // ((a + b) + (c + d)) == (a + (b + (c + d))) — tree-shaped folds (what a
    // hierarchical reduction would do) match the flat left fold.
    let flat = merge_in_order(&[0, 1, 2, 3]);

    let mut left = MetricsRegistry::new();
    left.merge(&shard_registry(0));
    left.merge(&shard_registry(1));
    let mut right = MetricsRegistry::new();
    right.merge(&shard_registry(2));
    right.merge(&shard_registry(3));
    let mut tree = MetricsRegistry::new();
    tree.merge(&left);
    tree.merge(&right);

    assert_eq!(tree.to_json(), flat);
}

#[test]
fn merging_empty_registry_is_identity() {
    let base = shard_registry(1);
    let mut merged = MetricsRegistry::new();
    merged.merge(&base);
    merged.merge(&MetricsRegistry::new());
    merged.merge(&MetricsRegistry::disabled());
    assert_eq!(merged.to_json(), base.to_json());
}
